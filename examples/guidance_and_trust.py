"""Additional guidance: convergence curves, extrapolation and trust.

When Snoopy answers UNREALISTIC, the user needs to know *why*: not
enough data, or a genuinely noisy task?  This example reproduces the
Section IV-C / VI-C guidance on a noisy CIFAR100 analogue: the
convergence curve of the winning embedding, the Eq. 10 log-linear fit,
and the samples-needed extrapolation with its trustworthiness flag.

Run:  python examples/guidance_and_trust.py
"""

from repro import Snoopy, SnoopyConfig
from repro.cleaning.workflow import make_noisy_dataset
from repro.core.guidance import extrapolate_samples_needed
from repro.datasets import load
from repro.transforms.catalog import catalog_for


def main() -> None:
    dataset = load("cifar100", scale=0.02, seed=0)
    catalog = catalog_for(dataset, seed=0, max_embeddings=6)
    catalog.fit(dataset.train_x)
    noisy = make_noisy_dataset(dataset, rho=0.2, rng=0)

    report = Snoopy(
        catalog, SnoopyConfig(strategy="full", seed=0)
    ).run(noisy, target_accuracy=0.85)
    print(report.summary())

    curve = report.curves[report.best_transform]
    print(f"\nconvergence of {curve.transform_name}:")
    for size, error, estimate in zip(
        curve.sizes, curve.errors, curve.estimates
    ):
        print(f"  n={int(size):5d}  1nn_error={error:.4f}  estimate={estimate:.4f}")

    print("\nsamples-needed extrapolation (Eq. 10):")
    for target_accuracy in (0.75, 0.82, 0.90):
        extrapolation = extrapolate_samples_needed(
            curve.transform_name, curve.sizes, curve.errors,
            target_error=1.0 - target_accuracy,
        )
        print(f"  target {target_accuracy:.2f}: {extrapolation.describe()}")
    print(
        "\nRule of thumb from the paper: trust the extrapolated count"
        "\nonly when it is close to the data you already have; Eq. 10"
        "\nconverges to zero error, so any target eventually looks"
        "\nreachable if you extrapolate far enough."
    )


if __name__ == "__main__":
    main()
