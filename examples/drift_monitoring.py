"""Drift-aware feasibility monitoring on a data stream.

Implements the paper's Future Extension sketch: a windowed BER estimator
over a stream detects when the *task itself* gets harder — here, a
labeling source degrading mid-stream — without training or monitoring
any model.

Run:  python examples/drift_monitoring.py
"""

import numpy as np

from repro.core.drift import (
    DriftAwareMonitor,
    PageHinkleyDetector,
    SlidingWindowBER,
)
from repro.datasets.synthetic import GaussianMixtureTask
from repro.noise.models import inject_uniform_noise
from repro.rng import ensure_rng


def main() -> None:
    task = GaussianMixtureTask(
        num_classes=4, latent_dim=4, class_sep=3.0, clutter_dim=8, seed=5
    )
    rng = ensure_rng(0)
    monitor = DriftAwareMonitor(
        window=SlidingWindowBER(task.num_classes, window_size=512),
        detector=PageHinkleyDetector(delta=0.02, threshold=0.3),
        check_every=128,
    )
    print(f"task: C={task.num_classes}, clean BER {task.true_ber():.3f}")
    print("phase 1: clean labeling source (2048 samples)")
    raw, labels, _ = task.sample(2048, rng=rng)
    monitor.observe(raw, labels)
    print(f"  window estimate: {monitor.estimates[-1][1]:.3f}, "
          f"alarms: {len(monitor.events)}")

    print("phase 2: labeling source degrades to 50% uniform noise")
    raw, labels, _ = task.sample(4096, rng=rng)
    noisy = inject_uniform_noise(labels, 0.5, task.num_classes, rng=rng)
    monitor.observe(raw, noisy.noisy_labels)

    print("\nestimate trajectory (every 4th checkpoint):")
    for seen, estimate in monitor.estimates[::4]:
        bar = "#" * int(40 * estimate)
        print(f"  n={seen:5d}  {estimate:.3f}  {bar}")
    if monitor.events:
        event = monitor.events[0]
        delay = event.at_sample - 2048
        print(
            f"\nDRIFT detected at stream sample {event.at_sample} "
            f"(delay {delay} samples after the onset), window estimate "
            f"{event.ber_estimate:.3f}"
        )
        expected = task.true_ber() + 0.5 * (1 - 1 / task.num_classes
                                            - task.true_ber())
        print(f"Lemma 2.1 predicts the noisy BER at {expected:.3f}.")
    else:
        print("\nno drift detected (unexpected for this scenario)")


if __name__ == "__main__":
    main()
