"""System optimizations: successive halving and incremental re-runs.

Demonstrates the Section V machinery directly:

- how successive halving (with and without the tangent rule) spends far
  less simulated inference than evaluating every embedding fully, while
  selecting the same winner;
- how the neighbor cache makes a post-cleaning re-run effectively free.

Run:  python examples/embedding_selection.py
"""

import time

from repro import Snoopy, SnoopyConfig
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.workflow import make_noisy_dataset
from repro.datasets import load
from repro.transforms.catalog import catalog_for


def main() -> None:
    dataset = load("cifar100", scale=0.02, seed=0)
    catalog = catalog_for(dataset, seed=0)
    catalog.fit(dataset.train_x)
    print(f"dataset: {dataset}")
    print(f"catalog: {len(catalog)} transformations\n")

    print(f"{'strategy':28s} {'estimate':>9s} {'winner':>18s} "
          f"{'sim cost s':>11s} {'wall s':>7s}")
    reports = {}
    for strategy in (
        "full", "uniform", "successive_halving", "successive_halving_tangent",
    ):
        report = Snoopy(
            catalog, SnoopyConfig(strategy=strategy, seed=0)
        ).run(dataset, target_accuracy=0.9)
        reports[strategy] = report
        print(
            f"{strategy:28s} {report.ber_estimate:9.4f} "
            f"{report.best_transform:>18s} "
            f"{report.total_sim_cost_seconds:11.3f} "
            f"{report.wall_seconds:7.3f}"
        )
    saving = (
        1.0
        - reports["successive_halving_tangent"].total_sim_cost_seconds
        / reports["full"].total_sim_cost_seconds
    )
    print(f"\nSH+tangent saves {100 * saving:.0f}% of full-evaluation cost\n")

    # Incremental re-run after cleaning 1% of a noisy variant.
    noisy = make_noisy_dataset(dataset, 0.2, rng=0)
    system = Snoopy(catalog, SnoopyConfig(seed=0))
    started = time.perf_counter()
    report = system.run(noisy, target_accuracy=0.9)
    full_run = time.perf_counter() - started
    state = system.incremental_state()
    session = CleaningSession(noisy, rng=0)
    step = session.clean_fraction(0.01)
    started = time.perf_counter()
    state.apply_cleaning(
        step.train_indices, step.train_labels,
        step.test_indices, step.test_labels,
    )
    best, estimate = state.ber_estimate()
    incremental = time.perf_counter() - started
    print(f"initial run:        {full_run * 1e3:9.2f} ms "
          f"(estimate {report.ber_estimate:.4f})")
    print(f"incremental re-run: {incremental * 1e3:9.3f} ms "
          f"(estimate {estimate:.4f} via {best})")
    print(f"speedup: {full_run / incremental:,.0f}x")


if __name__ == "__main__":
    main()
