"""Bringing your own data: arrays in, feasibility report out.

The paper's target user holds a numeric feature matrix and labels.  This
example shows the on-ramp: a stratified split via
:func:`dataset_from_arrays`, a pluggable transformation catalog, JSON
export of the report, and archiving the exact artefact with the dataset
I/O helpers.

Run:  python examples/user_data.py
"""

import pathlib
import tempfile

import numpy as np

from repro import Snoopy
from repro.datasets import load_dataset, save_dataset
from repro.datasets.splits import dataset_from_arrays
from repro.reporting.serialize import report_to_json
from repro.transforms.linear import (
    IdentityTransform,
    PCATransform,
    StandardizeTransform,
)
from repro.transforms.nca import NCATransform


def make_user_data(seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Stand-in for the user's CSV: two informative dims + nuisance."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=900)
    informative = labels[:, None] * 2.0 + rng.normal(size=(900, 2))
    nuisance = rng.normal(scale=4.0, size=(900, 14))
    return np.hstack([informative, nuisance]), labels


def main() -> None:
    features, labels = make_user_data()
    dataset = dataset_from_arrays(
        features, labels, name="customer_churn", test_fraction=0.25, rng=0
    )
    print(f"user dataset: {dataset}\n")

    # A catalog of classical transforms; NCA is supervised, so it is
    # fitted with labels by the system.
    catalog = [
        IdentityTransform(dataset.raw_dim),
        StandardizeTransform(dataset.raw_dim),
        PCATransform(4),
        NCATransform(2, seed=0),
    ]
    report = Snoopy(catalog).run(dataset, target_accuracy=0.9)
    print(report.summary())
    print()
    for name, value in sorted(
        report.estimates_by_transform().items(), key=lambda kv: kv[1]
    ):
        print(f"  {name:14s} estimate {value:.4f}")

    with tempfile.TemporaryDirectory() as tmp:
        archive = save_dataset(dataset, pathlib.Path(tmp) / "churn")
        reloaded = load_dataset(archive)
        print(f"\narchived to {archive.name} and reloaded: {reloaded}")
        json_payload = report_to_json(report)
        print(f"JSON report: {len(json_payload)} bytes "
              f"(first line: {json_payload.splitlines()[1].strip()})")


if __name__ == "__main__":
    main()
