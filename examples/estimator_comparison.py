"""FeeBee protocol: comparing BER estimators on a known-BER task.

Evaluates the full estimator zoo (Section II's three families) over a
uniform label-noise series where the true BER evolution is known in
closed form (Lemma 2.1), reproducing the comparison that motivated the
paper's choice of the 1NN estimator.

Run:  python examples/estimator_comparison.py
"""

from repro.datasets import load
from repro.estimators import (
    DeKNNEstimator,
    GHPEstimator,
    KDEEstimator,
    KNNExtrapolationEstimator,
    KNNLooEstimator,
    OneNNEstimator,
)
from repro.feebee.evaluation import evaluate_estimator_over_noise
from repro.reporting.tables import render_table
from repro.transforms.catalog import catalog_for

RHOS = (0.0, 0.2, 0.4, 0.6)


def main() -> None:
    dataset = load("cifar10", scale=0.02, seed=0)
    catalog = catalog_for(dataset, seed=0, max_embeddings=6)
    catalog.fit(dataset.train_x)
    embedding = catalog[catalog.names[-1]]
    print(f"dataset: {dataset}; embedding: {embedding.name}\n")

    estimators = [
        OneNNEstimator(),
        KNNLooEstimator(k=5),
        DeKNNEstimator(k=10),
        KDEEstimator(),
        GHPEstimator(max_points_per_class=150),
        KNNExtrapolationEstimator(num_grid_points=5),
    ]
    rows = []
    for estimator in estimators:
        evaluation = evaluate_estimator_over_noise(
            estimator, dataset, rhos=RHOS, transform=embedding, rng=0
        )
        rows.append([
            evaluation.estimator_name,
            *(f"{p.estimate:.3f}/{p.true_ber:.3f}" for p in evaluation.points),
            f"{evaluation.mean_absolute_deviation():.4f}",
            f"{evaluation.slope_fidelity():.3f}",
        ])
    print(render_table(
        ["estimator", *(f"rho={r} (est/true)" for r in RHOS), "MAD", "slope"],
        rows,
        title="FeeBee noise-series evaluation (Lemma 2.1 ground truth)",
    ))
    print(
        "\nThe 1NN estimator tracks the known evolution as well as any"
        "\nalternative while being the cheapest to stream — the reason"
        "\nSnoopy builds on it."
    )


if __name__ == "__main__":
    main()
