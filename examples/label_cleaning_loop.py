"""End-to-end use case: iterative label cleaning guided by Snoopy.

Reproduces the Section VI-D workflow on a noisy CIFAR100 analogue under
the 'cheap labels' cost regime, comparing three user strategies:

1. no feasibility study, fine-tuning after every 10% cleaned,
2. no feasibility study, fine-tuning after every 50% cleaned,
3. Snoopy-guided: 1% cleaning steps with near-free incremental
   feasibility re-runs; the expensive model is trained only when the
   study says the target is realistic.

Run:  python examples/label_cleaning_loop.py
"""

from repro.baselines.finetune import FineTuneBaseline
from repro.cleaning.costs import CostModel
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.strategies import (
    run_with_feasibility_study,
    run_without_feasibility_study,
)
from repro.cleaning.workflow import make_noisy_dataset
from repro.datasets import load
from repro.transforms.catalog import catalog_for

NOISE_RHO = 0.4
TARGET_ACCURACY = 0.80


def describe(trace) -> str:
    return (
        f"{trace.strategy:22s} reached={str(trace.reached_target):5s} "
        f"total=${trace.total_dollars:7.3f} "
        f"cleaned={100 * trace.final_fraction_examined:5.1f}% "
        f"expensive_runs={trace.num_expensive_runs}"
    )


def main() -> None:
    dataset = load("cifar100", scale=0.015, seed=0)
    catalog = catalog_for(dataset, seed=0, max_embeddings=6)
    catalog.fit(dataset.train_x)
    noisy = make_noisy_dataset(dataset, NOISE_RHO, rng=0)
    print(
        f"task: {dataset.name}, injected noise rho={NOISE_RHO} "
        f"(realized {100 * noisy.label_noise_rate():.1f}% wrong labels), "
        f"target accuracy {TARGET_ACCURACY}"
    )
    trainer = FineTuneBaseline(
        catalog, learning_rates=(0.05,), num_epochs=12, seed=0
    )
    cost_model = CostModel.for_regime("cheap")

    print("\n--- without feasibility study ---")
    for step in (0.10, 0.50):
        trace = run_without_feasibility_study(
            CleaningSession(noisy, rng=0), trainer,
            TARGET_ACCURACY, step, cost_model,
        )
        print(describe(trace))

    print("\n--- with Snoopy feasibility study ---")
    trace = run_with_feasibility_study(
        CleaningSession(noisy, rng=0), trainer,
        TARGET_ACCURACY, cost_model,
        feasibility="snoopy", catalog=catalog, clean_step=0.01,
    )
    print(describe(trace))
    print("\ntrace of the Snoopy-guided loop (first 12 actions):")
    for point in trace.points[:12]:
        value = "" if point.value != point.value else f" value={point.value:.3f}"
        print(
            f"  {point.action:12s} cleaned={100 * point.fraction_examined:5.1f}%"
            f" spent=${point.dollars:7.3f}{value}"
        )


if __name__ == "__main__":
    main()
