"""Quickstart: is my target accuracy realistic for this dataset?

Loads the CIFAR10 analogue, builds the Table III transformation catalog,
and asks Snoopy two questions: a comfortable target and an impossible
one (after polluting the labels).  Mirrors the system's intended
interaction model (Section III of the paper).

Run:  python examples/quickstart.py
"""

from repro import Snoopy
from repro.cleaning.workflow import make_noisy_dataset
from repro.datasets import load
from repro.transforms.catalog import catalog_for


def main() -> None:
    # 1. A representative dataset for the task (synthetic CIFAR10
    #    analogue with known ground-truth Bayes error).
    dataset = load("cifar10", scale=0.02, seed=0)
    print(f"dataset: {dataset}")
    print(f"ground-truth clean BER: {dataset.true_ber:.4f}\n")

    # 2. The transformation catalog (simulated pre-trained embeddings).
    catalog = catalog_for(dataset, seed=0, max_embeddings=8)

    # 3. Feasibility study for a sensible target.
    system = Snoopy(catalog)
    report = system.run(dataset, target_accuracy=0.95)
    print(report.summary())
    print()

    # 4. Now pollute 40% of the labels and ask for near-perfection.
    noisy = make_noisy_dataset(dataset, rho=0.4, rng=0)
    report = Snoopy(catalog).run(noisy, target_accuracy=0.99)
    print(report.summary())
    print()
    print(
        "Per-transformation estimates (the minimum is Snoopy's answer):"
    )
    for name, value in sorted(
        report.estimates_by_transform().items(), key=lambda kv: kv[1]
    ):
        marker = "  <-- selected" if name == report.best_transform else ""
        print(f"  {name:24s} {value:.4f}{marker}")


if __name__ == "__main__":
    main()
