"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` on old pip/setuptools combinations requires
``bdist_wheel``; this shim keeps ``python setup.py develop`` working as a
fallback.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
