"""Unit tests for k-means and the IVF-Flat approximate index."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.knn.brute_force import BruteForceKNN
from repro.knn.ivf import IVFFlatIndex
from repro.knn.kmeans import KMeans


@pytest.fixture()
def blobs(rng):
    centers = rng.normal(scale=10.0, size=(8, 5))
    assignment = rng.integers(0, 8, size=800)
    x = centers[assignment] + rng.normal(size=(800, 5))
    y = assignment % 3
    return x, y, centers, assignment


class TestKMeans:
    def test_recovers_separated_clusters(self, blobs):
        x, _, centers, assignment = blobs
        model = KMeans(8, seed=0).fit(x)
        predicted = model.predict(x)
        # Cluster labels are permuted, but points sharing a true cluster
        # must share a predicted cluster (pairwise agreement check on a
        # subsample).
        idx = np.arange(0, 800, 7)
        same_true = assignment[idx][:, None] == assignment[idx][None, :]
        same_pred = predicted[idx][:, None] == predicted[idx][None, :]
        agreement = np.mean(same_true == same_pred)
        assert agreement > 0.95

    def test_inertia_decreases_with_more_clusters(self, blobs):
        x, *_ = blobs
        small = KMeans(2, seed=0).fit(x).inertia(x)
        large = KMeans(16, seed=0).fit(x).inertia(x)
        assert large < small

    def test_k_equals_n(self, rng):
        x = rng.normal(size=(10, 3))
        model = KMeans(10, seed=0).fit(x)
        assert model.inertia(x) < 1e-9

    def test_validation(self, rng):
        with pytest.raises(DataValidationError):
            KMeans(0)
        with pytest.raises(DataValidationError):
            KMeans(5).fit(rng.normal(size=(3, 2)))
        with pytest.raises(DataValidationError):
            KMeans(2).predict(rng.normal(size=(3, 2)))

    def test_deterministic_with_seed(self, blobs):
        x, *_ = blobs
        a = KMeans(4, seed=7).fit(x).centroids
        b = KMeans(4, seed=7).fit(x).centroids
        np.testing.assert_array_equal(a, b)


class TestIVFFlat:
    def test_full_probe_is_exact(self, blobs, rng):
        x, y, *_ = blobs
        queries = rng.normal(scale=10.0, size=(50, 5))
        exact_dist, exact_idx = BruteForceKNN().fit(x, y).kneighbors(
            queries, k=3
        )
        ivf = IVFFlatIndex(nlist=8, nprobe=8, seed=0).fit(x, y)
        approx_dist, approx_idx = ivf.kneighbors(queries, k=3)
        np.testing.assert_allclose(approx_dist, exact_dist, atol=1e-9)

    def test_recall_increases_with_nprobe(self, blobs, rng):
        x, y, *_ = blobs
        queries = rng.normal(scale=10.0, size=(80, 5))
        _, exact_idx = BruteForceKNN().fit(x, y).kneighbors(queries, k=5)
        recalls = []
        for nprobe in (1, 4, 8):
            ivf = IVFFlatIndex(nlist=8, nprobe=nprobe, seed=0).fit(x, y)
            recalls.append(ivf.recall_against_exact(queries, exact_idx, k=5))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[-1] == pytest.approx(1.0)

    def test_prediction_error_close_to_exact(self, blobs, rng):
        x, y, *_ = blobs
        queries = x[:100] + rng.normal(scale=0.1, size=(100, 5))
        exact_error = BruteForceKNN().fit(x, y).error(queries, y[:100])
        ivf = IVFFlatIndex(nlist=8, nprobe=2, seed=0).fit(x, y)
        assert abs(ivf.error(queries, y[:100]) - exact_error) < 0.1

    def test_k_larger_than_probed_candidates_widens(self, rng):
        # Tiny clusters: asking for more neighbors than one list holds
        # must widen the probe set, not fail.
        x = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, 40)
        ivf = IVFFlatIndex(nlist=10, nprobe=1, seed=0).fit(x, y)
        dist, idx = ivf.kneighbors(rng.normal(size=(5, 3)), k=15)
        assert dist.shape == (5, 15)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_validation(self, rng):
        with pytest.raises(DataValidationError):
            IVFFlatIndex(nlist=0)
        with pytest.raises(DataValidationError):
            IVFFlatIndex().kneighbors(rng.normal(size=(2, 3)))
        ivf = IVFFlatIndex(nlist=2, seed=0).fit(
            rng.normal(size=(10, 3)), rng.integers(0, 2, 10)
        )
        with pytest.raises(DataValidationError):
            ivf.kneighbors(rng.normal(size=(2, 3)), k=11)

    def test_nprobe_clamped_to_nlist(self):
        ivf = IVFFlatIndex(nlist=4, nprobe=100)
        assert ivf.nprobe == 4
