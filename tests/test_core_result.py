"""Unit tests for the result containers and IncrementalState."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalState
from repro.core.result import (
    BEREstimate,
    ConvergenceCurve,
    FeasibilityReport,
    FeasibilitySignal,
    TransformResult,
)
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError, EstimatorError
from repro.knn.incremental import NeighborCache


class TestBEREstimate:
    def test_valid(self):
        estimate = BEREstimate(0.2, lower=0.1, upper=0.4)
        assert estimate.value == 0.2

    def test_out_of_range_raises(self):
        with pytest.raises(EstimatorError):
            BEREstimate(1.5)

    def test_non_finite_raises(self):
        with pytest.raises(EstimatorError):
            BEREstimate(float("nan"))

    def test_crossed_bounds_raise(self):
        with pytest.raises(EstimatorError):
            BEREstimate(0.3, lower=0.5, upper=0.2)


class TestConvergenceCurve:
    def test_final_properties(self):
        curve = ConvergenceCurve(
            "t", np.array([10, 20]), np.array([0.5, 0.4]), np.array([0.3, 0.25])
        )
        assert curve.final_size == 20
        assert curve.final_error == 0.4
        assert curve.final_estimate == 0.25

    def test_length_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            ConvergenceCurve("t", np.array([10]), np.array([0.5, 0.4]), np.array([0.3]))

    def test_empty_curve(self):
        curve = ConvergenceCurve("t", np.array([]), np.array([]), np.array([]))
        assert curve.final_size == 0
        assert np.isnan(curve.final_error)


class TestFeasibilityReport:
    def _report(self, signal=FeasibilitySignal.REALISTIC):
        return FeasibilityReport(
            dataset_name="d", target_accuracy=0.9, signal=signal,
            ber_estimate=0.05, best_transform="t", gap=0.05,
            per_transform=[
                TransformResult("t", 100, 0.09, BEREstimate(0.05), 1.0)
            ],
        )

    def test_best_accuracy(self):
        assert self._report().best_accuracy == pytest.approx(0.95)

    def test_is_realistic(self):
        assert self._report().is_realistic
        assert not self._report(FeasibilitySignal.UNREALISTIC).is_realistic

    def test_estimates_by_transform(self):
        assert self._report().estimates_by_transform() == {"t": 0.05}

    def test_signal_str(self):
        assert str(FeasibilitySignal.REALISTIC) == "REALISTIC"
        assert str(FeasibilitySignal.UNREALISTIC) == "UNREALISTIC"


class TestIncrementalState:
    @pytest.fixture()
    def state(self, rng):
        caches = {}
        for name in ("a", "b"):
            nn = rng.integers(0, 50, size=20)
            train_labels = rng.integers(0, 3, size=50)
            test_labels = rng.integers(0, 3, size=20)
            caches[name] = NeighborCache(nn, train_labels, test_labels)
        return IncrementalState(caches, num_classes=3)

    def test_empty_caches_raise(self):
        with pytest.raises(DataValidationError):
            IncrementalState({}, 3)

    def test_estimates_match_cover_hart(self, state):
        estimates = state.estimates()
        assert set(estimates) == {"a", "b"}
        for value in estimates.values():
            assert 0.0 <= value <= 1.0

    def test_ber_estimate_is_min(self, state):
        _, best = state.ber_estimate()
        assert best == min(state.estimates().values())

    def test_signal_threshold(self, state):
        _, estimate = state.ber_estimate()
        # Just-reachable target (epsilon guards float round-trip).
        assert state.signal(1.0 - estimate - 1e-9) is FeasibilitySignal.REALISTIC
        assert (
            state.signal(1.0 - estimate + 0.01) is FeasibilitySignal.UNREALISTIC
        )

    def test_invalid_target_raises(self, state):
        with pytest.raises(DataValidationError):
            state.signal(0.0)

    def test_apply_cleaning_propagates_to_all_caches(self, state):
        before = state.estimates()
        state.apply_cleaning(
            np.arange(50), np.zeros(50, dtype=int),
            np.arange(20), np.zeros(20, dtype=int),
        )
        after = state.estimates()
        # All labels zero: every cache now reports zero error -> zero BER.
        assert all(v == 0.0 for v in after.values())
        assert before != after


class TestCoverHartRoundTrip:
    def test_incremental_estimate_consistency(self, rng):
        nn = rng.integers(0, 30, size=10)
        train_labels = rng.integers(0, 2, size=30)
        test_labels = rng.integers(0, 2, size=10)
        cache = NeighborCache(nn, train_labels, test_labels)
        state = IncrementalState({"x": cache}, 2)
        assert state.estimates()["x"] == pytest.approx(
            cover_hart_lower_bound(cache.error(), 2)
        )
