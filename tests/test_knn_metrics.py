"""Unit tests for repro.knn.metrics."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.exceptions import DataValidationError
from repro.knn.metrics import (
    blocked_argmin_distance,
    cosine_distances,
    euclidean_distances,
    iter_blocks,
    pairwise_distances,
)


@pytest.fixture()
def points(rng):
    return rng.normal(size=(40, 7)), rng.normal(size=(25, 7))


class TestEuclidean:
    def test_matches_scipy(self, points):
        a, b = points
        np.testing.assert_allclose(
            euclidean_distances(a, b), cdist(a, b, "euclidean"), atol=1e-10
        )

    def test_self_distance_zero(self, points):
        a, _ = points
        dist = euclidean_distances(a, a)
        np.testing.assert_allclose(np.diag(dist), 0.0, atol=1e-7)

    def test_symmetry(self, points):
        a, b = points
        np.testing.assert_allclose(
            euclidean_distances(a, b), euclidean_distances(b, a).T, atol=1e-10
        )

    def test_non_negative_even_with_duplicates(self):
        a = np.ones((5, 3))
        dist = euclidean_distances(a, a)
        assert np.all(dist >= 0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            euclidean_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_rejects_1d_input(self):
        with pytest.raises(DataValidationError):
            euclidean_distances(np.zeros(3), np.zeros((2, 3)))


class TestCosine:
    def test_matches_scipy(self, points):
        a, b = points
        np.testing.assert_allclose(
            cosine_distances(a, b), cdist(a, b, "cosine"), atol=1e-10
        )

    def test_range(self, points):
        a, b = points
        dist = cosine_distances(a, b)
        assert np.all(dist >= -1e-12)
        assert np.all(dist <= 2.0 + 1e-12)

    def test_zero_vector_is_maximally_dissimilar(self):
        a = np.zeros((1, 3))
        b = np.array([[1.0, 0.0, 0.0]])
        assert cosine_distances(a, b)[0, 0] == pytest.approx(1.0)

    def test_parallel_vectors_distance_zero(self):
        a = np.array([[1.0, 2.0, 3.0]])
        b = np.array([[2.0, 4.0, 6.0]])
        assert cosine_distances(a, b)[0, 0] == pytest.approx(0.0, abs=1e-12)


class TestDispatch:
    def test_euclidean_dispatch(self, points):
        a, b = points
        np.testing.assert_array_equal(
            pairwise_distances(a, b, "euclidean"), euclidean_distances(a, b)
        )

    def test_cosine_dispatch(self, points):
        a, b = points
        np.testing.assert_array_equal(
            pairwise_distances(a, b, "cosine"), cosine_distances(a, b)
        )

    def test_unknown_metric_raises(self, points):
        a, b = points
        with pytest.raises(DataValidationError, match="unknown metric"):
            pairwise_distances(a, b, "manhattan")


class TestBlocks:
    def test_iter_blocks_covers_range(self):
        slices = list(iter_blocks(10, 3))
        covered = []
        for block in slices:
            covered.extend(range(block.start, block.stop))
        assert covered == list(range(10))

    def test_iter_blocks_rejects_nonpositive(self):
        with pytest.raises(DataValidationError):
            list(iter_blocks(10, 0))

    def test_blocked_argmin_matches_dense(self, rng):
        queries = rng.normal(size=(30, 5))
        corpus = rng.normal(size=(100, 5))
        idx, dist = blocked_argmin_distance(queries, corpus, block_size=7)
        dense = euclidean_distances(queries, corpus)
        np.testing.assert_array_equal(idx, np.argmin(dense, axis=1))
        np.testing.assert_allclose(dist, dense.min(axis=1), atol=1e-10)

    def test_blocked_argmin_empty_corpus_raises(self, rng):
        with pytest.raises(DataValidationError):
            blocked_argmin_distance(rng.normal(size=(3, 2)), np.zeros((0, 2)))
