"""Integration-grade unit tests for the Snoopy system itself."""

import numpy as np
import pytest

from repro.core.result import FeasibilitySignal
from repro.core.snoopy import Snoopy, SnoopyConfig
from repro.exceptions import DataValidationError
from repro.noise.models import inject_uniform_noise


@pytest.fixture()
def noisy_dataset(dataset):
    train = inject_uniform_noise(dataset.train_y, 0.4, dataset.num_classes, rng=0)
    test = inject_uniform_noise(dataset.test_y, 0.4, dataset.num_classes, rng=1)
    return dataset.with_noisy_labels(train.noisy_labels, test.noisy_labels)


class TestConfig:
    def test_default_strategy(self):
        assert SnoopyConfig().strategy == "successive_halving_tangent"

    def test_unknown_strategy_raises(self):
        with pytest.raises(DataValidationError):
            SnoopyConfig(strategy="genetic")

    def test_perfect_requires_arm_name(self):
        with pytest.raises(DataValidationError):
            SnoopyConfig(strategy="perfect")

    def test_empty_catalog_raises(self):
        with pytest.raises(DataValidationError):
            Snoopy([])


class TestRun:
    def test_report_fields(self, dataset, catalog):
        report = Snoopy(catalog).run(dataset, target_accuracy=0.6)
        assert report.dataset_name == dataset.name
        assert report.best_transform in catalog.names
        assert 0.0 <= report.ber_estimate <= 1.0
        assert report.gap == pytest.approx(0.4 - report.ber_estimate)
        assert report.total_sim_cost_seconds > 0
        assert report.wall_seconds > 0

    def test_min_aggregation(self, dataset, catalog):
        report = Snoopy(catalog).run(dataset, target_accuracy=0.6)
        per_transform = report.estimates_by_transform()
        assert report.ber_estimate == pytest.approx(min(per_transform.values()))

    def test_signal_realistic_for_loose_target(self, dataset, catalog):
        report = Snoopy(catalog).run(dataset, target_accuracy=0.5)
        assert report.signal is FeasibilitySignal.REALISTIC
        assert report.is_realistic

    def test_signal_unrealistic_for_impossible_target(self, noisy_dataset, catalog):
        # 40% uniform noise on a 4-class task: BER >= 0.3; accuracy 0.99
        # is unreachable and Snoopy must say so.
        report = Snoopy(catalog).run(noisy_dataset, target_accuracy=0.99)
        assert report.signal is FeasibilitySignal.UNREALISTIC

    def test_invalid_target_raises(self, dataset, catalog):
        with pytest.raises(DataValidationError):
            Snoopy(catalog).run(dataset, target_accuracy=0.0)

    def test_best_transform_is_high_fidelity(self, dataset, catalog):
        report = Snoopy(
            catalog, SnoopyConfig(strategy="full", seed=0)
        ).run(dataset, target_accuracy=0.6)
        assert report.best_transform in ("emb_high", "emb_mid")

    def test_curves_recorded(self, dataset, catalog):
        report = Snoopy(catalog).run(dataset, target_accuracy=0.6)
        assert report.best_transform in report.curves
        curve = report.curves[report.best_transform]
        assert curve.final_size == dataset.num_train  # winner topped up
        assert len(curve.sizes) >= 2

    def test_summary_renders(self, dataset, catalog):
        report = Snoopy(catalog).run(dataset, target_accuracy=0.6)
        text = report.summary()
        assert "Feasibility study" in text
        assert str(report.signal) in text


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy",
        ["full", "uniform", "successive_halving", "successive_halving_tangent"],
    )
    def test_all_strategies_run(self, dataset, catalog, strategy):
        config = SnoopyConfig(strategy=strategy, seed=0)
        report = Snoopy(catalog, config).run(dataset, target_accuracy=0.6)
        assert report.strategy.startswith(strategy.split("_tangent")[0])

    def test_sh_cheaper_than_full(self, dataset, catalog):
        full = Snoopy(catalog, SnoopyConfig(strategy="full", seed=0)).run(
            dataset, 0.6
        )
        sh = Snoopy(
            catalog, SnoopyConfig(strategy="successive_halving", seed=0)
        ).run(dataset, 0.6)
        assert sh.total_sim_cost_seconds < full.total_sim_cost_seconds

    def test_perfect_runs_single_arm(self, dataset, catalog):
        config = SnoopyConfig(strategy="perfect", perfect_arm_name="emb_high")
        report = Snoopy(catalog, config).run(dataset, target_accuracy=0.6)
        assert report.best_transform == "emb_high"
        assert len(report.per_transform) >= 1

    def test_perfect_unknown_arm_raises(self, dataset, catalog):
        config = SnoopyConfig(strategy="perfect", perfect_arm_name="nope")
        with pytest.raises(DataValidationError):
            Snoopy(catalog, config).run(dataset, target_accuracy=0.6)

    def test_deterministic_given_seed(self, dataset, catalog):
        a = Snoopy(catalog, SnoopyConfig(seed=5)).run(dataset, 0.6)
        b = Snoopy(catalog, SnoopyConfig(seed=5)).run(dataset, 0.6)
        assert a.ber_estimate == b.ber_estimate
        assert a.best_transform == b.best_transform


class TestIncrementalState:
    def test_state_requires_run(self, catalog):
        with pytest.raises(DataValidationError):
            Snoopy(catalog).incremental_state()

    def test_state_matches_report(self, noisy_dataset, catalog):
        system = Snoopy(catalog, SnoopyConfig(seed=0))
        report = system.run(noisy_dataset, target_accuracy=0.9)
        state = system.incremental_state()
        _, estimate = state.ber_estimate()
        assert estimate == pytest.approx(report.ber_estimate)

    def test_cleaning_all_labels_recovers_clean_estimate(
        self, dataset, noisy_dataset, catalog
    ):
        system = Snoopy(catalog, SnoopyConfig(seed=0))
        system.run(noisy_dataset, target_accuracy=0.9)
        state = system.incremental_state()
        _, before = state.ber_estimate()
        state.apply_cleaning(
            np.arange(noisy_dataset.num_train), dataset.train_y,
            np.arange(noisy_dataset.num_test), dataset.test_y,
        )
        _, after = state.ber_estimate()
        assert after < before

    def test_signal_flips_after_cleaning(self, dataset, noisy_dataset, catalog):
        system = Snoopy(catalog, SnoopyConfig(seed=0))
        report = system.run(noisy_dataset, target_accuracy=0.62)
        state = system.incremental_state()
        assert state.signal(0.62) is report.signal
        state.apply_cleaning(
            np.arange(noisy_dataset.num_train), dataset.train_y,
            np.arange(noisy_dataset.num_test), dataset.test_y,
        )
        # Fully cleaned: the moderately easy target must become realistic.
        assert state.signal(0.62) is FeasibilitySignal.REALISTIC


class TestAnnKnobValidation:
    def test_stray_knobs_rejected_without_matching_backend(self):
        with pytest.raises(DataValidationError, match="no effect"):
            SnoopyConfig(pq_m=8)  # no backend selected
        with pytest.raises(DataValidationError, match="no effect"):
            SnoopyConfig(knn_backend="ivf", rerank=8)  # ivf ignores rerank
        with pytest.raises(DataValidationError, match="nprobe"):
            SnoopyConfig(knn_backend="brute_force", nprobe=4)

    def test_knobs_accepted_by_consuming_backend(self):
        config = SnoopyConfig(
            knn_backend="ivf_pq", pq_m=8, pq_nbits=8, pq_dim=16,
            nprobe=4, rerank=16,
        )
        assert config.knn_backend_options() == {
            "pq_m": 8, "pq_nbits": 8, "pq_dim": 16,
            "nprobe": 4, "rerank": 16,
        }
        assert SnoopyConfig(knn_backend="ivf", nprobe=4).knn_backend_options() == {
            "nprobe": 4
        }

    def test_sharding_knobs(self):
        config = SnoopyConfig(
            knn_backend="ivf_pq", pq_nbits=4, pq_packed=True, knn_shards=2,
        )
        assert config.knn_backend_options() == {
            "pq_nbits": 4, "pq_packed": True, "shards": 2,
        }
        assert SnoopyConfig(
            knn_backend="ivf", knn_shards=3
        ).knn_backend_options() == {"shards": 3}
        with pytest.raises(DataValidationError, match="knn_shards"):
            SnoopyConfig(knn_backend="brute_force", knn_shards=2)
        with pytest.raises(DataValidationError, match="pq_packed"):
            SnoopyConfig(knn_backend="ivf", pq_packed=True)
        with pytest.raises(DataValidationError, match="knn_shards"):
            SnoopyConfig(knn_backend="ivf", knn_shards=0)
