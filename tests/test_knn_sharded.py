"""Parity suite for the packed fast-scan and sharded inverted-list tier.

The contract under test (see :mod:`repro.knn.sharding`): sharded scans
are **bit-identical** — distances AND indices — to the single-process
scan for any shard count including 1, across dtypes, probe depths, the
packed and unpacked code layouts, and the append/``partial_fit`` path;
and the packed fast-scan is bit-compatible with the float ADC path in
the full-keep regime (every probed candidate exactly re-ranked).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ShardedScanExecutor, default_max_workers
from repro.exceptions import DataValidationError
from repro.knn.base import make_index
from repro.knn.ivf import IVFFlatIndex
from repro.knn.pq import (
    IVFPQIndex,
    pack_codes_t,
    unpack_codes_t,
)
from repro.knn.sharding import select_pool_topk
from repro.transforms.store import EmbeddingStore

pytestmark = pytest.mark.ann


def _corpus(seed=0, n=900, dim=16, dtype="float32"):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(12, dim))
    assignment = rng.integers(0, 12, size=n)
    x = (centers[assignment] + rng.normal(size=(n, dim))).astype(dtype)
    y = assignment % 4
    queries = (
        centers[rng.integers(0, 12, size=80)] + rng.normal(size=(80, dim))
    ).astype(dtype)
    return x, y, queries


class TestPackedCodes:
    def test_pack_unpack_roundtrip(self, rng):
        for m in (1, 2, 3, 8, 15):
            codes_t = rng.integers(0, 16, size=(m, 37)).astype(np.uint8)
            packed = pack_codes_t(codes_t)
            assert packed.shape == ((m + 1) // 2, 37)
            assert packed.dtype == np.uint8
            np.testing.assert_array_equal(
                unpack_codes_t(packed, m), codes_t
            )

    def test_packed_shrinks_scan_index(self):
        x, y, _ = _corpus()
        packed = IVFPQIndex(
            nlist=8, pq_m=8, pq_nbits=4, pq_packed=True, seed=0
        ).fit(x, y)
        plain = IVFPQIndex(nlist=8, pq_m=8, pq_nbits=4, seed=0).fit(x, y)
        stats_packed = packed.memory_stats()
        stats_plain = plain.memory_stats()
        # Two 4-bit codes per byte vs one intp word per code: the scan-
        # path footprint shrinks by the word size times two.
        assert (
            stats_packed["scan_index_bytes"]
            <= stats_plain["scan_index_bytes"] / 8
        )

    def test_packed_requires_nbits_4(self):
        with pytest.raises(DataValidationError, match="pq_packed"):
            IVFPQIndex(pq_nbits=8, pq_packed=True)

    def test_nbits_must_be_4_or_8(self):
        with pytest.raises(DataValidationError, match="nbits must be 4"):
            IVFPQIndex(pq_nbits=6)


class TestPackedFastScanParity:
    @settings(max_examples=8, deadline=None)
    @given(
        dtype=st.sampled_from(["float32", "float64"]),
        nprobe=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_full_keep_bit_compatible_with_float_adc(
        self, dtype, nprobe, seed
    ):
        """rerank >= corpus: both layouts re-rank every probed candidate,
        so the packed fast-scan must reproduce the float ADC results
        bit for bit."""
        x, y, queries = _corpus(seed=seed, dtype=dtype)
        kwargs = dict(
            nlist=8, nprobe=nprobe, pq_m=8, pq_nbits=4,
            rerank=len(x), seed=seed, dtype=dtype,
        )
        plain = IVFPQIndex(**kwargs).fit(x, y)
        packed = IVFPQIndex(pq_packed=True, **kwargs).fit(x, y)
        d0, i0 = plain.kneighbors(queries, k=3)
        d1, i1 = packed.kneighbors(queries, k=3)
        np.testing.assert_array_equal(i0, i1)
        np.testing.assert_array_equal(d0, d1)

    def test_packed_without_rerank_falls_back_to_float_adc(self):
        """rerank=0 cannot keep the quantized-estimate guarantees, so
        the packed index must produce the float ADC path's results
        (unpacking on the fly) rather than quantized estimates."""
        x, y, queries = _corpus()
        kwargs = dict(nlist=8, nprobe=4, pq_m=8, pq_nbits=4, rerank=0, seed=0)
        plain = IVFPQIndex(**kwargs).fit(x, y)
        packed = IVFPQIndex(pq_packed=True, **kwargs).fit(x, y)
        assert not packed._use_packed_scan
        d0, i0 = plain.kneighbors(queries, k=3)
        d1, i1 = packed.kneighbors(queries, k=3)
        np.testing.assert_array_equal(i0, i1)
        np.testing.assert_array_equal(d0, d1)

    def test_packed_1nn_agreement_at_modest_rerank(self):
        """At practical re-rank depths the packed scan is allowed to
        select different semifinalists, but the re-ranked 1NN answer
        should still agree almost everywhere."""
        x, y, queries = _corpus(n=2000)
        kwargs = dict(
            nlist=16, nprobe=6, pq_m=8, pq_nbits=4, rerank=32, seed=0
        )
        plain = IVFPQIndex(**kwargs).fit(x, y)
        packed = IVFPQIndex(pq_packed=True, **kwargs).fit(x, y)
        _, i0 = plain.kneighbors(queries, k=1)
        _, i1 = packed.kneighbors(queries, k=1)
        assert np.mean(i0[:, 0] == i1[:, 0]) >= 0.95


class TestShardedScanBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        dtype=st.sampled_from(["float32", "float64"]),
        nprobe=st.integers(min_value=2, max_value=8),
        packed=st.booleans(),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_ivf_pq_shard_counts_bit_identical(
        self, dtype, nprobe, packed, seed
    ):
        x, y, queries = _corpus(seed=seed, dtype=dtype)
        kwargs = dict(
            nlist=12, nprobe=nprobe, pq_m=8, pq_nbits=4,
            rerank=24, seed=seed, dtype=dtype, pq_packed=packed,
        )
        results = {}
        for shards in (1, 2, 4):
            index = IVFPQIndex(shards=shards, **kwargs).fit(x, y)
            results[shards] = index.kneighbors(queries, k=3)
        for shards in (2, 4):
            np.testing.assert_array_equal(
                results[1][1], results[shards][1]
            )
            np.testing.assert_array_equal(
                results[1][0], results[shards][0]
            )

    @settings(max_examples=6, deadline=None)
    @given(
        dtype=st.sampled_from(["float32", "float64"]),
        nprobe=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_ivf_flat_shard_counts_bit_identical(self, dtype, nprobe, seed):
        x, y, queries = _corpus(seed=seed, dtype=dtype)
        # Duplicated rows force exact distance ties: the (distance,
        # index) total order must resolve them identically everywhere.
        x = np.concatenate([x, x[:100]])
        y = np.concatenate([y, y[:100]])
        results = {}
        for shards in (1, 2, 4):
            index = IVFFlatIndex(
                nlist=12, nprobe=nprobe, seed=seed, dtype=dtype,
                shards=shards,
            ).fit(x, y)
            results[shards] = index.kneighbors(queries, k=5)
        for shards in (2, 4):
            np.testing.assert_array_equal(
                results[1][1], results[shards][1]
            )
            np.testing.assert_array_equal(
                results[1][0], results[shards][0]
            )

    def test_partial_fit_appends_route_to_owning_shard(self):
        """Identical fit+append sequences give bit-identical results for
        every shard count, even when the append duplicates points
        (exact distance ties)."""
        x, y, queries = _corpus(n=1200)
        results = {}
        for shards in (1, 2, 3):
            index = IVFPQIndex(
                nlist=12, nprobe=5, pq_m=8, pq_nbits=4, rerank=24,
                seed=1, pq_packed=True, shards=shards,
            ).fit(x[:900], y[:900])
            index.partial_fit(x[900:], y[900:])
            index.partial_fit(x[:150], y[:150])  # duplicates -> ties
            results[shards] = index.kneighbors(queries, k=3)
        for shards in (2, 3):
            np.testing.assert_array_equal(
                results[1][1], results[shards][1]
            )
            np.testing.assert_array_equal(
                results[1][0], results[shards][0]
            )

    def test_make_index_rejects_shard_options_elsewhere(self):
        with pytest.raises(DataValidationError, match="shards"):
            make_index("brute_force", shards=2)
        with pytest.raises(DataValidationError, match="pq_packed"):
            make_index("ivf", pq_packed=True)
        index = make_index("ivf_pq", shards=2, pq_nbits=4, pq_packed=True)
        assert index.shards == 2

    def test_select_pool_topk_total_order(self):
        est = np.array([[3.0, 1.0, 1.0, np.inf, 2.0]])
        idx = np.array([[7, 9, 4, -1, 5]])
        top_est, top_idx = select_pool_topk(est, idx, 3)
        np.testing.assert_array_equal(top_est, [[1.0, 1.0, 2.0]])
        np.testing.assert_array_equal(top_idx, [[4, 9, 5]])


class TestShardedExecutorAndStore:
    def test_executor_scan_bit_identical_and_leak_free(self, shard_leak_guard):
        x, y, queries = _corpus(n=1500)
        ref = IVFPQIndex(
            nlist=12, nprobe=5, pq_m=8, pq_nbits=4, rerank=24, seed=1,
            pq_packed=True,
        ).fit(x, y)
        d0, i0 = ref.kneighbors(queries, k=3)
        store = EmbeddingStore()
        store.enable_sharing()
        try:
            with ShardedScanExecutor(store=store, max_workers=2) as executor:
                index = IVFPQIndex(
                    nlist=12, nprobe=5, pq_m=8, pq_nbits=4, rerank=24,
                    seed=1, pq_packed=True, shards=2,
                    scan_executor=executor, store=store,
                ).fit(x, y)
                d1, i1 = index.kneighbors(queries, k=3)
                index.partial_fit(x[:200], y[:200])
                ref.partial_fit(x[:200], y[:200])
                d2, i2 = index.kneighbors(queries, k=3)
                d3, i3 = ref.kneighbors(queries, k=3)
                index.release_shards()
        finally:
            store.release_shared()
        np.testing.assert_array_equal(i0, i1)
        np.testing.assert_array_equal(d0, d1)
        np.testing.assert_array_equal(i3, i2)
        np.testing.assert_array_equal(d3, d2)

    def test_flat_executor_scan_bit_identical(self, shard_leak_guard):
        x, y, queries = _corpus(n=1500)
        ref = IVFFlatIndex(nlist=12, nprobe=5, seed=1).fit(x, y)
        d0, i0 = ref.kneighbors(queries, k=4)
        store = EmbeddingStore()
        store.enable_sharing()
        try:
            with ShardedScanExecutor(store=store, max_workers=2) as executor:
                index = IVFFlatIndex(
                    nlist=12, nprobe=5, seed=1, shards=2,
                    scan_executor=executor, store=store,
                ).fit(x, y)
                d1, i1 = index.kneighbors(queries, k=4)
                index.release_shards()
        finally:
            store.release_shared()
        np.testing.assert_array_equal(i0, i1)
        np.testing.assert_array_equal(d0, d1)

    def test_exception_path_leaves_no_orphan_segments(self, shard_leak_guard):
        """Publications are freed even when the scan dies mid-flight:
        release_shared in the teardown must unlink published shard
        payloads, and the leak guard sees the /dev/shm delta."""
        x, y, queries = _corpus(n=1000)
        store = EmbeddingStore()
        store.enable_sharing()
        try:
            index = IVFPQIndex(
                nlist=12, nprobe=5, pq_m=8, pq_nbits=4, rerank=24,
                seed=1, pq_packed=True, shards=2, store=store,
            ).fit(x, y)
            index.kneighbors(queries, k=3)  # publishes shard payloads
            with pytest.raises(DataValidationError):
                index.kneighbors(queries[:, :4], k=3)  # dim mismatch
        finally:
            store.release_shared()

    def test_index_finalizer_unpublishes(self, shard_leak_guard):
        """A garbage-collected index (the per-batch rebuild pattern)
        frees its publications without an explicit release call."""
        import gc

        x, y, queries = _corpus(n=1000)
        store = EmbeddingStore()
        store.enable_sharing()
        try:
            index = IVFFlatIndex(
                nlist=12, nprobe=5, seed=1, shards=2, store=store
            ).fit(x, y)
            index.kneighbors(queries, k=3)
            assert store.stats.current_bytes >= 0
            del index
            gc.collect()
        finally:
            store.release_shared()

    def test_progressive_scan_executor_matches_inline(self):
        """ProgressiveOneNN with a scan executor reproduces the inline
        sharded evaluator's curve exactly (partial_fit path included)."""
        from repro.knn.progressive import ProgressiveOneNN

        x, y, queries = _corpus(n=1200)
        qy = np.arange(len(queries)) % 4
        options = dict(
            nlist=12, nprobe=5, pq_m=8, pq_nbits=4, rerank=24, seed=1,
            pq_packed=True, shards=2,
        )
        inline = ProgressiveOneNN(
            queries, qy, knn_backend="ivf_pq", knn_backend_options=options
        )
        store = EmbeddingStore()
        store.enable_sharing()
        try:
            with ShardedScanExecutor(store=store, max_workers=2) as executor:
                pooled = ProgressiveOneNN(
                    queries, qy, knn_backend="ivf_pq",
                    knn_backend_options=options, scan_executor=executor,
                )
                for start in range(0, 1200, 400):
                    e0 = inline.partial_fit(
                        x[start:start + 400], y[start:start + 400]
                    )
                    e1 = pooled.partial_fit(
                        x[start:start + 400], y[start:start + 400]
                    )
                    assert e0 == e1
                np.testing.assert_array_equal(
                    inline.nearest_indices, pooled.nearest_indices
                )
        finally:
            store.release_shared()

    @pytest.mark.skipif(
        default_max_workers() < 2, reason="single-core container"
    )
    def test_executor_uses_multiple_workers(self):
        assert default_max_workers() > 1
