"""Tests for the unified KNNIndex protocol, the make_index factory, the
incremental backend and the vectorized majority vote."""

import numpy as np
import pytest

from repro.estimators.cover_hart import OneNNEstimator
from repro.estimators.knn_loo import KNNLooEstimator
from repro.exceptions import DataValidationError
from repro.knn import (
    BruteForceKNN,
    IncrementalKNNIndex,
    IVFFlatIndex,
    KNNIndex,
    ProgressiveOneNN,
    available_backends,
    majority_vote,
    make_index,
)


class TestFactory:
    def test_backends_registered(self):
        assert set(available_backends()) >= {"brute_force", "incremental", "ivf"}

    @pytest.mark.parametrize(
        "backend,cls",
        [
            ("brute_force", BruteForceKNN),
            ("exact", BruteForceKNN),
            ("incremental", IncrementalKNNIndex),
            ("ivf", IVFFlatIndex),
        ],
    )
    def test_make_index_types(self, backend, cls):
        index = make_index(backend)
        assert isinstance(index, cls)
        assert isinstance(index, KNNIndex)

    def test_unknown_backend_raises(self):
        with pytest.raises(DataValidationError, match="unknown"):
            make_index("faiss")

    def test_ivf_rejects_cosine(self):
        with pytest.raises(DataValidationError, match="euclidean"):
            make_index("ivf", metric="cosine")

    def test_kwargs_forwarded(self):
        assert make_index("ivf", nlist=7, nprobe=3).nlist == 7
        assert make_index("brute_force", block_size=16).block_size == 16

    def test_protocol_surface_is_uniform(self, rng):
        x = rng.normal(size=(40, 4))
        y = rng.integers(0, 3, 40)
        queries = rng.normal(size=(10, 4))
        labels = rng.integers(0, 3, 10)
        for backend in available_backends():
            index = make_index(backend).fit(x, y)
            assert index.num_fitted == 40
            dist, idx = index.kneighbors(queries, k=3)
            assert dist.shape == idx.shape == (10, 3)
            assert index.predict(queries, k=3).shape == (10,)
            assert 0.0 <= index.error(queries, labels, k=3) <= 1.0


class TestIncrementalIndex:
    def test_partial_fit_matches_one_shot(self, rng):
        x = rng.normal(size=(60, 5))
        y = rng.integers(0, 3, 60)
        queries = rng.normal(size=(12, 5))
        whole = BruteForceKNN().fit(x, y)
        grown = IncrementalKNNIndex().fit(x[:10], y[:10])
        for start in range(10, 60, 7):
            grown.partial_fit(x[start : start + 7], y[start : start + 7])
        assert grown.num_fitted == 60
        d1, i1 = whole.kneighbors(queries, k=4)
        d2, i2 = grown.kneighbors(queries, k=4)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_allclose(d1, d2)
        assert grown.loo_error(k=3) == whole.loo_error(k=3)

    def test_refit_resets(self, rng):
        index = IncrementalKNNIndex().fit(
            rng.normal(size=(20, 3)), rng.integers(0, 2, 20)
        )
        index.fit(rng.normal(size=(5, 3)), rng.integers(0, 2, 5))
        assert index.num_fitted == 5

    def test_validation(self, rng):
        with pytest.raises(DataValidationError):
            IncrementalKNNIndex().fit(np.zeros((0, 3)), np.zeros(0))
        with pytest.raises(DataValidationError):
            IncrementalKNNIndex().kneighbors(rng.normal(size=(2, 3)))
        index = IncrementalKNNIndex().fit(
            rng.normal(size=(5, 3)), rng.integers(0, 2, 5)
        )
        with pytest.raises(DataValidationError):
            index.partial_fit(rng.normal(size=(4, 2)), rng.integers(0, 2, 4))
        with pytest.raises(DataValidationError, match="exclude_self"):
            index.kneighbors(rng.normal(size=(2, 3)), exclude_self=True)


def _reference_majority_vote(neighbor_labels):
    """The historical per-row scan, kept as the semantic oracle."""
    n, k = neighbor_labels.shape
    predictions = np.empty(n, dtype=np.int64)
    for i in range(n):
        values, counts = np.unique(neighbor_labels[i], return_counts=True)
        tied = set(values[counts == counts.max()].tolist())
        for label in neighbor_labels[i]:
            if label in tied:
                predictions[i] = label
                break
    return predictions


class TestMajorityVote:
    def test_matches_reference_under_heavy_ties(self, rng):
        # Few classes + even k maximizes tie pressure on the fast path.
        for k in (2, 3, 4, 6):
            labels = rng.integers(0, 3, size=(500, k))
            np.testing.assert_array_equal(
                majority_vote(labels), _reference_majority_vote(labels)
            )

    def test_k1_copies(self):
        labels = np.array([[2], [0]])
        out = majority_vote(labels)
        np.testing.assert_array_equal(out, [2, 0])
        assert not np.shares_memory(out, labels)


class TestSwappableBackends:
    def test_progressive_brute_force_backend_matches_builtin(self, rng):
        test_x = rng.normal(size=(25, 4))
        test_y = rng.integers(0, 3, 25)
        builtin = ProgressiveOneNN(test_x, test_y)
        swapped = ProgressiveOneNN(test_x, test_y, knn_backend="brute_force")
        for _ in range(4):
            batch_x = rng.normal(size=(20, 4))
            batch_y = rng.integers(0, 3, 20)
            assert swapped.partial_fit(batch_x, batch_y) == builtin.partial_fit(
                batch_x, batch_y
            )
        np.testing.assert_array_equal(
            swapped.nearest_indices, builtin.nearest_indices
        )

    def test_progressive_invalid_backend_fails_at_construction(self, rng):
        test_x = rng.normal(size=(5, 2))
        test_y = rng.integers(0, 2, 5)
        with pytest.raises(DataValidationError, match="unknown"):
            ProgressiveOneNN(test_x, test_y, knn_backend="faiss")
        with pytest.raises(DataValidationError, match="euclidean"):
            ProgressiveOneNN(
                test_x, test_y, metric="cosine", knn_backend="ivf"
            )

    def test_one_nn_estimator_ivf_backend(self, dataset):
        exact = OneNNEstimator().estimate(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        approx = OneNNEstimator(backend="ivf").estimate(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert approx.details["backend"] == "ivf"
        assert abs(approx.value - exact.value) < 0.1

    def test_knn_loo_rejects_backend_without_loo(self, dataset):
        estimator = KNNLooEstimator(backend="ivf")
        with pytest.raises(DataValidationError, match="leave-one-out"):
            estimator.estimate(
                dataset.train_x, dataset.train_y,
                dataset.test_x, dataset.test_y, dataset.num_classes,
            )

    def test_snoopy_config_accepts_backend(self, dataset, catalog):
        from repro.core.snoopy import Snoopy, SnoopyConfig

        config = SnoopyConfig(
            strategy="uniform",
            budget=240,
            pull_size=60,
            knn_backend="brute_force",
            extrapolate=False,
        )
        report = Snoopy(catalog, config).run(dataset, target_accuracy=0.9)
        assert report.per_transform
