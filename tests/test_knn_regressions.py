"""Regression tests for the kNN state-aliasing/masking bugs and the
vectorized IVF search (loop equivalence + brute-force parity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.knn.brute_force import BruteForceKNN
from repro.knn.ivf import IVFFlatIndex
from repro.knn.metrics import euclidean_distances
from repro.knn.progressive import ProgressiveOneNN


class TestProgressiveAliasing:
    """``relabel_test`` must never write through to the caller's arrays."""

    def test_relabel_test_does_not_mutate_caller_labels(self, rng):
        test_x = rng.normal(size=(20, 3))
        test_y = rng.integers(0, 3, size=20).astype(np.int64)
        caller_y = test_y.copy()
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(rng.normal(size=(10, 3)), rng.integers(0, 3, 10))
        evaluator.relabel_test(np.arange(20), (test_y + 1) % 3)
        np.testing.assert_array_equal(test_y, caller_y)

    def test_test_arrays_are_private_copies(self, rng):
        test_x = rng.normal(size=(8, 2))
        test_y = rng.integers(0, 2, size=8).astype(np.int64)
        evaluator = ProgressiveOneNN(test_x, test_y)
        assert not np.shares_memory(evaluator._test_x, test_x)
        assert not np.shares_memory(evaluator._test_y, test_y)

    def test_mutating_caller_features_does_not_change_errors(self, rng):
        test_x = rng.normal(size=(15, 4))
        test_y = rng.integers(0, 2, size=15)
        batch_x = rng.normal(size=(30, 4))
        batch_y = rng.integers(0, 2, size=30)
        reference = ProgressiveOneNN(test_x.copy(), test_y.copy())
        expected = reference.partial_fit(batch_x, batch_y)
        evaluator = ProgressiveOneNN(test_x, test_y)
        test_x += 100.0  # caller scribbles over its own array
        assert evaluator.partial_fit(batch_x, batch_y) == expected


class TestExcludeSelfMasking:
    """``exclude_self=True`` with foreign queries must raise, not mis-mask."""

    def test_foreign_queries_raise(self, rng):
        x = rng.normal(size=(30, 4))
        index = BruteForceKNN().fit(x, rng.integers(0, 2, 30))
        with pytest.raises(DataValidationError, match="exclude_self"):
            index.kneighbors(rng.normal(size=(10, 4)), k=1, exclude_self=True)

    def test_corpus_queries_still_work(self, rng):
        x = rng.normal(size=(30, 4))
        index = BruteForceKNN().fit(x, rng.integers(0, 2, 30))
        dist, idx = index.kneighbors(x, k=1, exclude_self=True)
        assert np.all(idx[:, 0] != np.arange(30))
        assert np.all(dist > 0)


class TestIVFEffectiveParams:
    """``fit`` must persist the clamped nlist/nprobe, not leave them stale."""

    def test_nlist_clamped_to_corpus_is_persisted(self, rng):
        index = IVFFlatIndex(nlist=64, nprobe=32, seed=0)
        index.fit(rng.normal(size=(10, 3)), rng.integers(0, 2, 10))
        assert index.nlist == 10
        assert index.nprobe == 10
        assert len(index._lists) == index.nlist

    def test_unclamped_fit_keeps_configured_values(self, rng):
        index = IVFFlatIndex(nlist=4, nprobe=2, seed=0)
        index.fit(rng.normal(size=(50, 3)), rng.integers(0, 2, 50))
        assert index.nlist == 4
        assert index.nprobe == 2

    def test_refit_on_larger_corpus_restores_requested_nlist(self, rng):
        index = IVFFlatIndex(nlist=8, nprobe=4, seed=0)
        index.fit(rng.normal(size=(3, 2)), rng.integers(0, 2, 3))
        assert index.nlist == 3
        index.fit(rng.normal(size=(100, 2)), rng.integers(0, 2, 100))
        assert index.nlist == 8
        assert index.nprobe == 4

    def test_widening_bound_uses_effective_nlist(self, rng):
        # After clamping, asking for every neighbor must widen probes up
        # to the *effective* list count and return the full corpus.
        index = IVFFlatIndex(nlist=32, nprobe=1, seed=0)
        x = rng.normal(size=(12, 3))
        index.fit(x, rng.integers(0, 2, 12))
        dist, idx = index.kneighbors(rng.normal(size=(3, 3)), k=12)
        assert sorted(idx[0].tolist()) == list(range(12))
        assert np.all(np.diff(dist, axis=1) >= -1e-12)


def _seed_loop_kneighbors(index, queries, k):
    """The pre-vectorization per-query reference implementation."""
    queries = np.asarray(queries, dtype=np.float64)
    centroid_dist = euclidean_distances(queries, index._quantizer.centroids)
    probe_order = np.argsort(centroid_dist, axis=1)
    out_dist = np.empty((len(queries), k))
    out_idx = np.empty((len(queries), k), dtype=np.int64)
    for row, query in enumerate(queries):
        probes = index.nprobe
        while True:
            candidates = np.concatenate(
                [index._lists[c] for c in probe_order[row, :probes]]
            )
            if len(candidates) >= k or probes >= len(index._lists):
                break
            probes += 1
        dist = euclidean_distances(query[None, :], index._x[candidates])[0]
        top = np.argsort(dist)[:k]
        out_dist[row] = dist[top]
        out_idx[row] = candidates[top]
    return out_dist, out_idx


class TestIVFVectorizedEquivalence:
    @pytest.mark.parametrize("nprobe,k", [(1, 1), (2, 3), (3, 7), (8, 2)])
    def test_batched_matches_reference_loop(self, rng, nprobe, k):
        x = rng.normal(size=(300, 6))
        y = rng.integers(0, 4, 300)
        queries = rng.normal(size=(70, 6))
        index = IVFFlatIndex(nlist=8, nprobe=nprobe, seed=0).fit(x, y)
        loop_dist, loop_idx = _seed_loop_kneighbors(index, queries, k)
        vec_dist, vec_idx = index.kneighbors(queries, k=k)
        np.testing.assert_allclose(vec_dist, loop_dist, atol=1e-9)
        np.testing.assert_array_equal(vec_idx, loop_idx)

    def test_tiny_lists_widening_matches_reference_loop(self, rng):
        # Clusters smaller than k force the widening path for most queries.
        x = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, 40)
        queries = rng.normal(size=(11, 3))
        index = IVFFlatIndex(nlist=10, nprobe=1, seed=0).fit(x, y)
        loop_dist, _ = _seed_loop_kneighbors(index, queries, 15)
        vec_dist, _ = index.kneighbors(queries, k=15)
        np.testing.assert_allclose(vec_dist, loop_dist, atol=1e-9)

    def test_memory_chunking_does_not_change_results(self, rng, monkeypatch):
        import repro.knn.ivf as ivf_module

        x = rng.normal(size=(200, 5))
        y = rng.integers(0, 3, 200)
        queries = rng.normal(size=(50, 5))
        index = IVFFlatIndex(nlist=8, nprobe=2, seed=0).fit(x, y)
        big_dist, big_idx = index.kneighbors(queries, k=4)
        monkeypatch.setattr(ivf_module, "_GATHER_BUDGET", 1)
        small_dist, small_idx = index.kneighbors(queries, k=4)
        np.testing.assert_array_equal(big_idx, small_idx)
        np.testing.assert_allclose(big_dist, small_dist)


class TestIVFBruteForceParity:
    """At ``nprobe == nlist`` the IVF index is exactly brute force."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=12, max_value=120),
        dim=st.integers(min_value=1, max_value=8),
        nlist=st.integers(min_value=1, max_value=10),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_probe_matches_brute_force(self, seed, n, dim, nlist, k):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, dim))
        y = rng.integers(0, 3, n)
        queries = rng.normal(size=(9, dim))
        exact = BruteForceKNN().fit(x, y)
        ivf = IVFFlatIndex(nlist=nlist, nprobe=nlist, seed=0).fit(x, y)
        exact_dist, exact_idx = exact.kneighbors(queries, k=k)
        ivf_dist, ivf_idx = ivf.kneighbors(queries, k=k)
        np.testing.assert_array_equal(ivf_idx, exact_idx)
        np.testing.assert_allclose(ivf_dist, exact_dist, atol=1e-9)
        np.testing.assert_array_equal(
            ivf.predict(queries, k=k), exact.predict(queries, k=k)
        )
