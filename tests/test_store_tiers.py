"""Tests for the EmbeddingStore's shared-memory and disk spill tiers."""

import gc
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.transforms.linear import IdentityTransform, PCATransform
from repro.transforms.store import (
    _SPILL_SUFFIX,
    EmbeddingStore,
    SharedArrayRef,
    _read_spill,
    _write_spill,
    attach_handle,
    clear_spill_dir,
    scan_spill_dir,
)


class CountingTransform(IdentityTransform):
    """Identity transform counting transform() invocations.

    The counter mutates the transform's pickled state, so this helper is
    only for single-process tests (the store caches the content token by
    object identity, making in-process counting safe).
    """

    def __init__(self, dim, name="counting"):
        super().__init__(dim)
        self.name = name
        self.calls = 0

    def transform(self, x):
        self.calls += 1
        return super().transform(x)


class LoggingTransform(IdentityTransform):
    """Identity transform logging transform() calls to a file.

    Its pickled state never changes (the log lives outside the object),
    so its content token — and therefore its cached blocks — stay stable
    across pickling, processes, and runs.  The file also counts calls
    made in *worker* processes, which an attribute counter cannot.
    """

    def __init__(self, dim, log_path, name="logging"):
        super().__init__(dim)
        self.name = name
        self.log_path = str(log_path)

    def transform(self, x):
        with open(self.log_path, "a") as fh:
            fh.write(f"{os.getpid()}:{len(x)}\n")
        return super().transform(x)

    @property
    def calls_logged(self):
        try:
            with open(self.log_path) as fh:
                return sum(1 for _ in fh)
        except FileNotFoundError:
            return 0


@pytest.fixture()
def data(rng):
    return rng.normal(size=(300, 6))


@pytest.fixture()
def transform(data):
    return CountingTransform(6).fit(data)


def _spill_files(directory):
    return sorted(
        name for name in os.listdir(directory)
        if name.endswith(_SPILL_SUFFIX)
    )


class TestSpillFileFormat:
    def test_round_trip_preserves_dtype_shape_content(self, tmp_path, rng):
        for dtype in ("float32", "float64", "uint8", "int64"):
            array = (rng.random((13, 7)) * 100).astype(dtype)
            _write_spill(str(tmp_path), f"block-{dtype}", array)
            back = _read_spill(str(tmp_path), f"block-{dtype}")
            assert back.dtype == array.dtype
            assert back.shape == array.shape
            np.testing.assert_array_equal(back, array)

    def test_read_back_is_read_only(self, tmp_path):
        _write_spill(str(tmp_path), "ro", np.ones((4, 4)))
        back = _read_spill(str(tmp_path), "ro")
        with pytest.raises(ValueError):
            back[0, 0] = 2.0

    def test_missing_file_is_none(self, tmp_path):
        assert _read_spill(str(tmp_path), "never-written") is None

    def test_corrupted_payload_is_miss_and_removed(self, tmp_path):
        _write_spill(str(tmp_path), "victim", np.ones((8, 8)))
        path = tmp_path / ("victim" + _SPILL_SUFFIX)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(blob))
        assert _read_spill(str(tmp_path), "victim") is None
        assert not path.exists()

    def test_truncated_file_is_miss_and_removed(self, tmp_path):
        _write_spill(str(tmp_path), "victim", np.ones((8, 8)))
        path = tmp_path / ("victim" + _SPILL_SUFFIX)
        path.write_bytes(path.read_bytes()[:-20])
        assert _read_spill(str(tmp_path), "victim") is None
        assert not path.exists()

    def test_garbage_file_is_miss_and_removed(self, tmp_path):
        path = tmp_path / ("junk" + _SPILL_SUFFIX)
        path.write_bytes(b"not a block file at all")
        assert _read_spill(str(tmp_path), "junk") is None
        assert not path.exists()


class TestSpillTier:
    def test_blocks_written_through_to_disk(self, tmp_path, data, transform):
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            store.embed(transform, data)
            assert len(_spill_files(tmp_path)) == 5
            assert store.stats.spill_writes == 5

    def test_eviction_keeps_spilled_copy_and_promotes_on_hit(
        self, tmp_path, data, transform
    ):
        block_bytes = 64 * 6 * 8
        with EmbeddingStore(
            max_bytes=2 * block_bytes, block_rows=64, store_dir=tmp_path
        ) as store:
            store.embed(transform, data)  # 5 blocks through 2-block budget
            assert store.stats.evictions >= 3
            transform.calls = 0
            out = store.embed(transform, data)
            # Every evicted block came back from disk, none recomputed.
            assert transform.calls == 0
            assert store.stats.spill_hits >= 3
            np.testing.assert_array_equal(out, data)

    def test_warm_from_disk_fresh_store_zero_transform_calls(
        self, tmp_path, data
    ):
        first = CountingTransform(6, name="warm").fit(data)
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            store.embed(first, data)
        # A *new* store and a rebuilt-but-identical transform: every
        # block must come from the spill tier (simulates a process
        # restart / another tenant on the same store_dir).
        second = CountingTransform(6, name="warm").fit(data)
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            out = store.embed(second, data)
            assert second.calls == 0
            assert store.stats.misses == 0
            assert store.stats.spill_hits == 5
        np.testing.assert_array_equal(out, data)

    def test_different_transforms_never_share_spill_files(
        self, tmp_path, data
    ):
        ident = CountingTransform(6, name="same").fit(data)
        pca = PCATransform(3).fit(data)
        pca.name = "same"
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            a = store.embed(ident, data)
            b = store.embed(pca, data)
            assert a.shape != b.shape

    def test_float32_and_float64_stores_do_not_share(self, tmp_path, data):
        first = CountingTransform(6, name="dt").fit(data)
        with EmbeddingStore(
            block_rows=64, store_dir=tmp_path, dtype="float32"
        ) as store:
            store.embed(first, data)
        second = CountingTransform(6, name="dt").fit(data)
        with EmbeddingStore(
            block_rows=64, store_dir=tmp_path, dtype="float64"
        ) as store:
            out = store.embed(second, data)
            # The float32 files must not serve the float64 store.
            assert second.calls > 0
            assert out.dtype == np.float64

    def test_spill_budget_prunes_oldest_files(self, tmp_path, data, transform):
        block_file_bytes = 64 * 6 * 8 + 120  # payload + header slack
        with EmbeddingStore(
            block_rows=64,
            store_dir=tmp_path,
            spill_bytes=2 * block_file_bytes,
        ) as store:
            store.embed(transform, data)  # writes 5 block files
            assert len(_spill_files(tmp_path)) <= 2
            assert store.stats.spill_current_bytes <= store.spill_bytes

    def test_corrupt_spill_block_recomputes(self, tmp_path, data, transform):
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            store.embed(transform, data)
        for name in _spill_files(tmp_path):
            path = tmp_path / name
            blob = bytearray(path.read_bytes())
            blob[-3] ^= 0xFF
            path.write_bytes(bytes(blob))
        fresh = CountingTransform(6).fit(data)
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            result = store.embed(fresh, data)
            assert fresh.calls > 0  # recomputed, never crashed
            np.testing.assert_array_equal(result, data)

    def test_invalidate_removes_this_sessions_spill_files(
        self, tmp_path, data, transform
    ):
        with EmbeddingStore(block_rows=64, store_dir=tmp_path) as store:
            store.embed(transform, data)
            assert len(_spill_files(tmp_path)) == 5
            store.invalidate(transform)
            assert len(_spill_files(tmp_path)) == 0

    def test_aux_blocks_are_session_scoped_on_disk(self, tmp_path):
        codes = np.arange(64, dtype=np.uint8).reshape(16, 4)
        with EmbeddingStore(store_dir=tmp_path) as store:
            store.put_block("pq", "codes", codes)
            assert len(_spill_files(tmp_path)) == 1
        # A new session must not see the previous session's aux blocks
        # (their content is caller-mutable, unlike embedding blocks).
        with EmbeddingStore(store_dir=tmp_path) as store:
            assert store.get_block("pq", "codes") is None

    def test_aux_block_spill_round_trip_within_session(self, tmp_path):
        codes = np.arange(64, dtype=np.uint8).reshape(16, 4)
        block_bytes = codes.nbytes
        with EmbeddingStore(max_bytes=block_bytes, store_dir=tmp_path) as store:
            store.put_block("pq", "codes", codes)
            # Push the codes out of the hot tier.
            store.put_block("pq", "other", np.zeros((16, 4), dtype=np.uint8))
            back = store.get_block("pq", "codes")
            assert back is not None
            assert back.dtype == np.uint8
            np.testing.assert_array_equal(back, codes)


class TestScanAndClear:
    def test_scan_reports_layout(self, tmp_path):
        _write_spill(str(tmp_path), "a", np.zeros((8, 4), dtype=np.float32))
        entries = scan_spill_dir(str(tmp_path))
        assert len(entries) == 1
        assert entries[0]["dtype"] == "float32"
        assert entries[0]["shape"] == "8x4"
        assert entries[0]["bytes"] > 8 * 4 * 4

    def test_scan_missing_dir_is_empty(self, tmp_path):
        assert scan_spill_dir(str(tmp_path / "nope")) == []

    def test_clear_removes_files_and_reports_bytes(self, tmp_path):
        _write_spill(str(tmp_path), "a", np.zeros((8, 4)))
        _write_spill(str(tmp_path), "b", np.zeros((8, 4)))
        files, reclaimed = clear_spill_dir(str(tmp_path))
        assert files == 2
        assert reclaimed > 0
        assert _spill_files(tmp_path) == []


class TestSharedMemoryTier:
    def test_enable_sharing_migrates_hot_blocks(self, data, transform):
        with EmbeddingStore(block_rows=64) as store:
            store.embed(transform, data)
            store.enable_sharing()
            assert store.is_shared
            assert store.stats.shared_segments >= 5
            transform.calls = 0
            out = store.embed(transform, data)
            assert transform.calls == 0
            np.testing.assert_array_equal(out, data)

    def test_handle_attaches_blocks_by_name(self, data, tmp_path):
        transform = LoggingTransform(6, tmp_path / "calls.log").fit(data)
        with EmbeddingStore(block_rows=64, shared=True) as store:
            store.embed(transform, data)
            warm_calls = transform.calls_logged
            handle = pickle.loads(pickle.dumps(store))
            assert handle.is_handle
            # Same transform content -> same token -> same segments.
            clone = pickle.loads(pickle.dumps(transform))
            out = handle.embed(clone, data)
            np.testing.assert_array_equal(out, data)
            assert transform.calls_logged == warm_calls
            assert handle.stats.misses == 0

    def test_handle_unpickles_once_per_process(self, data, transform):
        with EmbeddingStore(block_rows=64, shared=True) as store:
            h1 = pickle.loads(pickle.dumps(store))
            h2 = pickle.loads(pickle.dumps(store))
            assert h1 is h2

    def test_close_unlinks_all_segments(self, data, transform):
        store = EmbeddingStore(block_rows=64, shared=True)
        store.embed(transform, data)
        names = [f"/dev/shm/{e.name}" for e in store._blocks.values()]
        assert names and all(os.path.exists(n) for n in names)
        store.close()
        assert not any(os.path.exists(n) for n in names)

    def test_garbage_collection_unlinks_segments(self, data, transform):
        store = EmbeddingStore(block_rows=64, shared=True)
        store.embed(transform, data)
        session = store._session
        del store
        gc.collect()
        leaked = [n for n in os.listdir("/dev/shm") if session in n]
        assert leaked == []

    def test_close_removes_ephemeral_spill_dir(self):
        store = EmbeddingStore(shared=True)
        directory = store.store_dir
        assert directory is not None and os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)

    def test_close_is_idempotent(self):
        store = EmbeddingStore(shared=True)
        store.close()
        store.close()

    def test_exception_inside_with_still_cleans_up(self, data, transform):
        with pytest.raises(RuntimeError):
            with EmbeddingStore(block_rows=64, shared=True) as store:
                store.embed(transform, data)
                session = store._session
                raise RuntimeError("boom")
        assert not [n for n in os.listdir("/dev/shm") if session in n]


class TestSharedArrays:
    def test_round_trip_through_ref(self, rng):
        pool = rng.normal(size=(128, 16))
        with EmbeddingStore(shared=True) as store:
            ref = store.share_array(pool)
            assert isinstance(ref, SharedArrayRef)
            assert ref.nbytes == pool.nbytes
            handle = pickle.loads(pickle.dumps(store))
            resolved = handle.resolve_array(pickle.loads(pickle.dumps(ref)))
            np.testing.assert_array_equal(resolved, pool)

    def test_sharing_same_array_twice_reuses_segment(self, rng):
        pool = rng.normal(size=(64, 8))
        with EmbeddingStore(shared=True) as store:
            first = store.share_array(pool)
            second = store.share_array(pool)
            assert first == second
            assert store.stats.pinned_bytes == pool.nbytes

    def test_unshared_store_returns_none(self, rng):
        with EmbeddingStore() as store:
            assert store.share_array(rng.normal(size=(4, 4))) is None
            assert not store.can_share_arrays

    def test_release_shared_unpins(self, rng):
        with EmbeddingStore(shared=True) as store:
            ref = store.share_array(rng.normal(size=(64, 8)))
            assert store.stats.pinned_bytes > 0
            store.release_shared()
            assert store.stats.pinned_bytes == 0
            assert store.resolve_array(ref) is None


def _worker_embed(payload):
    """Embed a slice through an attached store handle (separate process)."""
    store, transform, data, start, stop = payload
    out = store.embed_rows(transform, data, start, stop)
    return os.getpid(), out.copy(), store.stats.misses


def _worker_put_get(payload):
    """Concurrent aux-block writers/readers over one shared store."""
    store, role, value = payload
    if role == "writer":
        store.put_block("coherency", "shared-key", value)
        return os.getpid(), None
    return os.getpid(), store.get_block("coherency", "shared-key")


@pytest.mark.slow
class TestCrossProcessCoherency:
    def test_two_workers_agree_on_embeddings(self, data, tmp_path):
        transform = LoggingTransform(6, tmp_path / "calls.log").fit(data)
        with EmbeddingStore(block_rows=64, shared=True) as store:
            store.embed(transform, data)  # warm the shared hot tier
            warm_calls = transform.calls_logged
            with ProcessPoolExecutor(max_workers=2) as pool:
                results = list(pool.map(
                    _worker_embed,
                    [
                        (store, transform, data, 0, 150),
                        (store, transform, data, 150, 300),
                    ],
                ))
            (pid_a, out_a, miss_a), (pid_b, out_b, miss_b) = results
            np.testing.assert_array_equal(out_a, data[:150])
            np.testing.assert_array_equal(out_b, data[150:])
            # Warm store: workers recomputed nothing, anywhere.
            assert miss_a == 0 and miss_b == 0
            assert transform.calls_logged == warm_calls

    def test_concurrent_put_block_readers_see_writer_value(self, rng):
        codes = (rng.random((32, 8)) * 255).astype(np.uint8)
        with EmbeddingStore(shared=True) as store:
            with ProcessPoolExecutor(max_workers=2) as pool:
                list(pool.map(
                    _worker_put_get, [(store, "writer", codes)]
                ))
                results = list(pool.map(
                    _worker_put_get,
                    [(store, "reader", None), (store, "reader", None)],
                ))
            for _pid, seen in results:
                assert seen is not None
                np.testing.assert_array_equal(seen, codes)
            # The parent agrees with the workers too (via the spill dir).
            mine = store.get_block("coherency", "shared-key")
            assert mine is not None
            np.testing.assert_array_equal(mine, codes)

    def test_worker_survives_parent_side_eviction(self, data, tmp_path):
        transform = LoggingTransform(6, tmp_path / "calls.log").fit(data)
        block_bytes = 64 * 6 * 8
        with EmbeddingStore(
            max_bytes=2 * block_bytes, block_rows=64, shared=True
        ) as store:
            store.embed(transform, data)  # evicts 3 of 5 blocks to spill
            warm_calls = transform.calls_logged
            with ProcessPoolExecutor(max_workers=2) as pool:
                results = list(pool.map(
                    _worker_embed,
                    [
                        (store, transform, data, 0, 150),
                        (store, transform, data, 150, 300),
                    ],
                ))
            (_pid_a, out_a, _), (_pid_b, out_b, _) = results
            np.testing.assert_array_equal(out_a, data[:150])
            np.testing.assert_array_equal(out_b, data[150:])
            # Evicted blocks came from the shared spill dir, not from
            # re-running the transform in a worker.
            assert transform.calls_logged == warm_calls


class TestHandleState:
    def test_attach_handle_registry_pid_keyed(self):
        with EmbeddingStore(shared=True) as store:
            state = store.handle_state()
            handle = attach_handle(state)
            again = attach_handle(state)
            assert handle is again
            assert handle.is_handle
            assert handle.store_dir == store.store_dir

    def test_handle_state_carries_budgets(self):
        with EmbeddingStore(
            max_bytes=123456, block_rows=32, spill_bytes=654321, shared=True
        ) as store:
            state = store.handle_state()
            assert state["max_bytes"] == 123456
            assert state["block_rows"] == 32
            assert state["spill_bytes"] == 654321
