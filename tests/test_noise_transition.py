"""Unit tests for repro.noise.transition.TransitionMatrix."""

import numpy as np
import pytest

from repro.exceptions import TransitionMatrixError
from repro.noise.transition import TransitionMatrix


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(TransitionMatrixError):
            TransitionMatrix(np.ones((2, 3)) / 2)

    def test_rejects_single_class(self):
        with pytest.raises(TransitionMatrixError):
            TransitionMatrix(np.ones((1, 1)))

    def test_rejects_bad_column_sums(self):
        matrix = np.eye(3)
        matrix[0, 0] = 0.5
        with pytest.raises(TransitionMatrixError, match="sum to 1"):
            TransitionMatrix(matrix)

    def test_rejects_negative_entries(self):
        matrix = np.array([[1.2, 0.0], [-0.2, 1.0]])
        with pytest.raises(TransitionMatrixError):
            TransitionMatrix(matrix)

    def test_identity_is_valid(self):
        t = TransitionMatrix(np.eye(4))
        assert t.noise_level() == 0.0
        assert t.preserves_argmax()


class TestUniform:
    @pytest.mark.parametrize("rho,c", [(0.0, 2), (0.3, 5), (1.0, 10)])
    def test_columns_sum_to_one(self, rho, c):
        t = TransitionMatrix.uniform(rho, c)
        np.testing.assert_allclose(t.matrix.sum(axis=0), 1.0)

    def test_flip_fraction_formula(self):
        # Uniform resampling flips rho * (1 - 1/C) of each class.
        t = TransitionMatrix.uniform(0.4, 5)
        np.testing.assert_allclose(t.flip_fractions, 0.4 * (1 - 1 / 5))

    def test_preserves_argmax_below_saturation(self):
        assert TransitionMatrix.uniform(0.5, 10).preserves_argmax()

    def test_rho_out_of_range_raises(self):
        with pytest.raises(TransitionMatrixError):
            TransitionMatrix.uniform(1.5, 3)

    def test_off_diagonals_equal(self):
        t = TransitionMatrix.uniform(0.3, 4)
        assert t.max_off_diagonal() == pytest.approx(t.min_off_diagonal())


class TestPairwise:
    def test_default_permutation_is_cycle(self):
        t = TransitionMatrix.pairwise(0.2, 4)
        # Class y leaks only into (y+1) % 4.
        for y in range(4):
            assert t.matrix[(y + 1) % 4, y] == pytest.approx(0.2)
            assert t.matrix[y, y] == pytest.approx(0.8)

    def test_rejects_fixed_point_permutation(self):
        with pytest.raises(TransitionMatrixError, match="fixed points"):
            TransitionMatrix.pairwise(0.1, 3, permutation=np.array([0, 2, 1]))

    def test_rejects_non_bijection(self):
        with pytest.raises(TransitionMatrixError, match="bijection"):
            TransitionMatrix.pairwise(0.1, 3, permutation=np.array([1, 1, 0]))

    def test_noise_level_equals_rho(self):
        assert TransitionMatrix.pairwise(0.25, 6).noise_level() == pytest.approx(
            0.25
        )


class TestClassDependentRandom:
    def test_mean_flip_approximately_respected(self):
        t = TransitionMatrix.class_dependent_random(
            10, mean_flip=0.2, flip_spread=0.05, rng=0
        )
        assert abs(t.noise_level() - 0.2) < 0.05

    def test_preserves_argmax(self):
        t = TransitionMatrix.class_dependent_random(
            8, mean_flip=0.35, flip_spread=0.1, concentration=0.2, rng=3
        )
        assert t.preserves_argmax()

    def test_columns_sum_to_one(self):
        t = TransitionMatrix.class_dependent_random(6, mean_flip=0.3, rng=1)
        np.testing.assert_allclose(t.matrix.sum(axis=0), 1.0, atol=1e-9)


class TestSampling:
    def test_identity_matrix_never_flips(self, rng):
        t = TransitionMatrix(np.eye(5))
        labels = rng.integers(0, 5, size=300)
        np.testing.assert_array_equal(t.sample_noisy_labels(labels, rng=0), labels)

    def test_realized_flip_rate_matches_expectation(self):
        t = TransitionMatrix.uniform(0.5, 4)
        labels = np.repeat(np.arange(4), 2500)
        noisy = t.sample_noisy_labels(labels, rng=0)
        realized = np.mean(noisy != labels)
        assert abs(realized - 0.5 * (1 - 1 / 4)) < 0.02

    def test_out_of_range_label_raises(self):
        t = TransitionMatrix.uniform(0.1, 3)
        with pytest.raises(TransitionMatrixError):
            t.sample_noisy_labels(np.array([5]))

    def test_deterministic_with_seed(self):
        t = TransitionMatrix.uniform(0.4, 3)
        labels = np.arange(3).repeat(100)
        a = t.sample_noisy_labels(labels, rng=42)
        b = t.sample_noisy_labels(labels, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_noise_level_with_priors(self):
        matrix = np.array([[0.9, 0.3], [0.1, 0.7]])
        t = TransitionMatrix(matrix)
        # All mass on class 0 -> noise is class 0's flip fraction.
        assert t.noise_level(np.array([1.0, 0.0])) == pytest.approx(0.1)
        assert t.noise_level(np.array([0.0, 1.0])) == pytest.approx(0.3)
