"""Execution-engine tests: backends, scheduler, and cross-backend parity.

The headline guarantee of the staged execution engine is that the
``serial``, ``thread`` and ``process`` backends produce *bit-identical*
feasibility reports — same winner, same losses, same curves — across
allocation strategies and seeds.  These tests pin that contract.
"""

import pickle

import numpy as np
import pytest

from repro.core.engine import (
    ProcessBackend,
    RoundScheduler,
    SerialBackend,
    ThreadBackend,
    backend_names,
    make_backend,
    spawn_arm_streams,
)
from repro.core.snoopy import Snoopy, SnoopyConfig
from repro.exceptions import DataValidationError
from repro.transforms.store import EmbeddingStore


def _square(x):
    return x * x


class TestBackends:
    def test_registry(self):
        assert backend_names() == ("process", "serial", "thread")

    def test_unknown_backend_raises(self):
        with pytest.raises(DataValidationError):
            make_backend("quantum")

    def test_invalid_max_workers_raises(self):
        with pytest.raises(DataValidationError):
            SerialBackend(max_workers=0)

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_map_preserves_order(self, name):
        with make_backend(name, max_workers=2) as backend:
            assert backend.map(_square, range(7)) == [
                0, 1, 4, 9, 16, 25, 36
            ]

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_single_item_skips_pool(self, name):
        backend = make_backend(name, max_workers=2)
        assert backend.map(_square, [3]) == [9]
        assert backend._pool is None
        backend.close()

    def test_close_is_idempotent(self):
        backend = ThreadBackend(max_workers=2)
        backend.map(_square, [1, 2])
        backend.close()
        backend.close()


class TestSpawnArmStreams:
    def test_deterministic_per_seed(self):
        a = [g.random() for g in spawn_arm_streams(7, 4)]
        b = [g.random() for g in spawn_arm_streams(7, 4)]
        assert a == b

    def test_streams_are_independent(self):
        draws = [g.random() for g in spawn_arm_streams(7, 4)]
        assert len(set(draws)) == 4

    def test_accepts_generator_seed(self):
        streams = spawn_arm_streams(np.random.default_rng(0), 2)
        assert len(streams) == 2

    def test_negative_count_raises(self):
        with pytest.raises(DataValidationError):
            spawn_arm_streams(0, -1)


def _report_fingerprint(report):
    """Everything observable about a report, for exact comparison."""
    return {
        "signal": report.signal,
        "ber": report.ber_estimate,
        "best": report.best_transform,
        "gap": report.gap,
        "strategy": report.strategy,
        "sim_cost": report.total_sim_cost_seconds,
        "per_transform": [
            (r.transform_name, r.samples_used, r.one_nn_error,
             r.estimate.value, r.sim_cost_seconds)
            for r in report.per_transform
        ],
        "curves": {
            name: (curve.sizes.tolist(), curve.errors.tolist())
            for name, curve in report.curves.items()
        },
        "confident": report.signal_confident,
    }


def _run(catalog, dataset, strategy, backend, seed=0):
    config = SnoopyConfig(
        strategy=strategy,
        seed=seed,
        execution_backend=backend,
        max_workers=2,
    )
    system = Snoopy(catalog, config)
    report = system.run(dataset, target_accuracy=0.7)
    losses = {arm.name: list(arm.losses) for arm in system._state.arms}
    return _report_fingerprint(report), losses


class TestBackendParity:
    """serial vs thread vs process must be bit-identical."""

    @pytest.mark.parametrize(
        "strategy",
        ["successive_halving_tangent", "successive_halving", "uniform", "full"],
    )
    def test_thread_matches_serial(self, dataset, catalog, strategy):
        ref_report, ref_losses = _run(catalog, dataset, strategy, "serial")
        thr_report, thr_losses = _run(catalog, dataset, strategy, "thread")
        assert thr_report == ref_report
        assert thr_losses == ref_losses

    @pytest.mark.parametrize("strategy", ["successive_halving_tangent", "uniform"])
    def test_process_matches_serial(self, dataset, catalog, strategy):
        ref_report, ref_losses = _run(catalog, dataset, strategy, "serial")
        proc_report, proc_losses = _run(catalog, dataset, strategy, "process")
        assert proc_report == ref_report
        assert proc_losses == ref_losses

    @pytest.mark.parametrize("seed", [1, 2])
    def test_parity_across_seeds(self, dataset, catalog, seed):
        ref, _ = _run(
            catalog, dataset, "successive_halving_tangent", "serial", seed
        )
        thr, _ = _run(
            catalog, dataset, "successive_halving_tangent", "thread", seed
        )
        assert thr == ref

    def test_store_disabled_still_runs(self, dataset, catalog):
        config = SnoopyConfig(seed=0, embedding_cache_bytes=0)
        system = Snoopy(catalog, config)
        assert system.store is None
        report = system.run(dataset, target_accuracy=0.7)
        assert report.best_transform in catalog.names


def _count_transform_calls(catalog):
    """Wrap each transform's transform() with a per-catalog call counter."""
    counter = {"calls": 0}
    for transform in catalog:
        original = transform.transform

        def counting(x, _original=original):
            counter["calls"] += 1
            return _original(x)

        transform.transform = counting
    return counter


class TestWarmStore:
    def test_second_strategy_run_embeds_nothing(self, dataset, catalog):
        """A warm store serves a second strategy with zero transform calls."""
        store = EmbeddingStore()
        first = Snoopy(
            catalog, SnoopyConfig(strategy="full", seed=0), store=store
        )
        first.run(dataset, target_accuracy=0.7)
        counter = _count_transform_calls(catalog)
        second = Snoopy(
            catalog, SnoopyConfig(strategy="uniform", seed=0), store=store
        )
        report = second.run(dataset, target_accuracy=0.7)
        assert counter["calls"] == 0
        assert report.best_transform in catalog.names

    def test_rerun_same_system_embeds_nothing(self, dataset, catalog):
        system = Snoopy(catalog, SnoopyConfig(seed=0))
        system.run(dataset, target_accuracy=0.7)
        counter = _count_transform_calls(catalog)
        system.run(dataset, target_accuracy=0.7)
        assert counter["calls"] == 0

    def test_warm_report_matches_cold(self, dataset, catalog):
        cold = Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.7)
        system = Snoopy(catalog, SnoopyConfig(seed=0))
        system.run(dataset, 0.7)
        warm = system.run(dataset, 0.7)
        assert _report_fingerprint(warm) == _report_fingerprint(cold)


class TestSchedulerMerge:
    def test_process_roundtrip_preserves_store_identity(self, dataset, catalog):
        """Worker copies come back cold; the parent's store must survive."""
        from repro.bandit.arms import build_arms

        store = EmbeddingStore()
        arms = build_arms(list(catalog)[:2], dataset, rng=0, store=store)
        scheduler = RoundScheduler(ProcessBackend(max_workers=2))
        try:
            scheduler.pull_to(arms, 64, 32)
        finally:
            scheduler.close()
        for arm in arms:
            assert arm.store is store
            assert arm.samples_used >= 64

    def test_process_roundtrip_preserves_transform_and_pool_identity(
        self, dataset, catalog
    ):
        """Merges must not swap in unpickled clones of identity-keyed
        objects: the store tokens blocks by transform object and caches
        digests by pool array, so clones would orphan warm entries."""
        from repro.bandit.arms import build_arms

        store = EmbeddingStore()
        arms = build_arms(list(catalog)[:2], dataset, rng=0, store=store)
        transforms = [arm.transform for arm in arms]
        pools = [(arm._train_x, arm._train_y) for arm in arms]
        scheduler = RoundScheduler(ProcessBackend(max_workers=2))
        try:
            scheduler.pull_to(arms, 64, 32)
        finally:
            scheduler.close()
        for arm, transform, (train_x, train_y) in zip(arms, transforms, pools):
            assert arm.transform is transform
            assert arm._train_x is train_x
            assert arm._train_y is train_y
        # A parent-side pull after the merge keys the shared store under
        # the original tokens (no duplicate token per round).
        for arm in arms:
            arm.pull(32)
        assert len(store._tokens) == 2

    def test_arm_pickles_with_cold_store(self, dataset, catalog):
        from repro.bandit.arms import build_arms

        store = EmbeddingStore()
        arms = build_arms(list(catalog)[:1], dataset, rng=0, store=store)
        arms[0].pull(50)
        clone = pickle.loads(pickle.dumps(arms[0]))
        assert len(clone.store) == 0
        assert clone.samples_used == arms[0].samples_used
        assert clone.pull(25) == pytest.approx(arms[0].pull(25))


class TestConfigValidation:
    def test_unknown_execution_backend_raises(self):
        with pytest.raises(DataValidationError):
            SnoopyConfig(execution_backend="gpu")

    def test_invalid_max_workers_raises(self):
        with pytest.raises(DataValidationError):
            SnoopyConfig(max_workers=0)

    def test_negative_cache_raises(self):
        with pytest.raises(DataValidationError):
            SnoopyConfig(embedding_cache_bytes=-1)


class TestPublicLabelAccessors:
    """The incremental path reads labels through public properties now."""

    def test_arm_label_properties(self, dataset, catalog):
        from repro.bandit.arms import build_arms

        arms = build_arms(list(catalog)[:1], dataset, rng=0)
        arm = arms[0]
        arm.pull(50)
        train = arm.train_labels
        test = arm.test_labels
        assert len(train) == dataset.num_train
        assert np.array_equal(test, dataset.test_y)
        # Copies: mutating the returned arrays must not touch arm state.
        train[:] = -1
        test[:] = -1
        assert not np.array_equal(arm.train_labels, train)
        assert not np.array_equal(arm.test_labels, test)

    def test_progressive_test_labels_copy(self, dataset):
        from repro.knn.progressive import ProgressiveOneNN

        evaluator = ProgressiveOneNN(dataset.test_x, dataset.test_y)
        labels = evaluator.test_labels
        labels[:] = -1
        assert np.array_equal(evaluator.test_labels, dataset.test_y)
