"""Unit tests for the Cover–Hart bound and the 1NN estimator."""

import numpy as np
import pytest

from repro.estimators.cover_hart import (
    OneNNEstimator,
    cover_hart_interval,
    cover_hart_lower_bound,
)
from repro.exceptions import DataValidationError


class TestBoundFormula:
    def test_zero_error_maps_to_zero(self):
        assert cover_hart_lower_bound(0.0, 10) == 0.0

    def test_binary_small_error_roughly_half(self):
        # For small e, bound ~ e / 2 in the binary case.
        assert cover_hart_lower_bound(0.01, 2) == pytest.approx(0.005, rel=0.01)

    def test_bound_below_error(self):
        for err in (0.05, 0.2, 0.5, 0.8):
            for c in (2, 5, 100):
                assert cover_hart_lower_bound(err, c) <= err

    def test_monotone_in_error(self):
        values = [cover_hart_lower_bound(e, 5) for e in np.linspace(0, 0.79, 30)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_saturation_beyond_chance(self):
        # Past (C-1)/C the radicand clips and the bound equals the error.
        assert cover_hart_lower_bound(0.95, 2) == pytest.approx(0.95)

    def test_exact_value_binary(self):
        # e = 0.5, C = 2: radicand = 0 -> bound = 0.5.
        assert cover_hart_lower_bound(0.5, 2) == pytest.approx(0.5)

    def test_interval_ordering(self):
        lower, upper = cover_hart_interval(0.3, 4)
        assert lower <= upper == 0.3

    def test_invalid_inputs_raise(self):
        with pytest.raises(DataValidationError):
            cover_hart_lower_bound(1.5, 3)
        with pytest.raises(DataValidationError):
            cover_hart_lower_bound(0.2, 1)

    def test_inverse_relationship_with_1nn_asymptotics(self):
        # The asymptotic 1NN error for BER r (binary) is 2r(1-r); the
        # bound must recover <= r from it, and be tight for small r.
        for r in (0.01, 0.05, 0.1, 0.2):
            one_nn = 2 * r * (1 - r)
            recovered = cover_hart_lower_bound(one_nn, 2)
            assert recovered == pytest.approx(r, rel=1e-6)


class TestOneNNEstimator:
    def test_estimate_on_known_task(self, dataset):
        estimate = OneNNEstimator().estimate(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert 0.0 <= estimate.value <= estimate.upper <= 1.0
        assert estimate.details["one_nn_error"] == estimate.upper

    def test_value_is_lower_bound_of_error(self, dataset):
        estimate = OneNNEstimator().estimate(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert estimate.value == pytest.approx(
            cover_hart_lower_bound(estimate.upper, dataset.num_classes)
        )

    def test_cosine_metric(self, dataset):
        estimate = OneNNEstimator(metric="cosine").estimate(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert estimate.details["metric"] == "cosine"

    def test_perfectly_separable_task_estimates_near_zero(self, rng):
        centers = np.array([[0.0, 0.0], [50.0, 50.0]])
        y_train = rng.integers(0, 2, 100)
        y_test = rng.integers(0, 2, 50)
        x_train = centers[y_train] + rng.normal(size=(100, 2))
        x_test = centers[y_test] + rng.normal(size=(50, 2))
        estimate = OneNNEstimator().estimate(x_train, y_train, x_test, y_test, 2)
        assert estimate.value == 0.0

    def test_empty_train_raises(self, dataset):
        with pytest.raises(DataValidationError):
            OneNNEstimator().estimate(
                np.zeros((0, dataset.raw_dim)), np.zeros(0, dtype=int),
                dataset.test_x, dataset.test_y, dataset.num_classes,
            )
