"""Unit tests for quantile bands, Wilson intervals and dataset I/O."""

import numpy as np
import pytest

from repro.datasets.io import load_dataset, save_dataset
from repro.estimators.confidence import (
    ber_estimate_interval,
    wilson_interval,
)
from repro.estimators.cover_hart import OneNNEstimator
from repro.exceptions import DataValidationError
from repro.feebee.variance import estimate_with_quantiles


class TestWilsonInterval:
    def test_contains_point(self):
        interval = wilson_interval(0.2, 100)
        assert interval.low <= 0.2 <= interval.high
        assert interval.contains(0.2)

    def test_width_shrinks_with_samples(self):
        small = wilson_interval(0.2, 50)
        large = wilson_interval(0.2, 5000)
        assert large.width < small.width

    def test_extreme_rates_stay_in_unit_interval(self):
        assert wilson_interval(0.0, 10).low == pytest.approx(0.0, abs=1e-12)
        assert wilson_interval(1.0, 10).high == pytest.approx(1.0, abs=1e-12)

    def test_higher_confidence_wider(self):
        narrow = wilson_interval(0.3, 200, confidence=0.8)
        wide = wilson_interval(0.3, 200, confidence=0.99)
        assert wide.width > narrow.width

    def test_validation(self):
        with pytest.raises(DataValidationError):
            wilson_interval(1.5, 10)
        with pytest.raises(DataValidationError):
            wilson_interval(0.2, 0)
        with pytest.raises(DataValidationError):
            wilson_interval(0.2, 10, confidence=1.0)

    def test_coverage_monte_carlo(self, rng):
        # ~95% of Wilson intervals over binomial draws cover the truth.
        truth = 0.15
        n = 200
        covered = 0
        runs = 300
        for _ in range(runs):
            errors = rng.random(n) < truth
            interval = wilson_interval(errors.mean(), n)
            covered += interval.contains(truth)
        assert covered / runs > 0.9


class TestBEREstimateInterval:
    def test_endpoints_through_cover_hart(self):
        interval = ber_estimate_interval(0.2, 500, 10)
        from repro.estimators.cover_hart import cover_hart_lower_bound

        assert interval.point == pytest.approx(
            cover_hart_lower_bound(0.2, 10)
        )
        assert interval.low <= interval.point <= interval.high

    def test_small_test_set_band_is_wide(self):
        # The SST2 effect: a sub-1K test set yields a visibly wider band
        # than a 10K test set at the same error.
        small = ber_estimate_interval(0.1, 200, 2)
        large = ber_estimate_interval(0.1, 10_000, 2)
        assert small.width > 3 * large.width


class TestQuantileBands:
    def test_band_contains_median(self, dataset):
        band = estimate_with_quantiles(
            OneNNEstimator(), dataset, num_runs=6, rng=0
        )
        assert band.low <= band.median <= band.high
        assert len(band.values) == 6
        assert band.contains(band.median)

    def test_smaller_test_set_more_spread(self, dataset):
        stable = estimate_with_quantiles(
            OneNNEstimator(), dataset, num_runs=8,
            subsample_test=dataset.num_test, rng=0,
        )
        unstable = estimate_with_quantiles(
            OneNNEstimator(), dataset, num_runs=8,
            subsample_test=30, rng=0,
        )
        assert unstable.spread >= stable.spread

    def test_validation(self, dataset):
        with pytest.raises(DataValidationError):
            estimate_with_quantiles(OneNNEstimator(), dataset, num_runs=1)
        with pytest.raises(DataValidationError):
            estimate_with_quantiles(
                OneNNEstimator(), dataset, quantiles=(0.9, 0.1)
            )

    def test_deterministic_with_seed(self, dataset):
        a = estimate_with_quantiles(
            OneNNEstimator(), dataset, num_runs=4, rng=11
        )
        b = estimate_with_quantiles(
            OneNNEstimator(), dataset, num_runs=4, rng=11
        )
        np.testing.assert_array_equal(a.values, b.values)


class TestDatasetIO:
    def test_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "unit_task")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.num_classes == dataset.num_classes
        np.testing.assert_array_equal(loaded.train_x, dataset.train_x)
        np.testing.assert_array_equal(loaded.test_y, dataset.test_y)

    def test_noisy_roundtrip_keeps_clean_labels(self, dataset, tmp_path):
        from repro.cleaning.workflow import make_noisy_dataset

        noisy = make_noisy_dataset(dataset, 0.3, rng=0)
        path = save_dataset(noisy, tmp_path / "noisy.npz")
        loaded = load_dataset(path)
        assert loaded.is_noisy
        np.testing.assert_array_equal(loaded.clean_train_y, noisy.clean_train_y)
        assert loaded.label_noise_rate() == pytest.approx(
            noisy.label_noise_rate()
        )

    def test_scalar_extras_survive(self, dataset, tmp_path):
        dataset.extras["note"] = "hello"
        dataset.extras["unpicklable"] = object()  # dropped silently
        path = save_dataset(dataset, tmp_path / "x")
        loaded = load_dataset(path)
        assert loaded.extras["note"] == "hello"
        assert "unpicklable" not in loaded.extras
        del dataset.extras["note"], dataset.extras["unpicklable"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_dataset(tmp_path / "nope.npz")

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(DataValidationError):
            load_dataset(path)

    def test_oracle_not_persisted(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "d")
        loaded = load_dataset(path)
        assert loaded.oracle is None
        assert loaded.true_ber is None
