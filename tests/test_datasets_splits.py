"""Unit tests for stratified splitting utilities."""

import numpy as np
import pytest

from repro.datasets.splits import (
    dataset_from_arrays,
    stratified_kfold,
    stratified_split,
)
from repro.exceptions import DataValidationError


@pytest.fixture()
def labels(rng):
    return rng.integers(0, 4, size=200)


class TestStratifiedSplit:
    def test_partition_is_exact(self, labels):
        train, test = stratified_split(labels, 0.25, rng=0)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_every_class_on_both_sides(self, labels):
        train, test = stratified_split(labels, 0.25, rng=0)
        assert set(labels[train]) == set(labels[test]) == set(labels)

    def test_fraction_respected(self, labels):
        _, test = stratified_split(labels, 0.25, rng=0)
        assert len(test) == pytest.approx(0.25 * len(labels), abs=4)

    def test_rare_class_still_represented(self):
        labels = np.array([0] * 98 + [1] * 2)
        train, test = stratified_split(labels, 0.1, rng=0)
        assert 1 in labels[train]
        assert 1 in labels[test]

    def test_invalid_fraction_raises(self, labels):
        with pytest.raises(DataValidationError):
            stratified_split(labels, 0.0)

    def test_deterministic(self, labels):
        a = stratified_split(labels, 0.2, rng=5)
        b = stratified_split(labels, 0.2, rng=5)
        np.testing.assert_array_equal(a[0], b[0])


class TestStratifiedKFold:
    def test_folds_partition_indices(self, labels):
        folds = stratified_kfold(labels, 5, rng=0)
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_fold_sizes_balanced(self, labels):
        folds = stratified_kfold(labels, 5, rng=0)
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 4  # one per class at most

    def test_classes_spread_across_folds(self, labels):
        folds = stratified_kfold(labels, 4, rng=0)
        for fold in folds:
            assert len(set(labels[fold])) == len(set(labels))

    def test_too_many_folds_raises(self):
        with pytest.raises(DataValidationError):
            stratified_kfold(np.zeros(3, dtype=int), 5)

    def test_num_folds_validation(self, labels):
        with pytest.raises(DataValidationError):
            stratified_kfold(labels, 1)


class TestDatasetFromArrays:
    def test_builds_valid_dataset(self, rng):
        features = rng.normal(size=(120, 6))
        labels = rng.integers(0, 3, size=120)
        dataset = dataset_from_arrays(features, labels, rng=0)
        assert dataset.num_classes == 3
        assert dataset.num_train + dataset.num_test == 120
        assert dataset.modality == "vision"

    def test_usable_by_snoopy(self, rng):
        from repro.core.snoopy import Snoopy
        from repro.transforms.linear import IdentityTransform, PCATransform

        features = rng.normal(size=(200, 10))
        labels = (features[:, 0] > 0).astype(int)
        dataset = dataset_from_arrays(features, labels, rng=0)
        catalog = [IdentityTransform(10), PCATransform(3)]
        report = Snoopy(catalog).run(dataset, target_accuracy=0.7)
        assert 0.0 <= report.ber_estimate <= 1.0

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            dataset_from_arrays(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))

    def test_negative_labels_rejected(self, rng):
        with pytest.raises(DataValidationError):
            dataset_from_arrays(
                rng.normal(size=(5, 2)), np.array([-1, 0, 1, 0, 1])
            )
