"""Unit tests for the shared EmbeddingStore."""

import gc
import pickle
import threading

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.transforms.linear import IdentityTransform, PCATransform
from repro.transforms.store import (
    EmbeddingStore,
    embed_or_transform,
)


class CountingTransform(IdentityTransform):
    """Identity transform that counts transform() invocations and rows."""

    def __init__(self, dim, name="counting"):
        super().__init__(dim)
        self.name = name
        self.calls = 0
        self.rows_embedded = 0

    def transform(self, x):
        self.calls += 1
        self.rows_embedded += len(x)
        return super().transform(x)


@pytest.fixture()
def data(rng):
    return rng.normal(size=(300, 6))


@pytest.fixture()
def transform(data):
    return CountingTransform(6).fit(data)


class TestEmbedExactness:
    def test_embed_matches_direct_transform(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        out = store.embed(transform, data)
        np.testing.assert_array_equal(out, data)

    def test_embed_rows_matches_slice(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        out = store.embed_rows(transform, data, 37, 215)
        np.testing.assert_array_equal(out, data[37:215])

    def test_empty_range(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        out = store.embed_rows(transform, data, 10, 10)
        assert out.shape == (0, transform.output_dim)

    def test_invalid_range_raises(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        with pytest.raises(DataValidationError):
            store.embed_rows(transform, data, 10, 5)
        with pytest.raises(DataValidationError):
            store.embed_rows(transform, data, 0, len(data) + 1)

    def test_non_2d_raises(self, transform):
        store = EmbeddingStore()
        with pytest.raises(DataValidationError):
            store.embed(transform, np.zeros(5))


class TestMemoization:
    def test_second_identical_request_is_all_hits(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        store.embed(transform, data)
        calls_after_first = transform.calls
        out = store.embed(transform, data)
        assert transform.calls == calls_after_first
        np.testing.assert_array_equal(out, data)
        assert store.stats.hits > 0

    def test_different_chunk_boundaries_share_blocks(self, data, transform):
        """Block alignment: pulls of size 50 warm pulls of size 70."""
        store = EmbeddingStore(block_rows=64)
        for start in range(0, len(data), 50):
            store.embed_rows(transform, data, start, min(start + 50, len(data)))
        transform.calls = 0
        for start in range(0, len(data), 70):
            store.embed_rows(transform, data, start, min(start + 70, len(data)))
        assert transform.calls == 0

    def test_content_addressing_across_array_objects(self, data, transform):
        """A rebuilt but identical array hits purely on content."""
        store = EmbeddingStore(block_rows=64)
        store.embed(transform, data)
        transform.calls = 0
        out = store.embed(transform, data.copy())
        assert transform.calls == 0
        np.testing.assert_array_equal(out, data)

    def test_distinct_transforms_do_not_collide(self, data):
        a = CountingTransform(6, name="same").fit(data)
        b = PCATransform(3).fit(data)
        b.name = "same"  # adversarial: same display name, different map
        store = EmbeddingStore(block_rows=64)
        out_a = store.embed(a, data)
        out_b = store.embed(b, data)
        assert out_a.shape != out_b.shape

    def test_missing_blocks_embed_in_contiguous_runs(self, data, transform):
        """A cold multi-block request costs one transform call."""
        store = EmbeddingStore(block_rows=64)
        store.embed(transform, data)
        assert transform.calls == 1

    def test_partial_block_request_embeds_whole_block(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        store.embed_rows(transform, data, 10, 20)
        assert transform.rows_embedded == 64
        transform.calls = 0
        # The rest of the block is already warm.
        store.embed_rows(transform, data, 0, 64)
        assert transform.calls == 0


class TestEvictionAndStats:
    def test_lru_eviction_respects_budget(self, data, transform):
        block_bytes = 64 * 6 * 8
        store = EmbeddingStore(max_bytes=2 * block_bytes, block_rows=64)
        store.embed(transform, data)  # 5 blocks through a 2-block budget
        stats = store.stats
        assert stats.current_bytes <= store.max_bytes
        assert stats.evictions >= 3
        assert len(store) <= 2

    def test_evicted_blocks_recompute(self, data, transform):
        block_bytes = 64 * 6 * 8
        store = EmbeddingStore(max_bytes=2 * block_bytes, block_rows=64)
        store.embed(transform, data)
        transform.calls = 0
        out = store.embed(transform, data)
        assert transform.calls > 0  # early blocks were evicted
        np.testing.assert_array_equal(out, data)

    def test_hit_rate(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        assert store.stats.hit_rate == 0.0
        store.embed(transform, data)
        store.embed(transform, data)
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_clear(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        store.embed(transform, data)
        store.clear()
        assert len(store) == 0
        assert store.stats.current_bytes == 0

    def test_invalidate_transform(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        store.embed(transform, data)
        other = CountingTransform(6, name="other").fit(data)
        store.embed(other, data)
        dropped = store.invalidate(transform)
        assert dropped == 5
        transform.calls = 0
        store.embed(transform, data)
        assert transform.calls > 0
        # The other transform's blocks survived.
        other.calls = 0
        store.embed(other, data)
        assert other.calls == 0

    def test_invalidate_unknown_transform_is_noop(self, data, transform):
        store = EmbeddingStore()
        assert store.invalidate(transform) == 0

    def test_invalid_budget_raises(self):
        with pytest.raises(DataValidationError):
            EmbeddingStore(max_bytes=0)
        with pytest.raises(DataValidationError):
            EmbeddingStore(block_rows=0)


class TestLifecycle:
    """The store must never pin sources or transforms (leak per run)."""

    def test_dead_source_releases_digest_cache(self, transform, rng):
        store = EmbeddingStore(block_rows=64)
        for _ in range(4):
            # Fresh pool per "run", as Snoopy builds train_x[order] anew.
            pool = rng.normal(size=(300, 6))
            store.embed(transform, pool)
            del pool
            gc.collect()
        assert len(store._digests) == 0
        assert len(store._digest_refs) == 0

    def test_live_source_keeps_digest_cache(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        store.embed(transform, data)
        gc.collect()
        assert len(store._digests) == 1

    def test_dead_transform_releases_token_and_blocks(self, data):
        store = EmbeddingStore(block_rows=64)
        transform = CountingTransform(6, name="ephemeral").fit(data)
        store.embed(transform, data)
        assert len(store) == 5
        del transform
        gc.collect()
        assert len(store) == 0
        assert store.stats.current_bytes == 0
        assert len(store._tokens) == 0

    def test_recycled_transform_id_cannot_alias(self, data):
        """A new transform never inherits a dead transform's blocks."""
        store = EmbeddingStore(block_rows=64)
        first = CountingTransform(6, name="same").fit(data)
        store.embed(first, data)
        del first
        gc.collect()
        second = CountingTransform(6, name="same").fit(data)
        store.embed(second, data)
        assert second.calls > 0  # recomputed, not served from a ghost


class TestOutputSafety:
    def test_cached_single_block_is_read_only(self, data, transform):
        store = EmbeddingStore(block_rows=512)
        out = store.embed(transform, data)
        with pytest.raises(ValueError):
            out[0, 0] = 42.0

    def test_pickle_ships_config_only(self, data, transform):
        store = EmbeddingStore(max_bytes=12345678, block_rows=64)
        store.embed(transform, data)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.max_bytes == 12345678
        assert clone.block_rows == 64
        assert len(clone) == 0
        # The original is untouched.
        assert len(store) == 5


class TestThreadSafety:
    def test_concurrent_embeds_are_consistent(self, data):
        transforms = [
            CountingTransform(6, name=f"t{i}").fit(data) for i in range(4)
        ]
        store = EmbeddingStore(block_rows=32)
        errors = []

        def worker(transform):
            try:
                for _ in range(5):
                    out = store.embed(transform, data)
                    np.testing.assert_array_equal(out, data)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in transforms
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestEmbedOrTransform:
    def test_without_store_delegates(self, data, transform):
        out = embed_or_transform(None, transform, data)
        np.testing.assert_array_equal(out, data)
        assert transform.calls == 1

    def test_with_store_memoizes(self, data, transform):
        store = EmbeddingStore(block_rows=64)
        embed_or_transform(store, transform, data)
        transform.calls = 0
        embed_or_transform(store, transform, data)
        assert transform.calls == 0


class TestAuxiliaryBlocks:
    def test_put_and_get_preserve_dtype(self, data):
        store = EmbeddingStore(dtype="float32")
        codes = np.arange(64, dtype=np.uint8).reshape(16, 4)
        store.put_block("ivf_pq", "codes", codes)
        cached = store.get_block("ivf_pq", "codes")
        assert cached.dtype == np.uint8  # never cast to the store dtype
        np.testing.assert_array_equal(cached, codes)
        assert store.get_block("ivf_pq", "missing") is None

    def test_accounting_is_dtype_aware(self):
        store = EmbeddingStore()
        codes = np.zeros((100, 8), dtype=np.uint8)
        floats = np.zeros((100, 8), dtype=np.float32)
        store.put_block("pq", "codes", codes)
        assert store.stats.current_bytes == codes.nbytes  # 1 B/element
        store.put_block("pq", "floats", floats)
        assert store.stats.current_bytes == codes.nbytes + floats.nbytes

    def test_replacement_updates_accounting(self):
        store = EmbeddingStore()
        store.put_block("pq", "codes", np.zeros((100, 8), dtype=np.uint8))
        store.put_block("pq", "codes", np.zeros((50, 8), dtype=np.uint8))
        assert store.stats.current_bytes == 50 * 8
        assert len(store) == 1

    def test_compressed_blocks_fit_budget_raw_does_not(self):
        raw = np.zeros((1000, 32), dtype=np.float32)
        codes = np.zeros((1000, 4), dtype=np.uint8)
        store = EmbeddingStore(max_bytes=raw.nbytes // 8)
        store.put_block("pq", "codes", codes)
        assert store.stats.evictions == 0
        store.put_block("pq", "raw", raw)  # blows the budget
        assert store.stats.evictions >= 1

    def test_stored_copy_is_isolated(self):
        store = EmbeddingStore()
        codes = np.zeros((4, 4), dtype=np.uint8)
        store.put_block("pq", "codes", codes)
        codes[:] = 7  # caller mutation must not reach the cache
        np.testing.assert_array_equal(
            store.get_block("pq", "codes"), np.zeros((4, 4), dtype=np.uint8)
        )
        with pytest.raises(ValueError):
            store.get_block("pq", "codes")[0, 0] = 1
