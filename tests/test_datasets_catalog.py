"""Unit tests for the paper-dataset catalog, CIFAR-N variants and VTAB."""

import numpy as np
import pytest

from repro.datasets.catalog import DATASET_SPECS, dataset_names, load
from repro.datasets.cifar_n import (
    CIFAR_N_STATS,
    cifar_n_transition,
    cifar_n_variant_names,
    load_cifar_n,
)
from repro.datasets.vtab import VTAB_TASK_NAMES, load_vtab_suite, load_vtab_task
from repro.exceptions import DataValidationError


class TestTable1Catalog:
    def test_six_datasets(self):
        assert dataset_names() == [
            "mnist", "cifar10", "cifar100", "imdb", "sst2", "yelp",
        ]

    def test_spec_statistics_match_table1(self):
        spec = DATASET_SPECS["cifar100"]
        assert spec.num_classes == 100
        assert spec.paper_train == 50_000
        assert spec.paper_test == 10_000
        assert spec.sota_error == pytest.approx(0.0649)

    def test_scaled_sizes_floor(self):
        train, test = DATASET_SPECS["mnist"].scaled_sizes(0.0001)
        assert train == 256
        assert test == 128

    def test_scale_out_of_range_raises(self):
        with pytest.raises(DataValidationError):
            DATASET_SPECS["mnist"].scaled_sizes(0.0)

    def test_unknown_name_raises(self):
        with pytest.raises(DataValidationError, match="unknown dataset"):
            load("imagenet")

    def test_load_shapes_and_metadata(self):
        ds = load("cifar10", scale=0.01, seed=0)
        assert ds.num_classes == 10
        assert ds.num_train == 500
        assert ds.modality == "vision"
        assert ds.sota_error == pytest.approx(0.0063)
        assert ds.oracle is not None

    def test_clean_ber_calibrated_to_half_sota(self):
        ds = load("cifar100", scale=0.01, seed=0)
        target = 0.5 * DATASET_SPECS["cifar100"].sota_error
        assert ds.true_ber == pytest.approx(target, rel=0.4)

    def test_same_task_across_seeds(self):
        a = load("imdb", scale=0.01, seed=0)
        b = load("imdb", scale=0.01, seed=1)
        # Different draws, same distribution: identical oracle.
        assert a.true_ber == b.true_ber
        assert not np.array_equal(a.train_x, b.train_x)

    def test_text_modality(self):
        assert load("sst2", scale=0.005, seed=0).modality == "text"


class TestCifarN:
    def test_variant_names(self):
        assert "cifar10_aggre" in cifar_n_variant_names()
        assert "cifar100_noisy" in cifar_n_variant_names()

    @pytest.mark.parametrize("name", list(CIFAR_N_STATS))
    def test_transition_matches_published_stats(self, name):
        stats = CIFAR_N_STATS[name]
        t = cifar_n_transition(name, rng=0)
        assert t.flip_fractions.max() == pytest.approx(stats.max_flip, abs=0.01)
        assert t.flip_fractions.min() == pytest.approx(stats.min_flip, abs=0.01)
        assert abs(t.noise_level() - stats.noise_level) < 0.03
        assert t.max_off_diagonal() <= stats.max_off_diagonal + 0.01

    @pytest.mark.parametrize("name", list(CIFAR_N_STATS))
    def test_transition_preserves_argmax(self, name):
        assert cifar_n_transition(name, rng=0).preserves_argmax()

    def test_load_cifar_n(self):
        ds = load_cifar_n("cifar10_aggre", scale=0.01, seed=0)
        assert ds.is_noisy
        assert ds.name == "cifar10_aggre"
        realized = ds.label_noise_rate()
        assert abs(realized - CIFAR_N_STATS["cifar10_aggre"].noise_level) < 0.04

    def test_unknown_variant_raises(self):
        with pytest.raises(DataValidationError):
            load_cifar_n("cifar10_bogus")


class TestVtab:
    def test_nineteen_tasks(self):
        assert len(VTAB_TASK_NAMES) == 19

    def test_load_one_task(self):
        ds = load_vtab_task("eurosat", seed=0)
        assert ds.num_train == 1000
        assert ds.num_test == 500
        assert ds.num_classes == 10
        assert ds.extras["suite"] == "vtab"

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            load_vtab_task("no_such_task")

    def test_suite_diversity(self):
        suite = load_vtab_suite(seed=0)
        assert len(suite) == 19
        bers = [ds.true_ber for ds in suite]
        # The suite must span easy and hard tasks.
        assert min(bers) < 0.05
        assert max(bers) > 0.2

    def test_task_identity_independent_of_seed(self):
        a = load_vtab_task("kitti", seed=0)
        b = load_vtab_task("kitti", seed=5)
        assert a.true_ber == b.true_ber
