"""Unit tests for the cleaning subpackage (costs, simulator, strategies)."""

import numpy as np
import pytest

from repro.cleaning.costs import (
    CHEAP_LABEL_COST,
    CostModel,
    EXPENSIVE_LABEL_COST,
)
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.strategies import (
    run_with_feasibility_study,
    run_without_feasibility_study,
)
from repro.cleaning.workflow import make_noisy_dataset, run_end_to_end
from repro.exceptions import DataValidationError


@pytest.fixture()
def noisy(dataset):
    return make_noisy_dataset(dataset, 0.4, rng=0)


class _CheapTrainer:
    """A fast stand-in for the fine-tune baseline in strategy tests."""

    def __init__(self, sim_cost=100.0):
        self.sim_cost = sim_cost
        self.calls = 0

    def run(self, dataset):
        from repro.baselines.finetune import FineTuneResult
        from repro.knn.brute_force import BruteForceKNN

        self.calls += 1
        error = (
            BruteForceKNN()
            .fit(dataset.train_x, dataset.train_y)
            .error(dataset.test_x, dataset.test_y)
        )
        return FineTuneResult(
            test_error=error, sim_cost_seconds=self.sim_cost,
            wall_seconds=0.0, embedding_name="raw", learning_rate=0.1,
        )


class TestCostModel:
    def test_regimes(self):
        assert CostModel.for_regime("free").label_cost_dollars == 0.0
        assert CostModel.for_regime("cheap").label_cost_dollars == CHEAP_LABEL_COST
        assert (
            CostModel.for_regime("expensive").label_cost_dollars
            == EXPENSIVE_LABEL_COST
        )

    def test_unknown_regime_raises(self):
        with pytest.raises(DataValidationError):
            CostModel.for_regime("luxury")

    def test_label_cost(self):
        assert CostModel(label_cost_dollars=0.002).labels(500) == pytest.approx(1.0)

    def test_compute_cost(self):
        model = CostModel(machine_dollars_per_hour=0.9)
        assert model.compute(3600.0) == pytest.approx(0.9)

    def test_negative_inputs_raise(self):
        model = CostModel()
        with pytest.raises(DataValidationError):
            model.labels(-1)
        with pytest.raises(DataValidationError):
            model.compute(-1.0)


class TestCleaningSession:
    def test_requires_noisy_dataset(self, dataset):
        with pytest.raises(DataValidationError):
            CleaningSession(dataset)

    def test_full_clean_restores_everything(self, noisy):
        session = CleaningSession(noisy, rng=0)
        session.clean_fraction(1.0)
        assert session.all_cleaned
        assert session.remaining_noise_rate() == 0.0
        restored = session.current_dataset()
        np.testing.assert_array_equal(restored.train_y, noisy.clean_train_y)
        np.testing.assert_array_equal(restored.test_y, noisy.clean_test_y)

    def test_partial_clean_reduces_noise(self, noisy):
        session = CleaningSession(noisy, rng=0)
        before = session.remaining_noise_rate()
        session.clean_fraction(0.5)
        after = session.remaining_noise_rate()
        assert after < before
        assert session.fraction_examined == pytest.approx(0.5)

    def test_cleaning_is_incremental_not_overlapping(self, noisy):
        session = CleaningSession(noisy, rng=0)
        first = session.clean_fraction(0.3)
        second = session.clean_fraction(0.3)
        touched_first = set(first.train_indices.tolist())
        touched_second = set(second.train_indices.tolist())
        assert not touched_first & touched_second

    def test_clean_past_end_truncates(self, noisy):
        session = CleaningSession(noisy, rng=0)
        session.clean_fraction(0.9)
        step = session.clean_fraction(0.9)
        assert session.all_cleaned
        assert step.num_examined <= int(0.9 * session.total_samples)

    def test_step_reports_corrections(self, noisy):
        session = CleaningSession(noisy, rng=0)
        step = session.clean_fraction(0.2)
        assert step.num_examined == pytest.approx(
            0.2 * session.total_samples, abs=1
        )
        # Restored labels are the clean ones at those indices.
        np.testing.assert_array_equal(
            step.train_labels, noisy.clean_train_y[step.train_indices]
        )

    def test_invalid_fraction_raises(self, noisy):
        session = CleaningSession(noisy, rng=0)
        with pytest.raises(DataValidationError):
            session.clean_fraction(0.0)


@pytest.fixture()
def strong_trainer(catalog):
    """The real fine-tune analogue (reaches ~0.68 accuracy when clean)."""
    from repro.baselines.finetune import FineTuneBaseline

    return FineTuneBaseline(catalog, learning_rates=(0.05,), num_epochs=15, seed=0)


class TestStrategies:
    def test_without_fs_reaches_target(self, noisy, strong_trainer):
        cost_model = CostModel.for_regime("cheap")
        session = CleaningSession(noisy, rng=0)
        trace = run_without_feasibility_study(
            session, strong_trainer, target_accuracy=0.62,
            step_fraction=0.10, cost_model=cost_model,
        )
        assert trace.reached_target
        assert trace.total_dollars > 0

    def test_without_fs_small_steps_cost_more_compute(self, noisy):
        cost_model = CostModel.for_regime("free")
        small = run_without_feasibility_study(
            CleaningSession(noisy, rng=0), _CheapTrainer(), 0.55, 0.02, cost_model
        )
        large = run_without_feasibility_study(
            CleaningSession(noisy, rng=0), _CheapTrainer(), 0.55, 0.50, cost_model
        )
        assert small.num_expensive_runs >= large.num_expensive_runs

    def test_with_fs_snoopy_trains_rarely(self, noisy, catalog, strong_trainer):
        cost_model = CostModel.for_regime("cheap")
        session = CleaningSession(noisy, rng=0)
        trace = run_with_feasibility_study(
            session, strong_trainer, target_accuracy=0.62,
            cost_model=cost_model,
            feasibility="snoopy", catalog=catalog, clean_step=0.05,
        )
        assert trace.reached_target
        # The whole point: feasibility checks gate the expensive runs, so
        # far fewer than the ~20 cleaning steps trigger a training run.
        assert trace.num_expensive_runs <= 5

    def test_with_fs_lr_runs(self, noisy, catalog):
        trainer = _CheapTrainer()
        cost_model = CostModel.for_regime("cheap")
        session = CleaningSession(noisy, rng=0)
        trace = run_with_feasibility_study(
            session, trainer, target_accuracy=0.55, cost_model=cost_model,
            feasibility="lr", catalog=catalog, clean_step=0.10, lr_epochs=2,
        )
        assert trace.total_dollars > 0
        assert any(p.action == "feasibility" for p in trace.points)

    def test_requires_catalog(self, noisy):
        with pytest.raises(DataValidationError):
            run_with_feasibility_study(
                CleaningSession(noisy, rng=0), _CheapTrainer(), 0.5,
                CostModel(), catalog=None,
            )

    def test_unknown_feasibility_raises(self, noisy, catalog):
        with pytest.raises(DataValidationError):
            run_with_feasibility_study(
                CleaningSession(noisy, rng=0), _CheapTrainer(), 0.5,
                CostModel(), feasibility="magic", catalog=catalog,
            )

    def test_invalid_target_raises(self, noisy):
        with pytest.raises(DataValidationError):
            run_without_feasibility_study(
                CleaningSession(noisy, rng=0), _CheapTrainer(), 1.5, 0.1,
                CostModel(),
            )


class TestWorkflow:
    def test_make_noisy_dataset(self, dataset):
        noisy = make_noisy_dataset(dataset, 0.3, rng=0)
        assert noisy.is_noisy
        assert noisy.extras["noise_rho"] == 0.3
        # Realized flips ~ rho * (1 - 1/C).
        expected = 0.3 * (1 - 1 / dataset.num_classes)
        assert abs(noisy.label_noise_rate() - expected) < 0.05

    def test_end_to_end_cell(self, dataset, catalog, strong_trainer):
        outcome = run_end_to_end(
            dataset, strong_trainer, catalog,
            noise_rho=0.4, target_accuracy=0.62, label_regime="cheap",
            step_fractions=(0.25,), include_lr=False, seed=0,
        )
        assert "fs_snoopy" in outcome.traces
        assert "finetune_step_0.25" in outcome.traces
        assert 0.0 <= outcome.min_fraction_to_target <= 1.0
        cheapest = outcome.cheapest_successful()
        assert cheapest is not None


class TestRepeatedWorkflow:
    def test_means_over_runs(self, dataset, catalog, strong_trainer):
        from repro.cleaning.workflow import run_end_to_end_repeated

        summary = run_end_to_end_repeated(
            dataset, strong_trainer, catalog,
            noise_rho=0.3, target_accuracy=0.62, num_runs=2,
            label_regime="cheap", step_fractions=(0.5,), seed=0,
        )
        assert summary.num_runs == 2
        assert len(summary.outcomes) == 2
        assert set(summary.mean_dollars) == {"finetune_step_0.5", "fs_snoopy"}
        for value in summary.mean_dollars.values():
            assert value > 0
        for rate in summary.success_rate.values():
            assert 0.0 <= rate <= 1.0

    def test_runs_use_independent_noise(self, dataset, catalog, strong_trainer):
        from repro.cleaning.workflow import run_end_to_end_repeated

        summary = run_end_to_end_repeated(
            dataset, strong_trainer, catalog,
            noise_rho=0.3, target_accuracy=0.62, num_runs=2,
            label_regime="free", step_fractions=(0.5,), seed=0,
        )
        traces = [o.traces["fs_snoopy"] for o in summary.outcomes]
        # Different seeds -> different noise draws -> different traces.
        assert (
            traces[0].total_dollars != traces[1].total_dollars
            or traces[0].final_fraction_examined
            != traces[1].final_fraction_examined
        )

    def test_invalid_num_runs_raises(self, dataset, catalog, strong_trainer):
        from repro.cleaning.workflow import run_end_to_end_repeated
        from repro.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            run_end_to_end_repeated(
                dataset, strong_trainer, catalog,
                noise_rho=0.3, target_accuracy=0.6, num_runs=0,
            )
