"""Unit tests for the drift-aware streaming extension (repro.core.drift)."""

import numpy as np
import pytest

from repro.core.drift import (
    DriftAwareMonitor,
    PageHinkleyDetector,
    SlidingWindowBER,
)
from repro.exceptions import DataValidationError


def _stream(task, n, rng):
    raw, labels, _ = task.sample(n, rng=rng)
    return raw, labels


class TestSlidingWindow:
    def test_validation(self):
        with pytest.raises(DataValidationError):
            SlidingWindowBER(num_classes=1)
        with pytest.raises(DataValidationError):
            SlidingWindowBER(num_classes=3, window_size=4)
        with pytest.raises(DataValidationError):
            SlidingWindowBER(num_classes=3, eval_fraction=1.5)

    def test_not_ready_raises(self, task):
        window = SlidingWindowBER(task.num_classes, window_size=128)
        with pytest.raises(DataValidationError, match="need more"):
            window.estimate()

    def test_window_evicts_old_samples(self, task, rng):
        window = SlidingWindowBER(task.num_classes, window_size=64)
        raw, labels = _stream(task, 200, rng)
        window.observe(raw, labels)
        assert window.current_size == 64
        assert window.total_seen == 200

    def test_estimate_reflects_task_difficulty(self, task, hard_task, rng):
        easy_window = SlidingWindowBER(task.num_classes, window_size=512)
        raw, labels = _stream(task, 512, rng)
        easy_window.observe(raw, labels)
        hard_window = SlidingWindowBER(hard_task.num_classes, window_size=512)
        raw, labels = _stream(hard_task, 512, rng)
        hard_window.observe(raw, labels)
        # hard_task's BER (~0.25+) clearly exceeds task's at this scale.
        assert hard_window.estimate() > 0.5 * easy_window.estimate()

    def test_label_out_of_range_raises(self, task, rng):
        window = SlidingWindowBER(task.num_classes)
        raw, labels = _stream(task, 10, rng)
        with pytest.raises(DataValidationError):
            window.observe(raw, labels + 100)

    def test_single_sample_observe(self, task, rng):
        window = SlidingWindowBER(task.num_classes)
        raw, labels = _stream(task, 1, rng)
        window.observe(raw[0], labels[0])
        assert window.current_size == 1


class TestPageHinkley:
    def test_no_alarm_on_stationary_stream(self, rng):
        detector = PageHinkleyDetector(delta=0.01, threshold=0.2)
        values = 0.2 + rng.normal(scale=0.01, size=300)
        assert not any(detector.update(v) for v in values)

    def test_alarm_on_upward_shift(self, rng):
        detector = PageHinkleyDetector(delta=0.005, threshold=0.1)
        before = 0.1 + rng.normal(scale=0.005, size=100)
        after = 0.4 + rng.normal(scale=0.005, size=100)
        fired_before = any(detector.update(v) for v in before)
        fired_after = any(detector.update(v) for v in after)
        assert not fired_before
        assert fired_after

    def test_no_alarm_on_downward_shift(self, rng):
        # The detector targets *increasing* BER only.
        detector = PageHinkleyDetector(delta=0.005, threshold=0.1)
        before = 0.4 + rng.normal(scale=0.005, size=100)
        after = 0.1 + rng.normal(scale=0.005, size=100)
        any(detector.update(v) for v in before)
        assert not any(detector.update(v) for v in after)

    def test_reset(self):
        detector = PageHinkleyDetector(threshold=0.01)
        for v in (0.1, 0.5, 0.9):
            detector.update(v)
        detector.reset()
        assert detector.statistic == 0.0

    def test_invalid_threshold_raises(self):
        with pytest.raises(DataValidationError):
            PageHinkleyDetector(threshold=0.0)


class TestDriftAwareMonitor:
    def _monitor(self, num_classes):
        # The unit task is hard (BER ~ 0.29) and window estimates carry
        # sampling noise ~ 0.06, so the detector is tuned to fire on the
        # large shifts of a genuine noise onset, not estimate jitter.
        return DriftAwareMonitor(
            window=SlidingWindowBER(num_classes, window_size=256),
            detector=PageHinkleyDetector(delta=0.02, threshold=0.4),
            check_every=64,
        )

    def test_detects_noise_onset(self, task, rng):
        from repro.noise.models import inject_uniform_noise

        monitor = self._monitor(task.num_classes)
        # Clean phase.
        raw, labels = _stream(task, 1024, rng)
        events = monitor.observe(raw, labels)
        assert events == []
        # A noisy labeling source comes online: 50% uniform noise.
        raw, labels = _stream(task, 2048, rng)
        noisy = inject_uniform_noise(labels, 0.5, task.num_classes, rng=rng)
        events = monitor.observe(raw, noisy.noisy_labels)
        assert monitor.events
        assert monitor.events[0].ber_estimate > 0.0

    def test_quiet_on_stationary_stream(self, task, rng):
        monitor = self._monitor(task.num_classes)
        for _ in range(8):
            raw, labels = _stream(task, 256, rng)
            monitor.observe(raw, labels)
        assert monitor.events == []
        assert len(monitor.estimates) > 0

    def test_estimates_recorded_at_cadence(self, task, rng):
        monitor = self._monitor(task.num_classes)
        raw, labels = _stream(task, 640, rng)
        monitor.observe(raw, labels)
        assert len(monitor.estimates) == 640 // 64
