"""Unit tests for repro.knn.brute_force."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.knn.brute_force import BruteForceKNN, _majority_vote
from repro.knn.metrics import euclidean_distances


@pytest.fixture()
def fitted(rng):
    x = rng.normal(size=(120, 6))
    y = rng.integers(0, 3, size=120)
    return BruteForceKNN().fit(x, y), x, y


class TestFit:
    def test_fit_returns_self(self, rng):
        index = BruteForceKNN()
        assert index.fit(rng.normal(size=(5, 2)), np.zeros(5)) is index

    def test_num_fitted(self, fitted):
        index, x, _ = fitted
        assert index.num_fitted == len(x)

    def test_empty_corpus_raises(self):
        with pytest.raises(DataValidationError):
            BruteForceKNN().fit(np.zeros((0, 3)), np.zeros(0))

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            BruteForceKNN().fit(rng.normal(size=(5, 2)), np.zeros(4))

    def test_query_before_fit_raises(self, rng):
        with pytest.raises(DataValidationError, match="not fitted"):
            BruteForceKNN().kneighbors(rng.normal(size=(2, 2)))


class TestKNeighbors:
    def test_distances_sorted(self, fitted, rng):
        index, _, _ = fitted
        dist, _ = index.kneighbors(rng.normal(size=(10, 6)), k=5)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_matches_dense_argsort(self, fitted, rng):
        index, x, _ = fitted
        queries = rng.normal(size=(15, 6))
        dist, idx = index.kneighbors(queries, k=3)
        dense = euclidean_distances(queries, x)
        expected = np.sort(dense, axis=1)[:, :3]
        np.testing.assert_allclose(dist, expected, atol=1e-10)

    def test_k_too_large_raises(self, fitted, rng):
        index, x, _ = fitted
        with pytest.raises(DataValidationError):
            index.kneighbors(rng.normal(size=(2, 6)), k=len(x) + 1)

    def test_exclude_self_removes_zero_distance(self, fitted):
        index, x, _ = fitted
        dist, idx = index.kneighbors(x, k=1, exclude_self=True)
        assert np.all(idx[:, 0] != np.arange(len(x)))
        assert np.all(dist > 0)

    def test_small_block_size_same_result(self, rng):
        x = rng.normal(size=(50, 4))
        y = rng.integers(0, 2, size=50)
        q = rng.normal(size=(9, 4))
        big = BruteForceKNN(block_size=1000).fit(x, y)
        small = BruteForceKNN(block_size=3).fit(x, y)
        d1, i1 = big.kneighbors(q, k=4)
        d2, i2 = small.kneighbors(q, k=4)
        np.testing.assert_allclose(d1, d2)
        np.testing.assert_array_equal(i1, i2)


class TestPredictAndError:
    def test_1nn_perfect_on_training_points(self, fitted):
        index, x, y = fitted
        # Querying exact training points with k=1 returns their own label.
        np.testing.assert_array_equal(index.predict(x, k=1), y)

    def test_error_zero_on_training_points(self, fitted):
        index, x, y = fitted
        assert index.error(x, y, k=1) == 0.0

    def test_error_range(self, fitted, rng):
        index, _, _ = fitted
        q = rng.normal(size=(30, 6))
        labels = rng.integers(0, 3, size=30)
        assert 0.0 <= index.error(q, labels, k=3) <= 1.0

    def test_error_length_mismatch_raises(self, fitted, rng):
        index, _, _ = fitted
        with pytest.raises(DataValidationError):
            index.error(rng.normal(size=(5, 6)), np.zeros(4))

    def test_separated_clusters_classified_correctly(self):
        x = np.vstack([np.zeros((20, 2)), 10 + np.zeros((20, 2))])
        x += np.random.default_rng(0).normal(scale=0.1, size=x.shape)
        y = np.array([0] * 20 + [1] * 20)
        index = BruteForceKNN().fit(x, y)
        queries = np.array([[0.0, 0.0], [10.0, 10.0]])
        np.testing.assert_array_equal(index.predict(queries, k=5), [0, 1])

    def test_loo_error_reasonable_on_separated_data(self):
        rng = np.random.default_rng(3)
        x = np.vstack([rng.normal(0, 0.2, (30, 2)), rng.normal(5, 0.2, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        index = BruteForceKNN().fit(x, y)
        assert index.loo_error(k=3) == 0.0


class TestMajorityVote:
    def test_k1_returns_first(self):
        labels = np.array([[2], [0], [1]])
        dist = np.zeros((3, 1))
        np.testing.assert_array_equal(_majority_vote(labels, dist), [2, 0, 1])

    def test_clear_majority(self):
        labels = np.array([[1, 1, 0]])
        dist = np.array([[0.1, 0.2, 0.3]])
        assert _majority_vote(labels, dist)[0] == 1

    def test_tie_broken_by_nearest(self):
        labels = np.array([[2, 0, 2, 0]])
        dist = np.array([[0.1, 0.2, 0.3, 0.4]])
        # 2 and 0 both appear twice; 2 is nearest.
        assert _majority_vote(labels, dist)[0] == 2
