"""Tests for the confidence-aware signal and per-modality metric defaults."""

import pytest

from repro.core.snoopy import Snoopy, SnoopyConfig


class TestAutoMetric:
    def test_vision_defaults_to_euclidean(self, dataset, catalog):
        system = Snoopy(catalog)
        assert system._resolve_metric(dataset) == "euclidean"

    def test_text_defaults_to_cosine(self, task, catalog):
        text_ds = task.sample_dataset(100, 50, name="t", modality="text", rng=0)
        system = Snoopy(catalog)
        assert system._resolve_metric(text_ds) == "cosine"

    def test_explicit_metric_wins(self, dataset, catalog):
        system = Snoopy(catalog, SnoopyConfig(metric="cosine"))
        assert system._resolve_metric(dataset) == "cosine"

    def test_text_run_works_with_auto_metric(self, task):
        from repro.transforms.pretrained import SimulatedEmbedding

        text_ds = task.sample_dataset(300, 100, name="t", modality="text", rng=0)
        embedding = SimulatedEmbedding(
            "e", 16, 0.8, 1e-4, text_ds.oracle.latent_projection, seed=0
        )
        report = Snoopy([embedding]).run(text_ds, target_accuracy=0.6)
        assert 0.0 <= report.ber_estimate <= 1.0


class TestSignalConfidence:
    def test_confident_far_from_target(self, dataset, catalog):
        # Target far above/below the estimate: the Wilson band cannot
        # straddle the threshold.
        report = Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.5)
        assert report.signal_confident

    def test_not_confident_at_the_boundary(self, dataset, catalog):
        first = Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.5)
        # Place the target exactly at the estimate: the band straddles.
        boundary_target = 1.0 - first.ber_estimate
        report = Snoopy(catalog, SnoopyConfig(seed=0)).run(
            dataset, boundary_target
        )
        assert not report.signal_confident

    def test_details_carry_interval(self, dataset, catalog):
        report = Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.6)
        for result in report.per_transform:
            low = result.estimate.details["confidence_low"]
            high = result.estimate.details["confidence_high"]
            assert 0.0 <= low <= result.estimate.value <= high <= 1.0

    def test_summary_mentions_confidence(self, dataset, catalog):
        report = Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.6)
        assert "signal confident" in report.summary()
