"""Unit tests for the Tables III/IV transformation catalogs."""

import pytest

from repro.transforms.catalog import (
    TEXT_EMBEDDINGS,
    VISION_EMBEDDINGS,
    _task_fidelity,
    catalog_for,
    text_catalog,
    vision_catalog,
)


class TestSpecs:
    def test_table3_has_sixteen_pretrained_entries(self):
        assert len(VISION_EMBEDDINGS) == 16

    def test_table4_has_seventeen_entries(self):
        assert len(TEXT_EMBEDDINGS) == 17

    def test_efficientnet_family_ordered_by_fidelity_and_cost(self):
        effs = [s for s in VISION_EMBEDDINGS if s.name.startswith("efficientnet")]
        fidelities = [s.fidelity for s in effs]
        costs = [s.cost_per_sample for s in effs]
        assert fidelities == sorted(fidelities)
        assert costs == sorted(costs)

    def test_sim_dim_capped(self):
        assert all(16 <= s.sim_dim <= 96 for s in VISION_EMBEDDINGS)

    def test_paper_dims_recorded(self):
        bert_large = next(s for s in TEXT_EMBEDDINGS if s.name == "xlnet_large")
        assert bert_large.paper_dim == 1024


class TestFidelityJitter:
    def test_jitter_is_deterministic(self):
        spec = VISION_EMBEDDINGS[0]
        assert _task_fidelity(spec, "cifar10") == _task_fidelity(spec, "cifar10")

    def test_jitter_varies_across_tasks(self):
        spec = VISION_EMBEDDINGS[0]
        values = {_task_fidelity(spec, name) for name in ("a", "b", "c", "d")}
        assert len(values) > 1

    def test_jitter_bounded(self):
        for spec in VISION_EMBEDDINGS:
            for task in ("mnist", "cifar10", "cifar100"):
                fid = _task_fidelity(spec, task)
                assert abs(fid - spec.fidelity) <= 0.06 + 1e-12


class TestCatalogConstruction:
    def test_vision_catalog_includes_classical(self, dataset):
        catalog = vision_catalog(dataset, seed=0, max_embeddings=3)
        assert "identity" in catalog.names
        assert any(name.startswith("pca") for name in catalog.names)

    def test_vision_catalog_full_size(self, dataset):
        catalog = vision_catalog(dataset, seed=0)
        # identity + pca32/pca64 (fit allows both here) + 16 embeddings
        assert len(catalog) >= 17

    def test_max_embeddings_truncation_preserves_spread(self, dataset):
        catalog = vision_catalog(
            dataset, seed=0, include_classical=False, max_embeddings=4
        )
        names = catalog.names
        assert len(names) == 4
        assert names[0] == VISION_EMBEDDINGS[0].name
        assert names[-1] == VISION_EMBEDDINGS[-1].name

    def test_text_catalog_has_no_identity(self, dataset):
        catalog = text_catalog(dataset, seed=0, max_embeddings=5)
        assert "identity" not in catalog.names

    def test_catalog_for_dispatches_on_modality(self, dataset, task):
        vision = catalog_for(dataset, seed=0, max_embeddings=3)
        assert "identity" in vision.names
        text_ds = task.sample_dataset(100, 40, name="t", modality="text", rng=0)
        text = catalog_for(text_ds, seed=0, max_embeddings=3)
        assert "identity" not in text.names

    def test_catalog_transforms_are_usable(self, dataset):
        catalog = vision_catalog(dataset, seed=0, max_embeddings=2)
        catalog.fit(dataset.train_x)
        for transform in catalog:
            out = transform.transform(dataset.test_x)
            assert out.shape[0] == dataset.num_test
            assert out.shape[1] == transform.output_dim


class TestNCAInCatalog:
    def test_nca_opt_in(self, dataset):
        from repro.transforms.catalog import vision_catalog

        catalog = vision_catalog(
            dataset, seed=0, include_nca=True, max_embeddings=2
        )
        assert any(name.startswith("nca") for name in catalog.names)

    def test_catalog_fit_requires_labels_for_nca(self, dataset):
        from repro.exceptions import DataValidationError
        from repro.transforms.catalog import vision_catalog

        catalog = vision_catalog(
            dataset, seed=0, include_nca=True, max_embeddings=2
        )
        with pytest.raises(DataValidationError, match="supervised"):
            catalog.fit(dataset.train_x)
        catalog.fit(dataset.train_x, dataset.train_y)
        assert all(t.fitted for t in catalog)

    def test_snoopy_runs_with_nca_catalog(self, dataset):
        from repro.core.snoopy import Snoopy, SnoopyConfig
        from repro.transforms.catalog import vision_catalog

        catalog = vision_catalog(
            dataset, seed=0, include_nca=True, max_embeddings=2
        )
        report = Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.6)
        assert any(
            r.transform_name.startswith("nca") for r in report.per_transform
        )
