"""Unit tests for repro.datasets.synthetic (generator + oracle)."""

import numpy as np
import pytest

from repro.datasets.synthetic import GaussianMixtureTask, _mixture_posteriors
from repro.exceptions import DataValidationError


class TestConstruction:
    def test_rejects_single_class(self):
        with pytest.raises(DataValidationError):
            GaussianMixtureTask(num_classes=1, latent_dim=2)

    def test_rejects_bad_separation(self):
        with pytest.raises(DataValidationError):
            GaussianMixtureTask(num_classes=2, latent_dim=2, class_sep=0.0)

    def test_raw_dim_composition(self):
        task = GaussianMixtureTask(
            num_classes=3, latent_dim=4, clutter_dim=10, seed=0
        )
        assert task.raw_dim == task.raw_signal_dim + 10


class TestPosteriors:
    def test_rows_sum_to_one(self, rng):
        means = rng.normal(size=(5, 3))
        posts = _mixture_posteriors(rng.normal(size=(50, 3)), means, 1.0)
        np.testing.assert_allclose(posts.sum(axis=1), 1.0, atol=1e-12)

    def test_point_at_mean_prefers_that_class(self):
        means = np.array([[0.0, 0.0], [10.0, 10.0]])
        posts = _mixture_posteriors(means, means, 1.0)
        assert posts[0, 0] > 0.99
        assert posts[1, 1] > 0.99

    def test_oracle_posteriors_from_raw_match_latents(self):
        task = GaussianMixtureTask(num_classes=3, latent_dim=3, seed=1)
        raw, labels, latents = task.sample(100, rng=0)
        oracle = task.oracle()
        np.testing.assert_allclose(
            oracle.posteriors_from_raw(raw), oracle.posteriors(latents), atol=1e-9
        )

    def test_oracle_rejects_wrong_latent_dim(self):
        task = GaussianMixtureTask(num_classes=2, latent_dim=3, seed=0)
        with pytest.raises(DataValidationError):
            task.oracle().posteriors(np.zeros((5, 4)))


class TestTrueBer:
    def test_ber_decreases_with_separation(self):
        task = GaussianMixtureTask(num_classes=4, latent_dim=3, seed=2)
        bers = [
            task.true_ber(class_sep=s, num_monte_carlo=30_000)
            for s in (0.5, 1.5, 4.0)
        ]
        assert bers[0] > bers[1] > bers[2]

    def test_ber_bounded_by_chance(self):
        task = GaussianMixtureTask(num_classes=4, latent_dim=3, seed=2)
        ber = task.true_ber(class_sep=0.01, num_monte_carlo=30_000)
        assert ber <= 1 - 1 / 4 + 1e-6

    def test_ber_cached_and_deterministic(self):
        task = GaussianMixtureTask(num_classes=3, latent_dim=2, seed=3)
        assert task.true_ber() == task.true_ber()

    def test_monte_carlo_agrees_with_1nn_lower_bound(self):
        # On an easy task, the empirical 1NN error should be near (and
        # above) twice-BER-ish; sanity check the MC estimate's scale by
        # verifying the empirical misclassification of the Bayes rule.
        task = GaussianMixtureTask(
            num_classes=2, latent_dim=2, class_sep=2.0, clutter_dim=0, seed=4
        )
        raw, labels, latents = task.sample(20_000, rng=0)
        oracle = task.oracle()
        bayes_pred = oracle.posteriors(latents).argmax(axis=1)
        empirical = float(np.mean(bayes_pred != labels))
        assert empirical == pytest.approx(oracle.true_ber, abs=0.01)


class TestCalibration:
    def test_calibrates_to_target(self):
        task = GaussianMixtureTask(num_classes=5, latent_dim=4, seed=5)
        task.calibrate_to_ber(0.10, num_monte_carlo=30_000)
        assert task.true_ber(num_monte_carlo=30_000) == pytest.approx(
            0.10, rel=0.25
        )

    def test_rejects_unreachable_target(self):
        task = GaussianMixtureTask(num_classes=2, latent_dim=2, seed=5)
        with pytest.raises(DataValidationError):
            task.calibrate_to_ber(0.7)


class TestSampling:
    def test_sample_dataset_shapes(self):
        task = GaussianMixtureTask(num_classes=3, latent_dim=3, seed=6)
        ds = task.sample_dataset(50, 20, rng=0)
        assert ds.num_train == 50
        assert ds.num_test == 20
        assert ds.train_x.shape[1] == task.raw_dim
        assert ds.train_latents.shape == (50, 3)

    def test_labels_cover_classes(self):
        task = GaussianMixtureTask(num_classes=3, latent_dim=3, seed=6)
        ds = task.sample_dataset(300, 100, rng=0)
        assert set(np.unique(ds.train_y)) == {0, 1, 2}

    def test_deterministic_sampling(self):
        task = GaussianMixtureTask(num_classes=3, latent_dim=3, seed=6)
        a = task.sample_dataset(20, 10, rng=7)
        b = task.sample_dataset(20, 10, rng=7)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_latent_projection_recovers_latents(self):
        task = GaussianMixtureTask(num_classes=3, latent_dim=4, seed=8)
        raw, _, latents = task.sample(60, rng=0)
        recovered = raw @ task.oracle().latent_projection.T
        np.testing.assert_allclose(recovered, latents, atol=1e-9)

    def test_clutter_free_task(self):
        task = GaussianMixtureTask(
            num_classes=2, latent_dim=2, clutter_dim=0, seed=9
        )
        raw, _, _ = task.sample(10, rng=0)
        assert raw.shape[1] == task.raw_signal_dim
