"""Second batch of property-based tests: bounds, splits, allocation.

Covers invariants added after the first property batch: Wilson interval
laws, tangent lower bounds on convex curves, stratified-split laws, and
successive-halving budget accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bandit.tangent import tangent_lower_bound
from repro.datasets.splits import stratified_kfold, stratified_split
from repro.estimators.confidence import ber_estimate_interval, wilson_interval
from repro.noise.features import inject_missing_features


class TestWilsonProperties:
    @given(
        error=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=100_000),
    )
    def test_interval_contains_point_and_stays_in_unit(self, error, n):
        interval = wilson_interval(error, n)
        assert -1e-12 <= interval.low <= error + 1e-9
        assert error - 1e-9 <= interval.high <= 1.0 + 1e-12

    @given(
        error=st.floats(min_value=0.01, max_value=0.99),
        n1=st.integers(min_value=10, max_value=1000),
        n2=st.integers(min_value=10, max_value=1000),
    )
    def test_width_monotone_in_samples(self, error, n1, n2):
        small, large = sorted((n1, n2))
        assert (
            wilson_interval(error, large).width
            <= wilson_interval(error, small).width + 1e-12
        )

    @given(
        error=st.floats(min_value=0.0, max_value=0.8),
        n=st.integers(min_value=5, max_value=10_000),
        c=st.integers(min_value=2, max_value=100),
    )
    def test_ber_interval_ordered(self, error, n, c):
        interval = ber_estimate_interval(error, n, c)
        # 1e-9 absorbs float noise in the Wilson endpoints at error = 0.
        assert interval.low <= interval.point + 1e-9
        assert interval.point <= interval.high + 1e-9


class TestTangentProperties:
    @given(
        scale=st.floats(min_value=0.1, max_value=10.0),
        exponent=st.floats(min_value=0.1, max_value=1.5),
        horizon=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_lower_bounds_any_power_law(self, scale, exponent, horizon):
        # Power-law curves are convex decreasing: the secant through the
        # last two points must under-predict every future value.
        sizes = np.array([64.0, 128.0, 256.0])
        losses = scale * sizes ** (-exponent)
        target = int(sizes[-1]) * horizon
        bound = tangent_lower_bound(sizes, losses, target)
        true_future = scale * target ** (-exponent)
        assert bound <= true_future + 1e-9


class TestSplitProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fraction=st.floats(min_value=0.1, max_value=0.5),
        num_classes=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_and_stratifies(self, seed, fraction, num_classes):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, num_classes, size=120)
        # Ensure every class occurs at least twice.
        labels[: 2 * num_classes] = np.repeat(np.arange(num_classes), 2)
        train, test = stratified_split(labels, fraction, rng=seed)
        assert len(set(train.tolist()) & set(test.tolist())) == 0
        assert len(train) + len(test) == len(labels)
        assert set(labels[train]) == set(labels[test])

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_folds=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_kfold_partitions(self, seed, num_folds):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=90)
        folds = stratified_kfold(labels, num_folds, rng=seed)
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(90))
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 3


class TestMissingFeatureProperties:
    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_imputation_never_produces_non_finite(self, fraction, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(30, 5))
        result = inject_missing_features(features, fraction, rng=seed)
        assert np.isfinite(result.noisy_features).all()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_unmasked_entries_untouched(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(20, 4))
        result = inject_missing_features(features, 0.4, rng=seed)
        np.testing.assert_array_equal(
            result.noisy_features[~result.mask], features[~result.mask]
        )


class TestSuccessiveHalvingBudget:
    @given(
        budget_factor=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_total_samples_bounded_by_budget(self, budget_factor, seed, dataset):
        # SH never embeds more than its budget plus one pull of slack
        # per arm (chunk rounding).
        from repro.bandit.arms import build_arms
        from repro.bandit.successive_halving import successive_halving
        from repro.transforms.linear import IdentityTransform, PCATransform
        from repro.transforms.pretrained import SimulatedEmbedding

        projection = dataset.oracle.latent_projection
        transforms = [
            IdentityTransform(dataset.raw_dim),
            PCATransform(6),
            SimulatedEmbedding("a", 8, 0.5, 1e-5, projection, seed=1),
            SimulatedEmbedding("b", 8, 0.7, 1e-5, projection, seed=2),
        ]
        for transform in transforms:
            transform.fit(dataset.train_x)
        arms = build_arms(transforms, dataset, rng=seed)
        budget = budget_factor * dataset.num_train
        pull_size = 64
        result = successive_halving(arms, budget, pull_size=pull_size)
        slack = len(arms) * pull_size
        assert result.total_samples <= budget + slack
