"""Unit tests for the feature-space quality injectors (repro.noise.features)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.noise.features import (
    ber_after_latent_feature_noise,
    inject_feature_noise,
    inject_missing_features,
)


@pytest.fixture()
def features(rng):
    return rng.normal(size=(300, 8)) + np.arange(8)


class TestFeatureNoise:
    def test_zero_noise_is_identity(self, features):
        result = inject_feature_noise(features, 0.0, rng=0)
        np.testing.assert_array_equal(result.noisy_features, features)
        assert not result.mask.any()

    def test_noise_std_realized(self, features):
        result = inject_feature_noise(features, 2.0, rng=0)
        residual = result.noisy_features - result.clean_features
        assert residual.std() == pytest.approx(2.0, rel=0.05)
        assert result.mask.all()

    def test_negative_std_raises(self, features):
        with pytest.raises(DataValidationError):
            inject_feature_noise(features, -1.0)

    def test_clean_copy_is_independent(self, features):
        result = inject_feature_noise(features, 1.0, rng=0)
        result.clean_features[:] = 0.0
        assert features.std() > 0  # original untouched


class TestMissingFeatures:
    def test_fraction_realized(self, features):
        result = inject_missing_features(features, 0.3, rng=0)
        assert result.mask.mean() == pytest.approx(0.3, abs=0.03)

    def test_mean_imputation(self, features):
        result = inject_missing_features(features, 0.4, strategy="mean", rng=0)
        observed = np.where(result.mask, np.nan, features)
        column_means = np.nanmean(observed, axis=0)
        rows, cols = np.nonzero(result.mask)
        np.testing.assert_allclose(
            result.noisy_features[rows, cols], column_means[cols]
        )

    def test_zero_imputation(self, features):
        result = inject_missing_features(features, 0.4, strategy="zero", rng=0)
        assert np.all(result.noisy_features[result.mask] == 0.0)

    def test_unknown_strategy_raises(self, features):
        with pytest.raises(DataValidationError):
            inject_missing_features(features, 0.2, strategy="knn")

    def test_fraction_out_of_range_raises(self, features):
        with pytest.raises(DataValidationError):
            inject_missing_features(features, 1.2)

    def test_full_missing_zero_strategy(self, features):
        result = inject_missing_features(features, 1.0, strategy="zero", rng=0)
        assert np.all(result.noisy_features == 0.0)


class TestLatentFeatureNoiseTheory:
    def test_zero_noise_recovers_clean_ber(self, task):
        reference = task.true_ber()
        computed = ber_after_latent_feature_noise(
            task.class_means(), task.within_std, 0.0
        )
        assert computed == pytest.approx(reference, abs=0.01)

    def test_ber_increases_with_feature_noise(self, task):
        values = [
            ber_after_latent_feature_noise(
                task.class_means(), task.within_std, std,
                num_monte_carlo=40_000,
            )
            for std in (0.0, 1.0, 3.0)
        ]
        assert values[0] < values[1] < values[2]

    def test_saturates_at_chance(self, task):
        noisy = ber_after_latent_feature_noise(
            task.class_means(), task.within_std, 100.0,
            num_monte_carlo=40_000,
        )
        chance = 1 - 1 / task.num_classes
        assert noisy == pytest.approx(chance, abs=0.02)

    def test_invalid_std_raises(self, task):
        with pytest.raises(DataValidationError):
            ber_after_latent_feature_noise(task.class_means(), 0.0, 1.0)

    def test_1nn_estimate_tracks_feature_noise(self, task, rng):
        # End-to-end: corrupt raw features, check the estimator moves in
        # the direction theory predicts.
        from repro.estimators.cover_hart import OneNNEstimator

        dataset = task.sample_dataset(500, 200, rng=rng)
        estimator = OneNNEstimator()
        clean = estimator.estimate(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, task.num_classes,
        ).value
        corrupt_train = inject_feature_noise(dataset.train_x, 3.0, rng=0)
        corrupt_test = inject_feature_noise(dataset.test_x, 3.0, rng=1)
        noisy = estimator.estimate(
            corrupt_train.noisy_features, dataset.train_y,
            corrupt_test.noisy_features, dataset.test_y, task.num_classes,
        ).value
        assert noisy > clean
