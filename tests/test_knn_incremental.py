"""Unit tests for repro.knn.incremental.NeighborCache."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.knn.brute_force import BruteForceKNN
from repro.knn.incremental import NeighborCache
from repro.knn.progressive import ProgressiveOneNN


@pytest.fixture()
def setup(rng):
    train_x = rng.normal(size=(150, 4))
    train_y = rng.integers(0, 3, size=150)
    test_x = rng.normal(size=(60, 4))
    test_y = rng.integers(0, 3, size=60)
    _, idx = BruteForceKNN().fit(train_x, train_y).kneighbors(test_x, k=1)
    cache = NeighborCache(idx[:, 0], train_y, test_y)
    return cache, train_x, train_y, test_x, test_y


class TestConstruction:
    def test_out_of_range_indices_raise(self):
        with pytest.raises(DataValidationError):
            NeighborCache(np.array([5]), np.zeros(3, dtype=int), np.zeros(1, dtype=int))

    def test_length_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            NeighborCache(
                np.array([0, 1]), np.zeros(3, dtype=int), np.zeros(1, dtype=int)
            )

    def test_sizes(self, setup):
        cache, _, train_y, _, test_y = setup
        assert cache.train_size == len(train_y)
        assert cache.test_size == len(test_y)

    def test_from_progressive(self, rng):
        train_x = rng.normal(size=(80, 3))
        train_y = rng.integers(0, 2, size=80)
        test_x = rng.normal(size=(20, 3))
        test_y = rng.integers(0, 2, size=20)
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x, train_y)
        cache = NeighborCache.from_progressive(evaluator, train_y)
        assert cache.error() == pytest.approx(evaluator.error())


class TestErrorConsistency:
    def test_matches_brute_force(self, setup):
        cache, train_x, train_y, test_x, test_y = setup
        index = BruteForceKNN().fit(train_x, train_y)
        assert cache.error() == pytest.approx(index.error(test_x, test_y, k=1))

    def test_train_update_matches_recompute(self, setup):
        cache, train_x, train_y, test_x, test_y = setup
        rng = np.random.default_rng(4)
        idx = rng.choice(len(train_y), size=30, replace=False)
        new = rng.integers(0, 3, size=30)
        cache.update_train_labels(idx, new)
        modified = train_y.copy()
        modified[idx] = new
        index = BruteForceKNN().fit(train_x, modified)
        assert cache.error() == pytest.approx(index.error(test_x, test_y, k=1))

    def test_test_update_matches_recompute(self, setup):
        cache, train_x, train_y, test_x, test_y = setup
        rng = np.random.default_rng(5)
        idx = rng.choice(len(test_y), size=15, replace=False)
        new = rng.integers(0, 3, size=15)
        cache.update_test_labels(idx, new)
        modified = test_y.copy()
        modified[idx] = new
        index = BruteForceKNN().fit(train_x, train_y)
        assert cache.error() == pytest.approx(index.error(test_x, modified, k=1))

    def test_update_out_of_range_raises(self, setup):
        cache, *_ = setup
        with pytest.raises(DataValidationError):
            cache.update_train_labels(np.array([10_000]), np.array([0]))
        with pytest.raises(DataValidationError):
            cache.update_test_labels(np.array([10_000]), np.array([0]))

    def test_snapshot_returns_copies(self, setup):
        cache, *_ = setup
        train_labels, test_labels = cache.snapshot_labels()
        train_labels[:] = -1
        test_labels[:] = -1
        fresh_train, fresh_test = cache.snapshot_labels()
        assert fresh_train.min() >= 0
        assert fresh_test.min() >= 0

    def test_empty_update_is_noop(self, setup):
        cache, *_ = setup
        before = cache.error()
        cache.update_train_labels(np.array([], dtype=int), np.array([], dtype=int))
        assert cache.error() == before
