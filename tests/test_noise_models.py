"""Unit tests for repro.noise.models (the injectors)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.noise.models import (
    inject_instance_dependent_noise,
    inject_pairwise_noise,
    inject_uniform_noise,
    inject_with_transition,
)
from repro.noise.transition import TransitionMatrix


@pytest.fixture()
def labels(rng):
    return rng.integers(0, 4, size=2000)


class TestUniform:
    def test_zero_rho_is_identity(self, labels):
        result = inject_uniform_noise(labels, 0.0, 4, rng=0)
        np.testing.assert_array_equal(result.noisy_labels, labels)
        assert result.flip_rate == 0.0

    def test_flip_rate_matches_lemma(self, labels):
        # Realized flips ~ rho * (1 - 1/C).
        result = inject_uniform_noise(labels, 0.4, 4, rng=0)
        assert abs(result.flip_rate - 0.4 * 0.75) < 0.03

    def test_clean_labels_preserved(self, labels):
        result = inject_uniform_noise(labels, 0.5, 4, rng=0)
        np.testing.assert_array_equal(result.clean_labels, labels)

    def test_flipped_mask_consistent(self, labels):
        result = inject_uniform_noise(labels, 0.5, 4, rng=0)
        np.testing.assert_array_equal(
            result.flipped, result.noisy_labels != result.clean_labels
        )

    def test_rho_out_of_range_raises(self, labels):
        with pytest.raises(DataValidationError):
            inject_uniform_noise(labels, 1.5, 4)

    def test_label_out_of_range_raises(self):
        with pytest.raises(DataValidationError):
            inject_uniform_noise(np.array([7]), 0.1, 4)

    def test_deterministic_with_seed(self, labels):
        a = inject_uniform_noise(labels, 0.3, 4, rng=11)
        b = inject_uniform_noise(labels, 0.3, 4, rng=11)
        np.testing.assert_array_equal(a.noisy_labels, b.noisy_labels)

    def test_noisy_labels_stay_in_range(self, labels):
        result = inject_uniform_noise(labels, 0.9, 4, rng=0)
        assert result.noisy_labels.min() >= 0
        assert result.noisy_labels.max() < 4


class TestTransition:
    def test_matches_matrix_statistics(self, labels):
        t = TransitionMatrix.uniform(0.6, 4)
        result = inject_with_transition(labels, t, rng=0)
        assert abs(result.flip_rate - 0.6 * 0.75) < 0.03

    def test_pairwise_flips_to_partner_only(self, labels):
        result = inject_pairwise_noise(labels, 0.3, 4, rng=0)
        flipped_from = result.clean_labels[result.flipped]
        flipped_to = result.noisy_labels[result.flipped]
        np.testing.assert_array_equal(flipped_to, (flipped_from + 1) % 4)


class TestInstanceDependent:
    def test_mean_rate_approximately_base(self, rng):
        features = rng.normal(size=(3000, 4))
        labels = rng.integers(0, 3, size=3000)
        result = inject_instance_dependent_noise(features, labels, 3, 0.2, rng=0)
        assert abs(result.flip_rate - 0.2) < 0.05

    def test_harder_points_flip_more(self, rng):
        # One tight cluster per class: points far from the centroid must
        # have higher empirical flip rates than points near it.
        features = rng.normal(size=(6000, 3))
        labels = np.zeros(6000, dtype=int)
        labels[3000:] = 1
        features[labels == 1] += 5.0
        result = inject_instance_dependent_noise(
            features, labels, 2, 0.3, rng=0
        )
        dist = np.linalg.norm(
            features - features[labels == 0].mean(axis=0), axis=1
        )
        dist[labels == 1] = np.linalg.norm(
            features[labels == 1] - features[labels == 1].mean(axis=0), axis=1
        )
        far = dist > np.median(dist)
        assert result.flipped[far].mean() > result.flipped[~far].mean()

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            inject_instance_dependent_noise(
                rng.normal(size=(5, 2)), np.zeros(4, dtype=int), 2, 0.1
            )

    def test_base_rate_out_of_range_raises(self, rng):
        with pytest.raises(DataValidationError):
            inject_instance_dependent_noise(
                rng.normal(size=(5, 2)), np.zeros(5, dtype=int), 2, 1.2
            )


class TestNoiseInjectionContainer:
    def test_empty_flip_rate_is_zero(self):
        result = inject_uniform_noise(np.array([], dtype=int), 0.5, 3, rng=0)
        assert result.flip_rate == 0.0
