"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": ("Feasibility study", "selected"),
    "label_cleaning_loop.py": ("with Snoopy feasibility study", "reached"),
    "embedding_selection.py": ("incremental re-run", "speedup"),
    "estimator_comparison.py": ("FeeBee", "1nn"),
    "guidance_and_trust.py": ("samples-needed extrapolation", "target"),
    "drift_monitoring.py": ("DRIFT detected", "Lemma 2.1"),
    "user_data.py": ("user dataset", "archived"),
}


def test_all_examples_are_covered():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert names == set(EXPECTED_MARKERS), (
        "examples/ and EXPECTED_MARKERS out of sync"
    )


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script.name]:
        assert marker in result.stdout, (
            f"{script.name}: expected {marker!r} in output"
        )
