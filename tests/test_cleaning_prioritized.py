"""Unit tests for prioritized (disagreement-first) label cleaning."""

import numpy as np
import pytest

from repro.cleaning.prioritized import (
    PrioritizedCleaningSession,
    disagreement_scores,
    precision_at_fraction,
)
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.workflow import make_noisy_dataset
from repro.exceptions import DataValidationError


@pytest.fixture()
def noisy(dataset):
    return make_noisy_dataset(dataset, 0.3, rng=0)


class TestDisagreementScores:
    def test_scores_in_unit_interval(self, noisy):
        train_scores, test_scores = disagreement_scores(noisy, k=5)
        assert train_scores.min() >= 0 and train_scores.max() <= 1
        assert test_scores.min() >= 0 and test_scores.max() <= 1
        assert len(train_scores) == noisy.num_train
        assert len(test_scores) == noisy.num_test

    def test_flipped_labels_score_higher(self, noisy):
        train_scores, _ = disagreement_scores(noisy, k=5)
        flipped = noisy.train_y != noisy.clean_train_y
        assert train_scores[flipped].mean() > train_scores[~flipped].mean()

    def test_with_embedding_scores_sharper(self, noisy, catalog):
        # Scoring on a high-fidelity embedding separates flipped labels
        # at least as well as raw features.
        raw_train, _ = disagreement_scores(noisy, k=5)
        emb_train, _ = disagreement_scores(
            noisy, transform=catalog["emb_high"], k=5
        )
        flipped = noisy.train_y != noisy.clean_train_y

        def separation(scores):
            return scores[flipped].mean() - scores[~flipped].mean()

        assert separation(emb_train) >= separation(raw_train) - 0.02

    def test_invalid_k_raises(self, noisy):
        with pytest.raises(DataValidationError):
            disagreement_scores(noisy, k=0)


class TestPrioritizedSession:
    def test_requires_noisy_dataset(self, dataset):
        with pytest.raises(DataValidationError):
            PrioritizedCleaningSession(dataset)

    def test_full_clean_restores_everything(self, noisy):
        session = PrioritizedCleaningSession(noisy, rng=0)
        session.clean_fraction(1.0)
        assert session.remaining_noise_rate() == 0.0

    def test_beats_random_order(self, noisy, catalog):
        fraction = 0.25
        random_session = CleaningSession(noisy, rng=0)
        _, random_precision = precision_at_fraction(random_session, fraction)
        prioritized = PrioritizedCleaningSession(
            noisy, transform=catalog["emb_high"], rng=0
        )
        _, prioritized_precision = precision_at_fraction(prioritized, fraction)
        # Random precision ~ the realized noise rate; prioritized should
        # be clearly better on a 30%-noisy artefact.
        assert prioritized_precision > random_precision * 1.5

    def test_precision_helper_consistency(self, noisy):
        session = CleaningSession(noisy, rng=0)
        step, precision = precision_at_fraction(session, 0.5)
        assert 0.0 <= precision <= 1.0
        assert step.num_examined == pytest.approx(
            0.5 * session.total_samples, abs=1
        )

    def test_first_pass_concentrates_fixes(self, noisy, catalog):
        # Cleaning the top-10% suspicious samples must fix a share of
        # all flipped labels far above 10%.
        session = PrioritizedCleaningSession(
            noisy, transform=catalog["emb_high"], rng=0
        )
        total_wrong = session.remaining_noise_rate() * session.total_samples
        session.clean_fraction(0.10)
        remaining_wrong = session.remaining_noise_rate() * session.total_samples
        fixed_share = (total_wrong - remaining_wrong) / total_wrong
        assert fixed_share > 0.15
