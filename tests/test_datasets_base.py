"""Unit tests for repro.datasets.base.Dataset."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.exceptions import DataValidationError


def _make(n_train=30, n_test=10, c=3, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="toy",
        train_x=rng.normal(size=(n_train, dim)),
        train_y=rng.integers(0, c, n_train),
        test_x=rng.normal(size=(n_test, dim)),
        test_y=rng.integers(0, c, n_test),
        num_classes=c,
    )


class TestValidation:
    def test_valid_construction(self):
        ds = _make()
        assert ds.num_train == 30
        assert ds.num_test == 10
        assert ds.raw_dim == 4

    def test_length_mismatch_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataValidationError):
            Dataset(
                "bad", rng.normal(size=(5, 2)), np.zeros(4, dtype=int),
                rng.normal(size=(3, 2)), np.zeros(3, dtype=int), 2,
            )

    def test_dim_mismatch_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataValidationError):
            Dataset(
                "bad", rng.normal(size=(5, 2)), np.zeros(5, dtype=int),
                rng.normal(size=(3, 3)), np.zeros(3, dtype=int), 2,
            )

    def test_label_out_of_range_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataValidationError, match="labels out of range"):
            Dataset(
                "bad", rng.normal(size=(5, 2)), np.full(5, 7),
                rng.normal(size=(3, 2)), np.zeros(3, dtype=int), 2,
            )

    def test_bad_modality_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataValidationError, match="modality"):
            Dataset(
                "bad", rng.normal(size=(5, 2)), np.zeros(5, dtype=int),
                rng.normal(size=(3, 2)), np.zeros(3, dtype=int), 2,
                modality="audio",
            )


class TestNoisyDerivation:
    def test_clean_labels_retained(self):
        ds = _make()
        noisy_train = (ds.train_y + 1) % 3
        noisy = ds.with_noisy_labels(noisy_train, ds.test_y)
        assert noisy.is_noisy
        np.testing.assert_array_equal(noisy.clean_train_y, ds.train_y)
        np.testing.assert_array_equal(noisy.train_y, noisy_train)

    def test_noise_rate(self):
        ds = _make()
        noisy = ds.with_noisy_labels((ds.train_y + 1) % 3, ds.test_y)
        expected = ds.num_train / (ds.num_train + ds.num_test)
        assert noisy.label_noise_rate() == pytest.approx(expected)

    def test_clean_dataset_noise_rate_zero(self):
        assert _make().label_noise_rate() == 0.0

    def test_name_suffix(self):
        ds = _make()
        noisy = ds.with_noisy_labels(ds.train_y, ds.test_y, name_suffix="x")
        assert noisy.name == "toy_x"

    def test_length_mismatch_raises(self):
        ds = _make()
        with pytest.raises(DataValidationError):
            ds.with_noisy_labels(ds.train_y[:-1], ds.test_y)

    def test_extras_merged(self):
        ds = _make()
        ds.extras["base"] = 1
        noisy = ds.with_noisy_labels(ds.train_y, ds.test_y, extras={"rho": 0.2})
        assert noisy.extras == {"base": 1, "rho": 0.2}


class TestSubsample:
    def test_sizes(self):
        sub = _make().subsample(10, 5, rng=0)
        assert sub.num_train == 10
        assert sub.num_test == 5

    def test_too_large_raises(self):
        with pytest.raises(DataValidationError):
            _make().subsample(1000)

    def test_deterministic(self):
        ds = _make()
        a = ds.subsample(10, 5, rng=3)
        b = ds.subsample(10, 5, rng=3)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_subsample_preserves_clean_labels(self):
        ds = _make()
        noisy = ds.with_noisy_labels((ds.train_y + 1) % 3, ds.test_y)
        sub = noisy.subsample(10, 5, rng=0)
        assert sub.clean_train_y is not None
        # Clean labels still aligned: noisy = clean + 1 mod 3 on train.
        np.testing.assert_array_equal(
            sub.train_y, (sub.clean_train_y + 1) % 3
        )

    def test_true_ber_none_without_oracle(self):
        assert _make().true_ber is None
