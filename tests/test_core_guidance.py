"""Unit tests for repro.core.guidance (Eq. 10 log-linear extrapolation)."""

import numpy as np
import pytest

from repro.core.guidance import (
    ExtrapolationResult,
    LogLinearFit,
    extrapolate_samples_needed,
    fit_log_linear,
)
from repro.exceptions import ConvergenceError


def _power_law_curve(alpha=0.5, c=1.0, sizes=(100, 200, 400, 800, 1600)):
    sizes = np.array(sizes, dtype=float)
    errors = np.exp(c) * sizes ** (-alpha)
    return sizes, errors


class TestFit:
    def test_recovers_exact_power_law(self):
        sizes, errors = _power_law_curve(alpha=0.7, c=0.3)
        fit = fit_log_linear(sizes, errors)
        assert fit.alpha == pytest.approx(0.7, abs=1e-9)
        assert fit.intercept == pytest.approx(0.3, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_prediction_roundtrip(self):
        sizes, errors = _power_law_curve()
        fit = fit_log_linear(sizes, errors)
        assert fit.predict_error(sizes[-1]) == pytest.approx(errors[-1])

    def test_samples_for_error_inverts_prediction(self):
        sizes, errors = _power_law_curve(alpha=0.5, c=1.0)
        fit = fit_log_linear(sizes, errors)
        target = errors[-1] / 2
        n = fit.samples_for_error(target)
        assert fit.predict_error(n) == pytest.approx(target, rel=1e-9)

    def test_flat_curve_reports_infinite_requirement(self):
        fit = LogLinearFit(alpha=0.0, intercept=-1.0, r_squared=0.0, num_points=5)
        assert fit.samples_for_error(0.01) == float("inf")

    def test_rejects_too_few_points(self):
        with pytest.raises(ConvergenceError):
            fit_log_linear(np.array([10, 20]), np.array([0.5, 0.4]))

    def test_zero_errors_filtered(self):
        sizes = np.array([10, 20, 40, 80, 160], dtype=float)
        errors = np.array([0.4, 0.3, 0.2, 0.0, 0.0])
        fit = fit_log_linear(sizes, errors)
        assert fit.num_points == 3

    def test_noisy_curve_r_squared_below_one(self, rng):
        sizes, errors = _power_law_curve(sizes=tuple(2**k for k in range(5, 13)))
        noisy = errors * np.exp(rng.normal(scale=0.2, size=len(errors)))
        fit = fit_log_linear(sizes, noisy)
        assert 0.0 < fit.r_squared < 1.0

    def test_invalid_target_raises(self):
        sizes, errors = _power_law_curve()
        fit = fit_log_linear(sizes, errors)
        with pytest.raises(ConvergenceError):
            fit.samples_for_error(0.0)
        with pytest.raises(ConvergenceError):
            fit.predict_error(-5)


class TestExtrapolation:
    def test_target_already_reached(self):
        sizes, errors = _power_law_curve()
        result = extrapolate_samples_needed("t", sizes, errors, errors[-1] * 2)
        assert result.additional_samples == 0.0
        assert result.trustworthy

    def test_near_target_trustworthy(self):
        sizes, errors = _power_law_curve(alpha=1.0)
        # Halving the error under alpha=1 requires doubling n: within the
        # default 4x horizon.
        result = extrapolate_samples_needed("t", sizes, errors, errors[-1] / 2)
        assert result.trustworthy
        assert result.required_samples == pytest.approx(2 * sizes[-1], rel=1e-6)

    def test_far_target_not_trustworthy(self):
        sizes, errors = _power_law_curve(alpha=0.3)
        result = extrapolate_samples_needed("t", sizes, errors, errors[-1] / 100)
        assert not result.trustworthy
        assert result.additional_samples > 0

    def test_describe_mentions_transform(self):
        sizes, errors = _power_law_curve()
        result = extrapolate_samples_needed("my_embedding", sizes, errors, 0.01)
        assert "my_embedding" in result.describe()

    def test_describe_flat_curve(self):
        result = ExtrapolationResult(
            transform_name="t", target_error=0.01, current_samples=100,
            current_error=0.5, required_samples=float("inf"),
            additional_samples=float("inf"), trustworthy=False,
            fit=LogLinearFit(0.0, -0.7, 0.0, 5),
        )
        assert "unreachable" in result.describe()
