"""Tests for the dtype-aware distance-kernel subsystem.

Three layers:

- unit tests for the kernel primitives (bind-once state, fused blocked
  argmin/top-k, dtype resolution);
- a float64 regression suite proving the bound-kernel paths agree with
  the legacy recompute-everything paths bit-for-bit;
- a hypothesis parity suite asserting the float32 compute path matches
  float64 within tolerance (errors, top-k indices modulo ties) across
  every backend and the progressive evaluator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.knn.base import make_index
from repro.knn.kernels import (
    DEFAULT_COMPUTE_DTYPE,
    CosineKernel,
    EuclideanKernel,
    make_kernel,
    resolve_dtype,
)
from repro.knn.metrics import (
    blocked_argmin_distance,
    blocked_topk,
    cosine_distances,
    pairwise_distances,
)
from repro.knn.progressive import ProgressiveOneNN

BACKENDS = ("brute_force", "ivf", "incremental")

#: Tolerances for float32-vs-float64 agreement on O(1)-scale gaussians.
F32_RTOL, F32_ATOL = 1e-4, 1e-5


class TestResolveDtype:
    def test_none_is_strict_float64(self):
        assert resolve_dtype(None) == np.dtype(np.float64)

    @pytest.mark.parametrize("spec", ["float32", np.float32, np.dtype("float32")])
    def test_float32_specs(self, spec):
        assert resolve_dtype(spec) == np.dtype(np.float32)

    @pytest.mark.parametrize("spec", ["float16", "int64", "double precision", 7])
    def test_rejects_everything_else(self, spec):
        with pytest.raises(DataValidationError, match="compute dtype"):
            resolve_dtype(spec)

    def test_default_is_float32(self):
        assert resolve_dtype(DEFAULT_COMPUTE_DTYPE) == np.dtype(np.float32)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_indexes_fail_fast_on_bad_dtype(self, backend):
        with pytest.raises(DataValidationError, match="compute dtype"):
            make_index(backend, dtype="float16")


class TestKernelConstruction:
    def test_unknown_metric_raises(self, rng):
        with pytest.raises(DataValidationError, match="unknown metric"):
            make_kernel("manhattan", rng.normal(size=(4, 2)))

    def test_rejects_1d_bound(self):
        with pytest.raises(DataValidationError):
            make_kernel("euclidean", np.zeros(3))

    def test_metric_classes(self, rng):
        x = rng.normal(size=(6, 3))
        assert isinstance(make_kernel("euclidean", x), EuclideanKernel)
        assert isinstance(make_kernel("cosine", x), CosineKernel)

    def test_bound_cast_and_cached(self, rng):
        x = rng.normal(size=(6, 3))
        kernel = make_kernel("euclidean", x, dtype="float32")
        assert kernel.bound.dtype == np.float32
        assert kernel.compute_dtype == np.dtype(np.float32)
        assert kernel.num_bound == 6
        assert kernel.dim == 3
        np.testing.assert_allclose(
            kernel.bound_norms_sq,
            np.sum(x * x, axis=1).astype(np.float32),
            rtol=1e-6,
        )

    def test_dimension_mismatch_raises(self, rng):
        kernel = make_kernel("euclidean", rng.normal(size=(5, 4)))
        with pytest.raises(DataValidationError, match="dimension mismatch"):
            kernel.topk(rng.normal(size=(2, 3)), k=1)


class TestFusedPrimitives:
    def test_nearest_among_matches_dense(self, rng):
        kernel = make_kernel("euclidean", rng.normal(size=(30, 5)), dtype=None)
        other = rng.normal(size=(100, 5))
        idx, cmp = kernel.nearest_among(other, block_size=7)
        dense = pairwise_distances(kernel.bound, other)
        np.testing.assert_array_equal(idx, np.argmin(dense, axis=1))
        np.testing.assert_allclose(
            kernel.to_distance(cmp), dense.min(axis=1), atol=1e-10
        )

    def test_nearest_among_empty_other_raises(self, rng):
        kernel = make_kernel("euclidean", rng.normal(size=(3, 2)))
        with pytest.raises(DataValidationError):
            kernel.nearest_among(np.zeros((0, 2)))

    def test_topk_validates_k(self, rng):
        kernel = make_kernel("euclidean", rng.normal(size=(5, 2)))
        with pytest.raises(DataValidationError, match="k must be >= 1"):
            kernel.topk(rng.normal(size=(2, 2)), k=0)
        with pytest.raises(DataValidationError, match="exceeds corpus"):
            kernel.topk(rng.normal(size=(2, 2)), k=6)

    def test_cosine_zero_vectors_maximally_dissimilar(self):
        bound = np.array([[0.0, 0.0], [1.0, 0.0]])
        kernel = make_kernel("cosine", bound, dtype=None)
        dist, idx = kernel.topk(np.array([[2.0, 0.0], [0.0, 0.0]]), k=2)
        # Query 0: parallel to bound row 1 (distance 0), zero row at 1.
        assert idx[0, 0] == 1
        assert dist[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert dist[0, 1] == pytest.approx(1.0)
        # A zero query is at distance 1 from everything.
        np.testing.assert_allclose(dist[1], 1.0)

    def test_from_distance_roundtrip(self, rng):
        x = rng.normal(size=(8, 3))
        for metric in ("euclidean", "cosine"):
            kernel = make_kernel(metric, x, dtype=None)
            dist = np.abs(rng.normal(size=5))
            np.testing.assert_allclose(
                kernel.to_distance(kernel.from_distance(dist)), dist,
                rtol=1e-12,
            )


def _legacy_blocked_topk(queries, corpus, k, metric, block_size, exclude_self):
    """The historical blocked_topk, verbatim: full sqrt'd distance blocks."""
    from repro.knn.metrics import iter_blocks

    queries = np.asarray(queries, dtype=np.float64)
    corpus = np.asarray(corpus, dtype=np.float64)
    n = len(queries)
    all_dist = np.empty((n, k))
    all_idx = np.empty((n, k), dtype=np.int64)
    for block in iter_blocks(n, block_size):
        dist = pairwise_distances(queries[block], corpus, metric=metric)
        if exclude_self:
            dist[
                np.arange(block.stop - block.start),
                np.arange(block.start, block.stop),
            ] = np.inf
        part = np.argpartition(dist, kth=k - 1, axis=1)[:, :k]
        part_dist = np.take_along_axis(dist, part, axis=1)
        order = np.argsort(part_dist, axis=1)
        all_idx[block] = np.take_along_axis(part, order, axis=1)
        all_dist[block] = np.take_along_axis(part_dist, order, axis=1)
    return all_dist, all_idx


class _LegacyProgressive:
    """The historical partial_fit loop: full recompute, sqrt'd distances."""

    def __init__(self, test_x, test_y, metric="euclidean"):
        self._test_x = np.array(test_x, dtype=np.float64)
        self._test_y = np.array(test_y, dtype=np.int64)
        self.metric = metric
        self._nn_dist = np.full(len(test_x), np.inf)
        self._nn_label = np.full(len(test_x), -1, dtype=np.int64)
        self._nn_index = np.full(len(test_x), -1, dtype=np.int64)
        self._train_seen = 0

    def partial_fit(self, batch_x, batch_y):
        batch_x = np.asarray(batch_x, dtype=np.float64)
        batch_y = np.asarray(batch_y, dtype=np.int64)
        dist = pairwise_distances(self._test_x, batch_x, metric=self.metric)
        local = np.argmin(dist, axis=1)
        local_dist = dist[np.arange(len(self._test_x)), local]
        improved = local_dist < self._nn_dist
        self._nn_dist[improved] = local_dist[improved]
        self._nn_label[improved] = batch_y[local[improved]]
        self._nn_index[improved] = local[improved] + self._train_seen
        self._train_seen += len(batch_x)
        return float(np.mean(self._nn_label != self._test_y))


class TestFloat64LegacyParity:
    """At float64 the bound-kernel paths ARE the legacy paths, bit-for-bit."""

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    @pytest.mark.parametrize("exclude_self", [False, True])
    def test_blocked_topk_bit_for_bit(self, rng, metric, exclude_self):
        x = rng.normal(size=(90, 6))
        queries = x if exclude_self else rng.normal(size=(40, 6))
        legacy_dist, legacy_idx = _legacy_blocked_topk(
            queries, x, 4, metric, 17, exclude_self
        )
        dist, idx = blocked_topk(
            queries, x, 4, metric=metric, block_size=17,
            exclude_self=exclude_self,
        )
        np.testing.assert_array_equal(idx, legacy_idx)
        np.testing.assert_array_equal(dist, legacy_dist)

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_progressive_bit_for_bit(self, rng, metric):
        test_x = rng.normal(size=(50, 7))
        test_y = rng.integers(0, 4, 50)
        legacy = _LegacyProgressive(test_x, test_y, metric=metric)
        bound = ProgressiveOneNN(test_x, test_y, metric=metric, dtype=None)
        for _ in range(6):
            batch_x = rng.normal(size=(33, 7))
            batch_y = rng.integers(0, 4, 33)
            legacy_err = legacy.partial_fit(batch_x, batch_y)
            assert bound.partial_fit(batch_x, batch_y) == legacy_err
        np.testing.assert_array_equal(bound.nearest_indices, legacy._nn_index)
        np.testing.assert_array_equal(bound.nearest_labels, legacy._nn_label)
        np.testing.assert_array_equal(bound.nearest_distances, legacy._nn_dist)

    def test_blocked_argmin_take_along_axis_path(self, rng):
        queries = rng.normal(size=(30, 5))
        corpus = rng.normal(size=(100, 5))
        idx, dist = blocked_argmin_distance(queries, corpus, block_size=7)
        dense = pairwise_distances(queries, corpus)
        np.testing.assert_array_equal(idx, np.argmin(dense, axis=1))
        np.testing.assert_array_equal(dist, dense.min(axis=1))


def _sq_tolerance(*row_sets) -> float:
    """Absolute float32 tolerance on SQUARED euclidean distances.

    The expanded formula ``|a|^2 + |b|^2 - 2ab`` cancels catastrophically
    when the distance is small relative to the operand magnitudes, so
    the achievable absolute accuracy of a squared distance scales with
    the largest squared norm involved, not with the distance itself.
    """
    eps = float(np.finfo(np.float32).eps)
    top = max(
        float(np.max(np.sum(rows * rows, axis=1), initial=0.0))
        for rows in row_sets
    )
    return 64.0 * eps * max(top, 1.0)


def _tie_tolerant_topk_check(x, queries, k, dist64, idx64, dist32, idx32):
    """Float32 top-k agrees with float64 modulo ties within tolerance.

    The squared distances must agree entrywise up to the float32
    cancellation bound, and each float32-chosen index must be as good
    (under the float64 metric) as the float64 choice at that rank —
    i.e. any index disagreement is a tie at float32 resolution, not a
    missed neighbor.
    """
    atol = _sq_tolerance(x, queries)
    np.testing.assert_allclose(
        dist32**2, dist64**2, rtol=F32_RTOL, atol=atol
    )
    dense = pairwise_distances(queries, x)
    chosen32 = np.take_along_axis(dense, idx32, axis=1)
    chosen64 = np.take_along_axis(dense, idx64, axis=1)
    np.testing.assert_allclose(
        chosen32**2, chosen64**2, rtol=F32_RTOL, atol=atol
    )


class TestFloat32Parity:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=12, max_value=120),
        dim=st.integers(min_value=1, max_value=10),
        k=st.integers(min_value=1, max_value=6),
        backend=st.sampled_from(BACKENDS),
    )
    @settings(max_examples=40, deadline=None)
    def test_backends_match_across_dtypes(self, seed, n, dim, k, backend):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, dim))
        y = rng.integers(0, 3, n)
        queries = rng.normal(size=(9, dim))
        kwargs = {"nlist": 4, "seed": 0} if backend == "ivf" else {}
        strict = make_index(backend, dtype=None, **kwargs).fit(x, y)
        fast = make_index(backend, dtype="float32", **kwargs).fit(x, y)
        dist64, idx64 = strict.kneighbors(queries, k=k)
        dist32, idx32 = fast.kneighbors(queries, k=k)
        assert dist32.dtype == np.float64  # outputs stay dtype-stable
        _tie_tolerant_topk_check(x, queries, k, dist64, idx64, dist32, idx32)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        metric=st.sampled_from(["euclidean", "cosine"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_progressive_errors_match_across_dtypes(self, seed, metric):
        rng = np.random.default_rng(seed)
        test_x = rng.normal(size=(30, 5))
        test_y = rng.integers(0, 3, 30)
        strict = ProgressiveOneNN(test_x, test_y, metric=metric, dtype=None)
        fast = ProgressiveOneNN(test_x, test_y, metric=metric, dtype="float32")
        for _ in range(4):
            batch_x = rng.normal(size=(25, 5))
            batch_y = rng.integers(0, 3, 25)
            err64 = strict.partial_fit(batch_x, batch_y)
            err32 = fast.partial_fit(batch_x, batch_y)
            # A label flip needs a distance tie at float32 resolution;
            # bound the error disagreement by a few test points.
            assert abs(err32 - err64) <= 3.0 / len(test_y)
            atol = _sq_tolerance(test_x, batch_x) if metric == "euclidean" else 1e-5
            np.testing.assert_allclose(
                fast.nearest_distances**2,
                strict.nearest_distances**2,
                rtol=F32_RTOL,
                atol=atol,
            )

    def test_loo_error_matches_across_dtypes(self, rng):
        x = rng.normal(size=(80, 6))
        y = rng.integers(0, 3, 80)
        strict = make_index("brute_force", dtype=None).fit(x, y)
        fast = make_index("brute_force", dtype="float32").fit(x, y)
        assert strict.loo_error(k=3) == fast.loo_error(k=3)

    def test_cosine_float32_matches_reference(self, rng):
        a = rng.normal(size=(20, 8))
        b = rng.normal(size=(15, 8))
        kernel = make_kernel("cosine", b, dtype="float32")
        dist, idx = kernel.topk(a, k=3)
        dense = cosine_distances(a, b)
        order = np.argsort(dense, axis=1)[:, :3]
        np.testing.assert_allclose(
            dist, np.take_along_axis(dense, order, axis=1),
            rtol=F32_RTOL, atol=F32_ATOL,
        )


class TestKernelCaching:
    """The bound-side cache must be rebuilt whenever the corpus changes."""

    def test_brute_force_refit_invalidates_kernel(self, rng):
        index = make_index("brute_force")
        index.fit(rng.normal(size=(20, 3)), rng.integers(0, 2, 20))
        first = index.kneighbors(rng.normal(size=(4, 3)), k=2)
        x2 = rng.normal(size=(30, 3))
        index.fit(x2, rng.integers(0, 2, 30))
        dist, idx = index.kneighbors(x2[:4], k=1)
        np.testing.assert_allclose(dist[:, 0], 0.0, atol=1e-9)
        np.testing.assert_array_equal(idx[:, 0], np.arange(4))
        del first

    def test_incremental_append_invalidates_kernel(self, rng):
        x = rng.normal(size=(25, 4))
        y = rng.integers(0, 2, 25)
        index = make_index("incremental").fit(x[:10], y[:10])
        index.kneighbors(x[:3], k=1)  # builds the kernel cache
        index.partial_fit(x[10:], y[10:])
        reference = make_index("brute_force").fit(x, y)
        d1, i1 = index.kneighbors(x, k=3)
        d2, i2 = reference.kneighbors(x, k=3)
        np.testing.assert_array_equal(i1, i2)
        # Not assert_array_equal: the two corpora are separate
        # allocations and BLAS results may differ in the last ulp
        # depending on buffer alignment.
        np.testing.assert_allclose(d1, d2, rtol=1e-12, atol=1e-12)

    def test_search_reuses_cached_kernel(self, rng):
        index = make_index("brute_force").fit(
            rng.normal(size=(20, 3)), rng.integers(0, 2, 20)
        )
        index.kneighbors(rng.normal(size=(2, 3)))
        kernel = index._kernel_cache
        assert kernel is not None
        index.kneighbors(rng.normal(size=(2, 3)))
        assert index._kernel_cache is kernel


class TestKernelExtend:
    def test_extend_matches_fresh_bind(self, rng):
        for metric in ("euclidean", "cosine"):
            for dtype in ("float32", "float64"):
                rows = rng.normal(size=(120, 9))
                base = make_kernel(metric, rows[:80], dtype=dtype)
                extended = base.extend(rows)
                fresh = make_kernel(metric, rows, dtype=dtype)
                queries = rng.normal(size=(15, 9))
                np.testing.assert_array_equal(
                    extended.topk(queries, 3)[0], fresh.topk(queries, 3)[0]
                )
                np.testing.assert_array_equal(
                    extended.topk(queries, 3)[1], fresh.topk(queries, 3)[1]
                )
                assert extended.num_bound == 120

    def test_extend_validates_prefix(self, rng):
        kernel = make_kernel("euclidean", rng.normal(size=(50, 6)))
        with pytest.raises(DataValidationError):
            kernel.extend(rng.normal(size=(30, 6)))  # shrunk
        with pytest.raises(DataValidationError):
            kernel.extend(rng.normal(size=(60, 7)))  # wrong dim
