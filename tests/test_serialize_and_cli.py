"""Unit tests for JSON serialization and the command-line interface."""

import json
import os

import pytest

from repro.cleaning.costs import CostModel
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.strategies import run_without_feasibility_study
from repro.cleaning.workflow import make_noisy_dataset
from repro.cli import build_parser, main
from repro.core.snoopy import Snoopy, SnoopyConfig
from repro.reporting.serialize import (
    report_to_dict,
    report_to_json,
    trace_to_dict,
    trace_to_json,
)


@pytest.fixture()
def report(dataset, catalog):
    return Snoopy(catalog, SnoopyConfig(seed=0)).run(dataset, 0.6)


class TestReportSerialization:
    def test_roundtrips_through_json(self, report):
        payload = json.loads(report_to_json(report))
        assert payload["dataset"] == report.dataset_name
        assert payload["signal"] in ("realistic", "unrealistic")
        assert payload["ber_estimate"] == pytest.approx(report.ber_estimate)

    def test_per_transform_entries(self, report):
        payload = report_to_dict(report)
        names = {entry["transform"] for entry in payload["per_transform"]}
        assert report.best_transform in names

    def test_curves_serialized_as_lists(self, report):
        payload = report_to_dict(report)
        curve = payload["curves"][report.best_transform]
        assert isinstance(curve["sizes"], list)
        assert len(curve["sizes"]) == len(curve["errors"])

    def test_extrapolation_optional(self, report):
        payload = report_to_dict(report)
        if report.extrapolation is not None:
            assert "extrapolation" in payload
            assert isinstance(payload["extrapolation"]["trustworthy"], bool)

    def test_no_numpy_types_leak(self, report):
        # json.dumps fails on numpy scalars; a full dump must succeed.
        assert json.dumps(report_to_dict(report))


class TestTraceSerialization:
    def test_trace_roundtrip(self, dataset, catalog):
        from repro.baselines.finetune import FineTuneBaseline

        noisy = make_noisy_dataset(dataset, 0.3, rng=0)
        trainer = FineTuneBaseline(
            catalog, learning_rates=(0.05,), num_epochs=5, seed=0
        )
        trace = run_without_feasibility_study(
            CleaningSession(noisy, rng=0), trainer, 0.62, 0.25,
            CostModel.for_regime("free"), max_steps=6,
        )
        payload = json.loads(trace_to_json(trace))
        assert payload["strategy"] == trace.strategy
        assert len(payload["points"]) == len(trace.points)
        # NaN values (clean actions) become JSON null.
        clean_points = [p for p in payload["points"] if p["action"] == "clean"]
        assert all(p["value"] is None for p in clean_points)

    def test_dict_totals(self, dataset, catalog):
        from repro.baselines.finetune import FineTuneBaseline

        noisy = make_noisy_dataset(dataset, 0.3, rng=0)
        trainer = FineTuneBaseline(
            catalog, learning_rates=(0.05,), num_epochs=5, seed=0
        )
        trace = run_without_feasibility_study(
            CleaningSession(noisy, rng=0), trainer, 0.62, 0.5,
            CostModel.for_regime("free"), max_steps=4,
        )
        payload = trace_to_dict(trace)
        assert payload["total_dollars"] == pytest.approx(trace.total_dollars)


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cifar10" in out
        assert "yelp" in out

    def test_catalog_command(self, capsys):
        assert main(["catalog", "cifar10", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "identity" in out
        assert "efficientnet_b7" in out

    def test_study_command_text(self, capsys):
        code = main([
            "study", "cifar10", "--target", "0.9",
            "--scale", "0.005", "--max-embeddings", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Feasibility study" in out
        assert "signal" in out

    def test_study_command_json(self, capsys):
        code = main([
            "study", "cifar10", "--target", "0.9", "--json",
            "--scale", "0.005", "--max-embeddings", "3",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["target_accuracy"] == 0.9

    def test_study_with_noise_flips_signal(self, capsys):
        main([
            "study", "cifar10", "--target", "0.99", "--noise", "0.4",
            "--scale", "0.005", "--max-embeddings", "3",
        ])
        out = capsys.readouterr().out
        assert "UNREALISTIC" in out

    def test_study_invalid_target_errors(self, capsys):
        assert main([
            "study", "cifar10", "--target", "1.5", "--scale", "0.005",
        ]) == 2

    def test_feebee_command(self, capsys):
        code = main([
            "feebee", "cifar10", "--scale", "0.005", "--estimator", "1nn",
        ])
        assert code == 0
        assert "slope fidelity" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "imagenet", "--target", "0.9"])

    def test_clean_loop_requires_noise(self, capsys):
        assert main([
            "clean-loop", "cifar10", "--target", "0.9", "--noise", "0",
            "--scale", "0.005",
        ]) == 2

    def test_clean_loop_command(self, capsys):
        code = main([
            "clean-loop", "cifar10", "--target", "0.7", "--noise", "0.4",
            "--scale", "0.005", "--regime", "free", "--step", "0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cleaning loop" in out
        assert "expensive run(s)" in out

    def test_study_with_store_dir_warm_starts(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "study", "cifar10", "--target", "0.9",
            "--scale", "0.005", "--max-embeddings", "3",
            "--store-dir", store,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run reads the warm spill tier
        second = capsys.readouterr().out
        # Identical study, identical report (and block files exist).
        assert first.splitlines()[-4:] == second.splitlines()[-4:]
        assert any(
            name.endswith(".blk") for name in os.listdir(store)
        )

    def test_store_stats_and_clear(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main([
            "study", "cifar10", "--target", "0.9",
            "--scale", "0.005", "--max-embeddings", "3",
            "--store-dir", store, "--store-hot-mb", "64",
            "--store-spill-mb", "256",
        ])
        capsys.readouterr()
        assert main(["store", "stats", "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "block file(s)" in out
        assert "float32" in out
        assert main(["store", "clear", "--store-dir", store]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", "stats", "--store-dir", store]) == 0
        assert "empty" in capsys.readouterr().out

    def test_store_stats_empty_dir(self, tmp_path, capsys):
        assert main(
            ["store", "stats", "--store-dir", str(tmp_path)]
        ) == 0
        assert "empty" in capsys.readouterr().out

    def test_store_path_honors_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert main(["store", "path"]) == 0
        assert capsys.readouterr().out.strip() == str(tmp_path)


@pytest.mark.ann
class TestCLIAnnBackend:
    def test_study_with_ivf_pq_backend(self, capsys):
        code = main([
            "study", "cifar10", "--target", "0.9",
            "--scale", "0.005", "--max-embeddings", "3",
            "--knn-backend", "ivf_pq", "--pq-m", "4", "--pq-nbits", "4",
            "--pq-packed", "--knn-shards", "2",
            "--nprobe", "4", "--rerank", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Feasibility study" in out

    def test_ann_study_tracks_exact_estimate(self, capsys):
        """The compressed backend stays within the convergence tolerance."""
        args = [
            "study", "cifar10", "--target", "0.9", "--json",
            "--scale", "0.005", "--max-embeddings", "3",
        ]
        assert main(args) == 0
        exact = json.loads(capsys.readouterr().out)
        assert main(
            args + ["--knn-backend", "ivf_pq", "--rerank", "32"]
        ) == 0
        approx = json.loads(capsys.readouterr().out)
        assert abs(exact["ber_estimate"] - approx["ber_estimate"]) <= 0.02

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["study", "cifar10", "--target", "0.9",
                 "--knn-backend", "bogus"]
            )


class TestCompareBaselinesUpdate:
    def test_update_runs_tracked_benchmarks(self, capsys):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "compare_baselines",
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "compare_baselines.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        calls = []
        assert module.update_baselines(
            runner=lambda cmd: calls.append(cmd) or 0
        ) == 0
        (command,) = calls
        assert "pytest" in command
        for filename, *_ in module.TRACKED:
            assert module.SOURCES[filename] in command
        out = capsys.readouterr().out
        assert "pq_scaling.txt" in out
        # A failing benchmark run propagates its exit code.
        assert module.update_baselines(runner=lambda cmd: 3) == 3

    def test_stray_ann_knob_is_a_clean_cli_error(self, capsys):
        code = main([
            "study", "cifar10", "--target", "0.9",
            "--scale", "0.005", "--max-embeddings", "3", "--pq-m", "4",
        ])
        assert code == 2
        assert "no effect" in capsys.readouterr().err
