"""Property-based tests (hypothesis) for core invariants.

These check the algebraic laws the paper's machinery rests on — bound
orderings, noise-evolution identities, stochasticity of transition
matrices, streaming/batch equivalence — over generated inputs rather
than hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.guidance import fit_log_linear
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.knn.brute_force import BruteForceKNN
from repro.knn.incremental import NeighborCache
from repro.knn.metrics import cosine_distances, euclidean_distances
from repro.knn.progressive import ProgressiveOneNN
from repro.noise.theory import (
    ber_after_pairwise_noise,
    ber_after_uniform_noise,
    ber_under_transition,
)
from repro.noise.transition import TransitionMatrix

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestCoverHartProperties:
    @given(
        error=st.floats(min_value=0.0, max_value=1.0),
        num_classes=st.integers(min_value=2, max_value=1000),
    )
    def test_bound_between_half_error_and_error(self, error, num_classes):
        bound = cover_hart_lower_bound(error, num_classes)
        assert error / 2 - 1e-12 <= bound <= error + 1e-12

    @given(
        e1=st.floats(min_value=0.0, max_value=1.0),
        e2=st.floats(min_value=0.0, max_value=1.0),
        num_classes=st.integers(min_value=2, max_value=50),
    )
    def test_monotone(self, e1, e2, num_classes):
        lo, hi = sorted((e1, e2))
        assert cover_hart_lower_bound(lo, num_classes) <= (
            cover_hart_lower_bound(hi, num_classes) + 1e-12
        )

    @given(
        error=st.floats(min_value=0.0, max_value=0.99),
        c1=st.integers(min_value=2, max_value=20),
        c2=st.integers(min_value=2, max_value=20),
    )
    def test_bound_decreasing_in_class_count(self, error, c1, c2):
        # More classes -> larger radicand -> smaller bound.
        lo_c, hi_c = sorted((c1, c2))
        assert cover_hart_lower_bound(error, hi_c) <= (
            cover_hart_lower_bound(error, lo_c) + 1e-12
        )


class TestNoiseTheoryProperties:
    @given(
        ber=st.floats(min_value=0.0, max_value=0.5),
        rho=st.floats(min_value=0.0, max_value=1.0),
        num_classes=st.integers(min_value=2, max_value=100),
    )
    def test_uniform_noise_keeps_ber_in_range(self, ber, rho, num_classes):
        ber = min(ber, 1 - 1 / num_classes)
        noisy = ber_after_uniform_noise(ber, rho, num_classes)
        assert ber - 1e-12 <= noisy <= 1 - 1 / num_classes + 1e-12

    @given(
        ber=st.floats(min_value=0.0, max_value=0.5),
        rho1=st.floats(min_value=0.0, max_value=1.0),
        rho2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_uniform_noise_monotone_in_rho(self, ber, rho1, rho2):
        lo, hi = sorted((rho1, rho2))
        assert ber_after_uniform_noise(ber, lo, 4) <= (
            ber_after_uniform_noise(ber, hi, 4) + 1e-12
        )

    @given(
        ber=st.floats(min_value=0.0, max_value=0.5),
        rho=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_pairwise_noise_bounded_by_half(self, ber, rho):
        # Within the argmax-preserving regime (rho <= 1/2) the noisy BER
        # of pairwise flipping never exceeds chance level 1/2.
        assert ber_after_pairwise_noise(ber, rho) <= 0.5 + 1e-12

    @given(
        rho=st.floats(min_value=0.0, max_value=0.8),
        num_classes=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_theorem_matches_lemma_for_uniform_matrix(
        self, rho, num_classes, seed
    ):
        rng = np.random.default_rng(seed)
        posteriors = rng.dirichlet(np.ones(num_classes), size=200)
        clean = float(np.mean(1 - posteriors.max(axis=1)))
        t = TransitionMatrix.uniform(rho, num_classes)
        assert ber_under_transition(posteriors, t) == pytest.approx(
            ber_after_uniform_noise(clean, rho, num_classes), abs=1e-9
        )


class TestTransitionMatrixProperties:
    @given(
        num_classes=st.integers(min_value=2, max_value=20),
        mean_flip=st.floats(min_value=0.0, max_value=0.45),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_construction_always_valid(self, num_classes, mean_flip, seed):
        t = TransitionMatrix.class_dependent_random(
            num_classes, mean_flip, flip_spread=mean_flip / 2, rng=seed
        )
        np.testing.assert_allclose(t.matrix.sum(axis=0), 1.0, atol=1e-8)
        assert t.preserves_argmax()
        assert 0.0 <= t.noise_level() <= 0.5


class TestMetricProperties:
    @given(
        data=arrays(
            np.float64, (8, 3),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )
    def test_euclidean_triangle_inequality(self, data):
        # The Gram-matrix formula carries *relative* float error (the
        # standard trade-off of the fast ||a||^2+||b||^2-2ab path), so
        # the triangle inequality is checked with a relative tolerance.
        dist = euclidean_distances(data, data)
        for i in range(len(data)):
            for j in range(len(data)):
                for k in range(len(data)):
                    slack = 1e-6 * (1.0 + dist[i, j])
                    assert dist[i, j] <= dist[i, k] + dist[k, j] + slack

    @given(
        data=arrays(
            np.float64, (6, 4),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    def test_cosine_symmetry(self, data):
        dist = cosine_distances(data, data)
        np.testing.assert_allclose(dist, dist.T, atol=1e-10)


class TestStreamingEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        split=st.integers(min_value=1, max_value=79),
    )
    @settings(max_examples=25, deadline=None)
    def test_progressive_matches_batch_for_any_split(self, seed, split):
        rng = np.random.default_rng(seed)
        train_x = rng.normal(size=(80, 3))
        train_y = rng.integers(0, 3, 80)
        test_x = rng.normal(size=(20, 3))
        test_y = rng.integers(0, 3, 20)
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x[:split], train_y[:split])
        evaluator.partial_fit(train_x[split:], train_y[split:])
        expected = BruteForceKNN().fit(train_x, train_y).error(test_x, test_y)
        assert evaluator.error() == pytest.approx(expected)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_incremental_cache_equals_recompute_after_random_cleaning(
        self, seed
    ):
        rng = np.random.default_rng(seed)
        train_x = rng.normal(size=(60, 3))
        train_y = rng.integers(0, 3, 60)
        test_x = rng.normal(size=(15, 3))
        test_y = rng.integers(0, 3, 15)
        _, idx = BruteForceKNN().fit(train_x, train_y).kneighbors(test_x, k=1)
        cache = NeighborCache(idx[:, 0], train_y, test_y)
        flip = rng.choice(60, size=10, replace=False)
        new_labels = rng.integers(0, 3, 10)
        cache.update_train_labels(flip, new_labels)
        modified = train_y.copy()
        modified[flip] = new_labels
        expected = BruteForceKNN().fit(train_x, modified).error(test_x, test_y)
        assert cache.error() == pytest.approx(expected)


class TestLogLinearFitProperties:
    @given(
        alpha=st.floats(min_value=0.05, max_value=2.0),
        intercept=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_recovery_of_power_laws(self, alpha, intercept):
        sizes = np.array([50.0, 100, 200, 400, 800])
        errors = np.exp(intercept) * sizes ** (-alpha)
        fit = fit_log_linear(sizes, errors)
        assert fit.alpha == pytest.approx(alpha, abs=1e-8)
        assert fit.intercept == pytest.approx(intercept, abs=1e-8)
