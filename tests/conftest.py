"""Shared fixtures: small calibrated tasks, catalogs and noisy variants.

Heavy fixtures are session-scoped; tests must not mutate them (derive
copies via ``Dataset.with_noisy_labels`` / ``subsample`` instead).
"""

from __future__ import annotations

import gc
import glob
import os

import numpy as np
import pytest

from repro.datasets.synthetic import GaussianMixtureTask
from repro.transforms.base import FittedCatalog
from repro.transforms.linear import IdentityTransform, PCATransform
from repro.transforms.pretrained import SimulatedEmbedding


@pytest.fixture(scope="session")
def task():
    """A small 4-class mixture task with known BER (~5%)."""
    task = GaussianMixtureTask(
        num_classes=4, latent_dim=4, class_sep=2.2, clutter_dim=12, seed=7
    )
    return task


@pytest.fixture(scope="session")
def dataset(task):
    """600 train / 200 test draw from the session task."""
    return task.sample_dataset(600, 200, name="unit_task", rng=0)


@pytest.fixture(scope="session")
def hard_task():
    """A deliberately hard binary task (BER ~ 0.25)."""
    return GaussianMixtureTask(
        num_classes=2, latent_dim=3, class_sep=0.9, clutter_dim=8, seed=11
    )


@pytest.fixture(scope="session")
def hard_dataset(hard_task):
    return hard_task.sample_dataset(500, 200, name="hard_task", rng=1)


@pytest.fixture()
def catalog(dataset):
    """A tiny fitted catalog: identity + PCA + 3 simulated embeddings."""
    projection = dataset.oracle.latent_projection
    transforms = [
        IdentityTransform(dataset.raw_dim),
        PCATransform(8),
        SimulatedEmbedding(
            "emb_low", 16, fidelity=0.3, cost_per_sample=1e-4,
            latent_projection=projection, seed=1,
        ),
        SimulatedEmbedding(
            "emb_mid", 16, fidelity=0.6, cost_per_sample=3e-4,
            latent_projection=projection, seed=2,
        ),
        SimulatedEmbedding(
            "emb_high", 16, fidelity=0.92, cost_per_sample=1e-3,
            latent_projection=projection, seed=3,
        ),
    ]
    return FittedCatalog(transforms).fit(dataset.train_x)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test (order-independent)."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_leaks():
    """Fail the session if the suite leaks store segments or spill dirs.

    Every ``repro-*`` entry in /dev/shm and every ``repro-store-*``
    ephemeral spill dir in $TMPDIR must be released by the owning
    store's close()/finalizer — a survivor here means a lifecycle bug
    (segments would pile up run over run on a real host).
    """
    yield
    gc.collect()  # run any pending store finalizers first
    leaked_shm = (
        [n for n in os.listdir("/dev/shm") if n.startswith("repro-")]
        if os.path.isdir("/dev/shm")
        else []
    )
    tmp_root = os.environ.get("TMPDIR", "/tmp").rstrip("/")
    leaked_dirs = glob.glob(f"{tmp_root}/repro-store-*")
    assert not leaked_shm, f"leaked /dev/shm segments: {leaked_shm}"
    assert not leaked_dirs, f"leaked ephemeral spill dirs: {leaked_dirs}"


@pytest.fixture()
def shard_leak_guard():
    """Per-test guard against orphaned list-shard (or any store) segments.

    Function-scoped sibling of the session guard above, for the
    sharded-scan tests: snapshots /dev/shm before the test and asserts
    afterwards — on success *and* exception paths alike, since fixture
    teardown always runs — that no new ``repro-*`` segment survived
    (published shard payloads must be freed by ``release_shards``/
    ``unpublish`` or the index finalizer).
    """

    def snapshot() -> set:
        if not os.path.isdir("/dev/shm"):
            return set()
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro-")}

    before = snapshot()
    yield snapshot
    gc.collect()  # run index/store finalizers before judging
    leaked = snapshot() - before
    assert not leaked, f"orphaned list-shard segments: {sorted(leaked)}"
