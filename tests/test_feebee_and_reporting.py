"""Unit tests for the FeeBee evaluation protocol and the reporting layer."""

import numpy as np
import pytest

from repro.estimators.cover_hart import OneNNEstimator
from repro.exceptions import DataValidationError
from repro.feebee.evaluation import evaluate_estimator_over_noise
from repro.reporting.series import FigureData, Series
from repro.reporting.tables import render_table
from repro.transforms.pretrained import SimulatedEmbedding


class TestFeeBee:
    def test_estimates_track_noise_evolution(self, dataset):
        embedding = SimulatedEmbedding(
            "probe", 16, 0.9, 1e-4, dataset.oracle.latent_projection, seed=0
        )
        evaluation = evaluate_estimator_over_noise(
            OneNNEstimator(), dataset,
            rhos=(0.0, 0.15, 0.3, 0.45), transform=embedding, rng=0,
        )
        assert evaluation.slope_fidelity() > 0.9
        # True BERs follow Lemma 2.1 exactly.
        diffs = np.diff(evaluation.true_bers)
        assert np.all(diffs > 0)

    def test_estimates_monotone_in_noise(self, dataset):
        evaluation = evaluate_estimator_over_noise(
            OneNNEstimator(), dataset, rhos=(0.0, 0.3, 0.6), rng=0
        )
        assert evaluation.estimates[0] < evaluation.estimates[-1]

    def test_deviation_metrics(self, dataset):
        evaluation = evaluate_estimator_over_noise(
            OneNNEstimator(), dataset, rhos=(0.0, 0.2, 0.4), rng=0
        )
        assert evaluation.mean_absolute_deviation() >= 0
        assert (
            evaluation.root_mean_squared_deviation()
            >= evaluation.mean_absolute_deviation() - 1e-12
        )
        assert 0.0 <= evaluation.underestimation_rate() <= 1.0

    def test_requires_oracle(self, dataset):
        from dataclasses import replace

        with pytest.raises(DataValidationError, match="oracle"):
            evaluate_estimator_over_noise(
                OneNNEstimator(), replace(dataset, oracle=None)
            )

    def test_slope_fidelity_needs_three_points(self, dataset):
        evaluation = evaluate_estimator_over_noise(
            OneNNEstimator(), dataset, rhos=(0.0, 0.4), rng=0
        )
        with pytest.raises(DataValidationError):
            evaluation.slope_fidelity()


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table(["name", "value"], [["a", 1.5], ["b", 0.25]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert lines[1].startswith("---")
        assert "a" in lines[2]

    def test_title(self):
        text = render_table(["x"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.000012], [12345.6], [float("nan")]])
        assert "1.2e-05" in text
        assert "nan" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            render_table(["a", "b"], [["only one"]])

    def test_empty_headers_raise(self):
        with pytest.raises(DataValidationError):
            render_table([], [])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestSeries:
    def test_length_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            Series("s", [1, 2], [1.0])

    def test_final_y(self):
        assert Series("s", [1, 2], [0.5, 0.25]).final_y == 0.25

    def test_figure_add_and_get(self):
        figure = FigureData("fig4", "test", "time", "error")
        figure.add("snoopy", [1, 2], [0.3, 0.2])
        assert figure.get("snoopy").final_y == pytest.approx(0.2)
        assert figure.labels == ["snoopy"]
        with pytest.raises(KeyError):
            figure.get("missing")

    def test_to_text_contains_everything(self):
        figure = FigureData("fig9", "cost curves", "dollars", "accuracy")
        figure.add("fs_snoopy", np.arange(30), np.linspace(0.5, 0.9, 30))
        figure.notes.append("shape matches paper")
        text = figure.to_text(max_points=5)
        assert "fig9" in text
        assert "fs_snoopy" in text
        assert "note: shape matches paper" in text
        # max_points respected: 5 rows + header + rule + title + note.
        assert len(text.splitlines()) == 9
