"""Unit + property tests for product quantization and the IVF-PQ backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError, UnknownBackendError
from repro.knn.base import available_backends, make_index
from repro.knn.brute_force import BruteForceKNN
from repro.knn.kernels import make_kernel
from repro.knn.pq import IVFPQIndex, ProductQuantizer
from repro.knn.progressive import ProgressiveOneNN

pytestmark = pytest.mark.ann


@pytest.fixture()
def blobs(rng):
    centers = rng.normal(scale=8.0, size=(10, 16))
    assignment = rng.integers(0, 10, size=900)
    x = centers[assignment] + rng.normal(size=(900, 16))
    y = assignment % 4
    queries = centers[rng.integers(0, 10, size=120)] + rng.normal(
        size=(120, 16)
    )
    return x, y, queries


class TestProductQuantizer:
    def test_codes_shape_and_dtype(self, blobs):
        x, *_ = blobs
        pq = ProductQuantizer(m=4, nbits=8, seed=0).fit(x)
        codes = pq.encode(x)
        assert codes.shape == (len(x), 4)
        assert codes.dtype == np.uint8
        assert codes.max() < pq.ksub

    def test_decode_reduces_quantization_error_with_nbits(self, blobs):
        x, *_ = blobs
        errors = []
        for nbits in (4, 8):
            pq = ProductQuantizer(m=4, nbits=nbits, seed=0).fit(x)
            recon = pq.decode(pq.encode(x))
            errors.append(float(np.mean((x - recon) ** 2)))
        assert errors[0] > errors[1]

    def test_adc_matches_decoded_distances(self, blobs):
        x, _, queries = blobs
        pq = ProductQuantizer(m=4, nbits=8, seed=0).fit(x)
        codes = pq.encode(x)
        tables = pq.lookup_tables(queries[:7])
        assert tables.shape == (7, pq.m, pq.ksub)
        adc = pq.adc_distances(tables, codes)
        recon = pq.decode(codes)
        truth = (
            (queries[:7, None, :].astype(np.float64) - recon[None]) ** 2
        ).sum(axis=2)
        np.testing.assert_allclose(adc, truth, rtol=1e-4, atol=1e-4)

    def test_m_clamped_to_divisor(self, rng):
        x = rng.normal(size=(50, 15))  # 15 not divisible by 4
        pq = ProductQuantizer(m=4, nbits=4, seed=0).fit(x)
        assert pq.m == 3  # largest divisor of 15 <= 4
        assert pq.encode(x).shape == (50, 3)

    def test_ksub_clamped_to_corpus(self, rng):
        x = rng.normal(size=(9, 8))
        pq = ProductQuantizer(m=2, nbits=8, seed=0).fit(x)
        assert pq.ksub == 9

    def test_validation(self, rng):
        with pytest.raises(DataValidationError):
            ProductQuantizer(m=0)
        with pytest.raises(DataValidationError):
            ProductQuantizer(nbits=9)
        with pytest.raises(DataValidationError, match="nbits must be 4"):
            ProductQuantizer(nbits=6)  # only 4 (packable) and 8 exist
        with pytest.raises(DataValidationError):
            ProductQuantizer().encode(rng.normal(size=(3, 8)))
        pq = ProductQuantizer(m=2, nbits=4, seed=0).fit(
            rng.normal(size=(20, 8))
        )
        with pytest.raises(DataValidationError):
            pq.encode(rng.normal(size=(3, 6)))

    def test_deterministic_with_seed(self, rng):
        x = rng.normal(size=(200, 8))
        a = ProductQuantizer(m=2, nbits=4, seed=3).fit(x)
        b = ProductQuantizer(m=2, nbits=4, seed=3).fit(x)
        np.testing.assert_array_equal(a.codebooks, b.codebooks)
        np.testing.assert_array_equal(a.encode(x), b.encode(x))


class TestIVFPQIndex:
    def test_high_recall_with_rerank(self, blobs):
        x, y, queries = blobs
        _, exact_idx = BruteForceKNN().fit(x, y).kneighbors(queries, k=1)
        index = IVFPQIndex(
            nlist=8, nprobe=8, pq_m=4, pq_nbits=8, rerank=32, seed=0
        ).fit(x, y)
        assert index.recall_against_exact(queries, exact_idx[:, 0]) >= 0.95

    def test_rerank_distances_bit_identical_to_kernel(self, blobs):
        """The re-rank stage reports DistanceKernel-exact distances."""
        x, y, queries = blobs
        for dtype in (None, "float32", "float64"):
            index = IVFPQIndex(
                nlist=8, nprobe=4, pq_m=4, rerank=16, seed=0, dtype=dtype
            ).fit(x, y)
            dist, idx = index.kneighbors(queries, k=3)
            kernel = make_kernel("euclidean", x, dtype=dtype)
            expected = kernel.pair_distances(queries, idx)
            np.testing.assert_array_equal(dist, expected)

    def test_rerank_zero_reports_adc_estimates(self, blobs):
        x, y, queries = blobs
        index = IVFPQIndex(
            nlist=4, nprobe=4, pq_m=4, rerank=0, seed=0
        ).fit(x, y)
        dist, idx = index.kneighbors(queries, k=1)
        assert dist.shape == (len(queries), 1)
        assert np.all(dist >= 0) and np.all(idx >= 0)

    def test_partial_fit_appends_and_refreshes(self, blobs):
        x, y, queries = blobs
        whole = IVFPQIndex(
            nlist=8, nprobe=8, pq_m=4, rerank=16, seed=0
        ).fit(x, y)
        grown = IVFPQIndex(
            nlist=8, nprobe=8, pq_m=4, rerank=16, seed=0,
            refresh_factor=2.0,
        ).fit(x[:300], y[:300])
        for start in range(300, len(x), 200):
            grown.partial_fit(x[start : start + 200], y[start : start + 200])
        assert grown.num_fitted == len(x)
        assert grown.num_refreshes >= 1
        _, exact_idx = BruteForceKNN().fit(x, y).kneighbors(queries, k=1)
        assert grown.recall_against_exact(queries, exact_idx[:, 0]) >= 0.9
        # Labels and raw rows survive the appends in order.
        np.testing.assert_array_equal(grown._y, y)
        np.testing.assert_allclose(grown._x, x)
        del whole

    def test_refresh_disabled(self, blobs):
        x, y, _ = blobs
        index = IVFPQIndex(
            nlist=4, nprobe=2, pq_m=4, seed=0, refresh_factor=None
        ).fit(x[:100], y[:100])
        index.partial_fit(x[100:800], y[100:800])
        assert index.num_refreshes == 0
        assert index.num_fitted == 800

    def test_predict_and_error(self, blobs):
        x, y, queries = blobs
        index = IVFPQIndex(
            nlist=8, nprobe=8, pq_m=4, rerank=32, seed=0
        ).fit(x, y)
        exact = BruteForceKNN().fit(x, y)
        q_labels = exact.predict(queries, k=1)
        assert np.mean(index.predict(queries, k=1) == q_labels) >= 0.95
        assert 0.0 <= index.error(queries, q_labels, k=1) <= 0.05

    def test_memory_stats_report_compression(self, blobs):
        x, y, _ = blobs
        index = IVFPQIndex(nlist=4, pq_m=4, seed=0).fit(x, y)
        stats = index.memory_stats()
        assert stats["code_bytes"] == len(x) * 4
        assert stats["compression_ratio"] > 1.0
        assert stats["compressed_bytes"] < stats["raw_bytes"]

    def test_pq_dim_projection(self, rng):
        # Low-rank data: a pq_dim cut above the true rank keeps recall.
        lift = rng.normal(size=(4, 64))
        z = rng.normal(scale=4.0, size=(600, 4))
        x = (z @ lift + 0.01 * rng.normal(size=(600, 64)))
        y = rng.integers(0, 3, size=600)
        queries = (
            rng.normal(scale=4.0, size=(80, 4)) @ lift
            + 0.01 * rng.normal(size=(80, 64))
        )
        _, exact_idx = BruteForceKNN().fit(x, y).kneighbors(queries, k=1)
        index = IVFPQIndex(
            nlist=4, nprobe=4, pq_m=4, pq_dim=8, rerank=16, seed=0
        ).fit(x, y)
        assert index._projection.shape == (64, 8)
        assert index.recall_against_exact(queries, exact_idx[:, 0]) >= 0.95

    def test_validation(self, rng):
        with pytest.raises(DataValidationError):
            IVFPQIndex(nlist=0)
        with pytest.raises(DataValidationError):
            IVFPQIndex(rerank=-1)
        with pytest.raises(DataValidationError):
            IVFPQIndex(pq_dim=0)
        index = IVFPQIndex(nlist=2, pq_m=2, seed=0)
        with pytest.raises(DataValidationError):
            index.kneighbors(rng.normal(size=(3, 8)))
        index.fit(rng.normal(size=(20, 8)), np.zeros(20, dtype=int))
        with pytest.raises(DataValidationError):
            index.kneighbors(rng.normal(size=(3, 8)), k=21)
        with pytest.raises(DataValidationError):
            index.partial_fit(rng.normal(size=(3, 6)), np.zeros(3, dtype=int))


class TestBackendRegistry:
    def test_ivf_pq_registered(self):
        assert "ivf_pq" in available_backends()
        index = make_index("ivf_pq", pq_m=2, nlist=2, seed=0)
        assert isinstance(index, IVFPQIndex)

    def test_unknown_backend_error_names_backends(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            make_index("annoy")
        message = str(excinfo.value)
        assert "annoy" in message
        for name in available_backends():
            assert name in message
        # Back-compat: still catchable as a validation error.
        assert isinstance(excinfo.value, DataValidationError)

    def test_ivf_pq_is_euclidean_only(self):
        with pytest.raises(DataValidationError, match="euclidean"):
            make_index("ivf_pq", metric="cosine")


class TestProgressiveIntegration:
    def test_persistent_append_matches_exact_curve(self, blobs):
        x, y, queries = blobs
        test_y = (np.arange(len(queries)) % 4).astype(np.int64)
        exact = ProgressiveOneNN(queries, test_y)
        approx = ProgressiveOneNN(
            queries, test_y, knn_backend="ivf_pq",
            knn_backend_options=dict(
                nlist=8, nprobe=8, pq_m=4, rerank=32, seed=0
            ),
        )
        assert approx._index is not None  # persistent, not per-batch
        gaps = []
        for start in range(0, len(x), 150):
            e1 = exact.partial_fit(x[start : start + 150], y[start : start + 150])
            e2 = approx.partial_fit(x[start : start + 150], y[start : start + 150])
            gaps.append(abs(e1 - e2))
        assert approx._index.num_fitted == len(x)
        assert max(gaps) <= 0.05
        assert abs(exact.error() - approx.error()) <= 0.02

    def test_relabel_train_survives_later_batches(self, blobs):
        """Corrections must not be resurrected by full-corpus re-queries."""
        x, y, queries = blobs
        test_y = (np.arange(len(queries)) % 4).astype(np.int64)
        ev = ProgressiveOneNN(
            queries, test_y, knn_backend="ivf_pq",
            knn_backend_options=dict(
                nlist=8, nprobe=8, pq_m=4, rerank=32, seed=0
            ),
        )
        half = len(x) // 2
        ev.partial_fit(x[:half], y[:half])
        # Correct every first-half train label to class 3.
        corrections = np.arange(half)
        ev.relabel_train(corrections, np.full(half, 3))
        ev.partial_fit(x[half:], y[half:])
        # Test points whose neighbor is still in the first half must
        # see the corrected label, not the stale one.
        first_half = ev.nearest_indices < half
        assert first_half.any()
        assert np.all(ev.nearest_labels[first_half] == 3)

    def test_rerank_zero_state_tracks_current_index(self, blobs):
        """With ADC-estimate distances the state is replaced, not
        min-merged: after refreshes it must equal the index's current
        corpus-wide answer (no stale pinned neighbors)."""
        x, y, queries = blobs
        test_y = (np.arange(len(queries)) % 4).astype(np.int64)
        ev = ProgressiveOneNN(
            queries, test_y, knn_backend="ivf_pq",
            knn_backend_options=dict(
                nlist=8, nprobe=8, pq_m=4, rerank=0, seed=0,
                refresh_factor=2.0,
            ),
        )
        for start in range(0, len(x), 120):
            ev.partial_fit(x[start : start + 120], y[start : start + 120])
        assert ev._index.num_refreshes >= 1
        _, idx = ev._index.kneighbors(queries, k=1)
        np.testing.assert_array_equal(ev.nearest_indices, idx[:, 0])

    def test_unknown_options_fail_fast(self, blobs):
        x, y, queries = blobs
        with pytest.raises(TypeError):
            ProgressiveOneNN(
                queries, np.zeros(len(queries), dtype=int),
                knn_backend="ivf_pq",
                knn_backend_options={"bogus_knob": 3},
            )


@settings(max_examples=8, deadline=None)
@given(
    dtype=st.sampled_from(["float32", "float64"]),
    nprobe=st.integers(min_value=4, max_value=8),
    seed=st.integers(min_value=0, max_value=5),
)
def test_property_recall_vs_exact_across_dtypes(dtype, nprobe, seed):
    """IVF-PQ with full probing + rerank recovers >= 0.95 of exact 1NN."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(8, 12))
    assignment = rng.integers(0, 8, size=500)
    x = centers[assignment] + rng.normal(size=(500, 12))
    y = assignment % 3
    queries = centers[rng.integers(0, 8, size=60)] + rng.normal(size=(60, 12))
    _, exact_idx = BruteForceKNN(dtype=dtype).fit(x, y).kneighbors(
        queries, k=1
    )
    index = IVFPQIndex(
        nlist=8, nprobe=nprobe, pq_m=4, pq_nbits=8, rerank=32, seed=seed,
        dtype=dtype,
    ).fit(x, y)
    assert index.recall_against_exact(queries, exact_idx[:, 0]) >= 0.95


@settings(max_examples=8, deadline=None)
@given(
    dtype=st.sampled_from(["float32", "float64"]),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=5),
)
def test_property_rerank_bit_identical_to_kernel(dtype, k, seed):
    """Surviving candidates carry kernel-exact distances, any dtype/k."""
    rng = np.random.default_rng(100 + seed)
    x = rng.normal(size=(300, 10))
    y = rng.integers(0, 3, size=300)
    queries = rng.normal(size=(40, 10))
    index = IVFPQIndex(
        nlist=4, nprobe=2, pq_m=5, rerank=16, seed=seed, dtype=dtype
    ).fit(x, y)
    dist, idx = index.kneighbors(queries, k=k)
    kernel = make_kernel("euclidean", x, dtype=dtype)
    np.testing.assert_array_equal(dist, kernel.pair_distances(queries, idx))
    # And the distances are correct (not only internally consistent).
    brute = ((queries[:, None, :] - x[None]) ** 2).sum(axis=2)
    chosen = np.take_along_axis(brute, idx, axis=1)
    np.testing.assert_allclose(dist**2, chosen, rtol=1e-4, atol=1e-5)
