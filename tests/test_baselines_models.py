"""Unit tests for the from-scratch models (softmax regression, MLP, zoo)."""

import numpy as np
import pytest

from repro.baselines.logistic_regression import SoftmaxRegression, _one_hot, _softmax
from repro.baselines.mlp import TwoLayerMLP
from repro.baselines.model_zoo import (
    GaussianNaiveBayes,
    KNNClassifierModel,
    NearestCentroidClassifier,
    RidgeClassifier,
)
from repro.exceptions import DataValidationError


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(8)
    centers = np.array([[0.0, 0.0, 0.0], [4.0, 4.0, 0.0], [0.0, 4.0, 4.0]])
    y = rng.integers(0, 3, 450)
    x = centers[y] + rng.normal(size=(450, 3))
    return x[:300], y[:300], x[300:], y[300:]


ALL_MODELS = [
    SoftmaxRegression(learning_rate=0.1, num_epochs=15, seed=0),
    TwoLayerMLP(hidden_units=16, num_epochs=15, seed=0),
    NearestCentroidClassifier(),
    GaussianNaiveBayes(),
    RidgeClassifier(alpha=1.0),
    KNNClassifierModel(k=5),
]


class TestCommonProtocol:
    @pytest.mark.parametrize(
        "model", ALL_MODELS, ids=lambda m: type(m).__name__
    )
    def test_learns_separated_blobs(self, model, blobs):
        train_x, train_y, test_x, test_y = blobs
        model.fit(train_x, train_y, 3)
        assert model.error(test_x, test_y) < 0.08

    @pytest.mark.parametrize(
        "model", ALL_MODELS, ids=lambda m: type(m).__name__
    )
    def test_predictions_in_label_range(self, model, blobs):
        train_x, train_y, test_x, _ = blobs
        model.fit(train_x, train_y, 3)
        predictions = model.predict(test_x)
        assert set(np.unique(predictions)) <= {0, 1, 2}


class TestSoftmaxRegression:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = _softmax(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_softmax_shift_invariant(self, rng):
        logits = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            _softmax(logits), _softmax(logits + 100.0), atol=1e-12
        )

    def test_one_hot(self):
        encoded = _one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(DataValidationError):
            SoftmaxRegression().predict(rng.normal(size=(3, 2)))

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(DataValidationError):
            SoftmaxRegression(learning_rate=0.0)
        with pytest.raises(DataValidationError):
            SoftmaxRegression(l2=-1.0)

    def test_l2_shrinks_weights(self, blobs):
        train_x, train_y, *_ = blobs
        free = SoftmaxRegression(num_epochs=10, seed=0).fit(train_x, train_y, 3)
        penalized = SoftmaxRegression(l2=0.5, num_epochs=10, seed=0).fit(
            train_x, train_y, 3
        )
        assert np.linalg.norm(penalized._weights) < np.linalg.norm(free._weights)

    def test_deterministic_given_seed(self, blobs):
        train_x, train_y, test_x, _ = blobs
        a = SoftmaxRegression(num_epochs=5, seed=9).fit(train_x, train_y, 3)
        b = SoftmaxRegression(num_epochs=5, seed=9).fit(train_x, train_y, 3)
        np.testing.assert_array_equal(a.predict(test_x), b.predict(test_x))


class TestMLP:
    def test_solves_xor(self):
        # Linear models cannot solve XOR; the MLP must.
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(600, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        x += rng.normal(scale=0.05, size=x.shape)
        model = TwoLayerMLP(
            hidden_units=32, learning_rate=0.1, num_epochs=80, seed=0
        ).fit(x[:400], y[:400], 2)
        assert model.error(x[400:], y[400:]) < 0.15

    def test_invalid_hidden_units_raise(self):
        with pytest.raises(DataValidationError):
            TwoLayerMLP(hidden_units=0)

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(DataValidationError):
            TwoLayerMLP().predict(rng.normal(size=(3, 2)))


class TestZooSpecifics:
    def test_nearest_centroid_centroids(self, blobs):
        train_x, train_y, *_ = blobs
        model = NearestCentroidClassifier().fit(train_x, train_y, 3)
        np.testing.assert_allclose(
            model._centroids[0], train_x[train_y == 0].mean(axis=0)
        )

    def test_naive_bayes_respects_priors(self, rng):
        # 95/5 class imbalance with overlapping features: the prior must
        # pull ambiguous points toward the majority class.
        x = rng.normal(size=(1000, 2))
        y = (rng.random(1000) < 0.05).astype(int)
        model = GaussianNaiveBayes().fit(x, y, 2)
        predictions = model.predict(rng.normal(size=(200, 2)))
        assert np.mean(predictions == 0) > 0.9

    def test_ridge_alpha_validation(self):
        with pytest.raises(DataValidationError):
            RidgeClassifier(alpha=-1.0)

    def test_knn_model_k_validation(self):
        with pytest.raises(DataValidationError):
            KNNClassifierModel(k=0)

    def test_knn_k_clamped(self, rng):
        x = rng.normal(size=(4, 2))
        y = np.array([0, 1, 0, 1])
        model = KNNClassifierModel(k=50).fit(x, y, 2)
        assert len(model.predict(x)) == 4

    def test_empty_training_set_raises(self):
        with pytest.raises(DataValidationError):
            NearestCentroidClassifier().fit(np.zeros((0, 2)), np.zeros(0), 2)
