"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

A feasibility-study system ingests user data; silent NaN propagation
would produce a confident wrong answer.  These tests pin the validation
behaviour at the system boundaries.
"""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.splits import dataset_from_arrays
from repro.exceptions import DataValidationError, ReproError


def _arrays(rng, n=40, d=4, c=3):
    return rng.normal(size=(n, d)), rng.integers(0, c, size=n)


class TestNonFiniteFeatures:
    def test_nan_in_train_rejected(self, rng):
        x, y = _arrays(rng)
        x[3, 1] = np.nan
        with pytest.raises(DataValidationError, match="finite"):
            Dataset("bad", x, y, x[:10].copy(), y[:10], 3)

    def test_inf_in_test_rejected(self, rng):
        x, y = _arrays(rng)
        bad_test = x[:10].copy()
        bad_test[0, 0] = np.inf
        with pytest.raises(DataValidationError, match="finite"):
            Dataset("bad", x, y, bad_test, y[:10], 3)

    def test_error_message_points_to_imputation(self, rng):
        x, y = _arrays(rng)
        x[0, 0] = np.nan
        with pytest.raises(DataValidationError, match="inject_missing_features"):
            Dataset("bad", x, y, x[:5].copy(), y[:5], 3)

    def test_imputed_features_accepted(self, rng):
        from repro.noise.features import inject_missing_features

        x, y = _arrays(rng)
        corrupted = inject_missing_features(x, 0.3, rng=0)
        dataset = dataset_from_arrays(corrupted.noisy_features, y, rng=0)
        assert dataset.num_train > 0


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro.exceptions import (
            BudgetError,
            ConvergenceError,
            DataValidationError,
            EstimatorError,
            TransitionMatrixError,
        )

        for exc_type in (
            BudgetError, ConvergenceError, DataValidationError,
            EstimatorError, TransitionMatrixError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_transition_error_is_data_validation_error(self):
        from repro.exceptions import DataValidationError, TransitionMatrixError

        assert issubclass(TransitionMatrixError, DataValidationError)

    def test_single_except_clause_catches_everything(self, rng):
        from repro.noise.transition import TransitionMatrix

        caught = 0
        try:
            TransitionMatrix(np.ones((2, 3)))
        except ReproError:
            caught += 1
        try:
            Dataset("bad", rng.normal(size=(3, 2)), np.zeros(2),
                    rng.normal(size=(2, 2)), np.zeros(2, dtype=int), 2)
        except ReproError:
            caught += 1
        assert caught == 2


class TestDegenerateTasks:
    def test_single_test_point_works(self, rng):
        from repro.estimators.cover_hart import OneNNEstimator

        x, y = _arrays(rng)
        estimate = OneNNEstimator().estimate(x, y, x[:1], y[:1], 3)
        assert estimate.value in (0.0, estimate.value)

    def test_constant_features(self, rng):
        # All-identical features: 1NN ties everywhere; the estimate must
        # still be a valid probability, not crash.
        from repro.estimators.cover_hart import OneNNEstimator

        x = np.ones((50, 3))
        y = rng.integers(0, 2, 50)
        estimate = OneNNEstimator().estimate(x, y, np.ones((20, 3)),
                                             rng.integers(0, 2, 20), 2)
        assert 0.0 <= estimate.value <= 1.0

    def test_single_class_dataset_valid_but_trivial(self, rng):
        from repro.estimators.cover_hart import OneNNEstimator

        x, _ = _arrays(rng)
        y = np.zeros(len(x), dtype=int)
        estimate = OneNNEstimator().estimate(x, y, x[:10], y[:10], 2)
        assert estimate.value == 0.0

    def test_duplicate_points_different_labels(self, rng):
        # Irreducibly ambiguous data: identical features, conflicting
        # labels — the 1NN error reflects genuine noise.
        from repro.estimators.cover_hart import OneNNEstimator

        x = np.repeat(rng.normal(size=(10, 3)), 2, axis=0)
        y = np.tile([0, 1], 10)
        estimate = OneNNEstimator().estimate(x, y, x, y, 2)
        assert estimate.value > 0.0
