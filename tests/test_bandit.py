"""Unit tests for the bandit subpackage (arms, SH, tangent, uniform)."""

import numpy as np
import pytest

from repro.bandit.arms import TransformationArm, build_arms
from repro.bandit.doubling import doubling_successive_halving
from repro.bandit.successive_halving import successive_halving
from repro.bandit.tangent import tangent_lower_bound
from repro.bandit.uniform import uniform_allocation
from repro.exceptions import BudgetError, ConvergenceError, DataValidationError
from repro.knn.brute_force import BruteForceKNN


@pytest.fixture()
def arms(dataset, catalog):
    return build_arms(catalog, dataset, rng=0)


class TestTangent:
    def test_two_point_secant(self):
        # Through (100, 0.5) and (200, 0.4): at 400, bound = 0.2.
        assert tangent_lower_bound([100, 200], [0.5, 0.4], 400) == pytest.approx(0.2)

    def test_clipped_at_zero(self):
        assert tangent_lower_bound([100, 200], [0.5, 0.1], 800) == 0.0

    def test_rising_tail_uses_last_loss(self):
        assert tangent_lower_bound([100, 200], [0.3, 0.4], 400) == pytest.approx(0.4)

    def test_single_point_returns_zero(self):
        assert tangent_lower_bound([100], [0.5], 200) == 0.0

    def test_target_before_last_point_raises(self):
        with pytest.raises(ConvergenceError):
            tangent_lower_bound([100, 200], [0.5, 0.4], 150)

    def test_is_lower_bound_of_convex_curve(self):
        sizes = np.array([100, 200, 400, 800])
        losses = 10.0 / np.sqrt(sizes)  # convex decreasing
        bound = tangent_lower_bound(sizes[:3], losses[:3], 800)
        assert bound <= losses[3] + 1e-12


class TestArms:
    def test_pull_accounting(self, arms):
        arm = arms[0]
        arm.pull(50)
        arm.pull(50)
        assert arm.samples_used == 100
        assert len(arm.losses) == 2
        assert arm.sim_cost >= 0

    def test_pull_matches_brute_force(self, dataset, catalog, arms):
        arm = next(a for a in arms if a.name == "emb_high")
        arm.pull(dataset.num_train)
        transform = catalog["emb_high"]
        train_f = transform.transform(dataset.train_x)
        test_f = transform.transform(dataset.test_x)
        expected = (
            BruteForceKNN()
            .fit(train_f, dataset.train_y)
            .error(test_f, dataset.test_y)
        )
        assert arm.current_loss == pytest.approx(expected)

    def test_exhausted_pull_is_noop(self, dataset, arms):
        arm = arms[0]
        arm.pull(dataset.num_train)
        cost = arm.sim_cost
        loss = arm.current_loss
        arm.pull(100)
        assert arm.exhausted
        assert arm.sim_cost == cost
        assert arm.current_loss == loss

    def test_negative_pull_raises(self, arms):
        with pytest.raises(BudgetError):
            arms[0].pull(-1)

    def test_unfitted_transform_rejected(self, dataset):
        from repro.transforms.linear import PCATransform

        with pytest.raises(DataValidationError, match="fitted"):
            TransformationArm(
                PCATransform(4), dataset.train_x, dataset.train_y,
                dataset.test_x, dataset.test_y,
            )

    def test_current_loss_before_pull_is_inf(self, arms):
        assert arms[0].current_loss == np.inf

    def test_build_arms_shares_sample_order(self, dataset, catalog):
        arms = build_arms(catalog, dataset, rng=3)
        for arm in arms:
            arm.pull(100)
        # All arms consumed the same first 100 (shuffled) samples, so
        # their evaluators saw identical label sequences.
        assert len({arm.samples_used for arm in arms}) == 1


class TestSuccessiveHalving:
    def test_returns_single_winner(self, dataset, arms):
        result = successive_halving(arms, budget=3 * dataset.num_train)
        assert result.winner in arms
        assert result.total_samples <= 3 * dataset.num_train + len(arms) * 64

    def test_winner_is_good_arm(self, dataset, arms):
        result = successive_halving(arms, budget=3 * dataset.num_train)
        assert result.winner_name in ("emb_high", "emb_mid")

    def test_budget_split_is_uneven(self, dataset, arms):
        result = successive_halving(arms, budget=3 * dataset.num_train)
        used = result.samples_per_arm
        assert max(used.values()) > min(used.values())

    def test_too_small_budget_raises(self, arms):
        with pytest.raises(BudgetError):
            successive_halving(arms, budget=3)

    def test_empty_arms_raises(self):
        with pytest.raises(BudgetError):
            successive_halving([], budget=100)

    def test_round_survivors_halve(self, dataset, arms):
        result = successive_halving(arms, budget=3 * dataset.num_train)
        counts = [len(s) for s in result.round_survivors]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 1


class TestTangentVariant:
    def test_same_winner_as_plain_sh(self, dataset, catalog):
        plain_arms = build_arms(catalog, dataset, rng=0)
        tangent_arms = build_arms(catalog, dataset, rng=0)
        budget = 3 * dataset.num_train
        plain = successive_halving(plain_arms, budget, use_tangent=False)
        tangent = successive_halving(tangent_arms, budget, use_tangent=True)
        assert plain.winner_name == tangent.winner_name

    def test_tangent_never_costs_more(self, dataset, catalog):
        plain_arms = build_arms(catalog, dataset, rng=0)
        tangent_arms = build_arms(catalog, dataset, rng=0)
        budget = 3 * dataset.num_train
        plain = successive_halving(plain_arms, budget, use_tangent=False)
        tangent = successive_halving(tangent_arms, budget, use_tangent=True)
        assert tangent.total_samples <= plain.total_samples

    def test_strategy_label(self, dataset, arms):
        result = successive_halving(
            arms, budget=3 * dataset.num_train, use_tangent=True
        )
        assert result.strategy == "successive_halving_tangent"


class TestUniform:
    def test_equal_allocation(self, dataset, catalog):
        arms = build_arms(catalog, dataset, rng=0)
        result = uniform_allocation(arms, budget=len(arms) * 200)
        assert set(result.samples_per_arm.values()) == {200}

    def test_budget_below_arm_count_raises(self, arms):
        with pytest.raises(BudgetError):
            uniform_allocation(arms, budget=2)


class TestDoubling:
    def test_winner_exhausts_pool(self, dataset, catalog):
        arms = build_arms(catalog, dataset, rng=0)
        result = doubling_successive_halving(arms, pull_size=64)
        assert result.winner.exhausted
        assert result.strategy.endswith("_doubling")

    def test_empty_arms_raises(self):
        with pytest.raises(BudgetError):
            doubling_successive_halving([])
