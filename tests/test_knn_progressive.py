"""Unit tests for repro.knn.progressive: the streamed 1NN evaluator."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.knn.brute_force import BruteForceKNN
from repro.knn.progressive import CurvePoint, ProgressiveOneNN


@pytest.fixture()
def data(rng):
    train_x = rng.normal(size=(200, 5))
    train_y = rng.integers(0, 3, size=200)
    test_x = rng.normal(size=(50, 5))
    test_y = rng.integers(0, 3, size=50)
    return train_x, train_y, test_x, test_y


class TestConstruction:
    def test_empty_test_raises(self):
        with pytest.raises(DataValidationError):
            ProgressiveOneNN(np.zeros((0, 3)), np.zeros(0))

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            ProgressiveOneNN(rng.normal(size=(5, 2)), np.zeros(4))

    def test_error_before_any_batch_raises(self, data):
        _, _, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        with pytest.raises(DataValidationError, match="no training data"):
            evaluator.error()


class TestEquivalenceWithBatch:
    def test_single_batch_matches_brute_force(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        streamed = evaluator.partial_fit(train_x, train_y)
        index = BruteForceKNN().fit(train_x, train_y)
        assert streamed == pytest.approx(index.error(test_x, test_y, k=1))

    @pytest.mark.parametrize("batch_size", [1, 7, 50, 200])
    def test_any_batching_matches_full(self, data, batch_size):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        for start in range(0, len(train_x), batch_size):
            evaluator.partial_fit(
                train_x[start : start + batch_size],
                train_y[start : start + batch_size],
            )
        index = BruteForceKNN().fit(train_x, train_y)
        assert evaluator.error() == pytest.approx(
            index.error(test_x, test_y, k=1)
        )

    def test_nearest_indices_are_global(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x[:100], train_y[:100])
        evaluator.partial_fit(train_x[100:], train_y[100:])
        _, idx = BruteForceKNN().fit(train_x, train_y).kneighbors(test_x, k=1)
        np.testing.assert_array_equal(evaluator.nearest_indices, idx[:, 0])


class TestCurve:
    def test_curve_recorded_per_batch(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x[:50], train_y[:50])
        evaluator.partial_fit(train_x[50:120], train_y[50:120])
        assert [p.train_size for p in evaluator.curve] == [50, 120]
        assert all(isinstance(p, CurvePoint) for p in evaluator.curve)

    def test_curve_arrays(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x[:30], train_y[:30])
        sizes, errors = evaluator.curve_arrays()
        assert sizes.tolist() == [30]
        assert errors[0] == evaluator.error()

    def test_curve_disabled(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y, record_curve=False)
        evaluator.partial_fit(train_x, train_y)
        assert evaluator.curve == []

    def test_error_non_increasing_on_easy_task(self):
        # With well separated clusters, more data cannot hurt 1NN much;
        # the final error must be <= the first-batch error.
        rng = np.random.default_rng(5)
        centers = np.array([[0.0, 0.0], [6.0, 6.0], [0.0, 6.0]])
        train_y = rng.integers(0, 3, 300)
        train_x = centers[train_y] + rng.normal(scale=1.0, size=(300, 2))
        test_y = rng.integers(0, 3, 100)
        test_x = centers[test_y] + rng.normal(scale=1.0, size=(100, 2))
        evaluator = ProgressiveOneNN(test_x, test_y)
        first = evaluator.partial_fit(train_x[:10], train_y[:10])
        last = evaluator.partial_fit(train_x[10:], train_y[10:])
        assert last <= first + 1e-12


class TestRelabel:
    def test_relabel_train_changes_predictions(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x, train_y)
        # Relabel every training point to class 0: prediction = all zeros.
        evaluator.relabel_train(
            np.arange(len(train_y)), np.zeros(len(train_y), dtype=np.int64)
        )
        expected = float(np.mean(test_y != 0))
        assert evaluator.error() == pytest.approx(expected)

    def test_relabel_test_changes_ground_truth(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y.copy())
        evaluator.partial_fit(train_x, train_y)
        predictions = evaluator.nearest_labels
        # Set test labels equal to the predictions: error becomes zero.
        evaluator.relabel_test(np.arange(len(test_y)), predictions)
        assert evaluator.error() == 0.0

    def test_relabel_mismatch_raises(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x, train_y)
        with pytest.raises(DataValidationError):
            evaluator.relabel_train(np.array([0, 1]), np.array([0]))

    def test_relabel_matches_full_recompute(self, data):
        train_x, train_y, test_x, test_y = data
        evaluator = ProgressiveOneNN(test_x, test_y)
        evaluator.partial_fit(train_x, train_y)
        rng = np.random.default_rng(9)
        flip_idx = rng.choice(len(train_y), size=40, replace=False)
        new_labels = rng.integers(0, 3, size=40)
        evaluator.relabel_train(flip_idx, new_labels)
        modified = train_y.copy()
        modified[flip_idx] = new_labels
        index = BruteForceKNN().fit(train_x, modified)
        assert evaluator.error() == pytest.approx(
            index.error(test_x, test_y, k=1)
        )
