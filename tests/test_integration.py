"""End-to-end integration tests across the whole stack.

These exercise the exact workflows the paper describes: load a paper
dataset analogue, pollute it, run Snoopy against baselines, clean
iteratively, and verify the qualitative claims of the evaluation hold
(who wins, roughly by how much, and in which direction).
"""

import numpy as np
import pytest

from repro.baselines.finetune import FineTuneBaseline
from repro.baselines.logistic_regression import LogisticRegressionBaseline
from repro.cleaning.costs import CostModel
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.strategies import run_with_feasibility_study
from repro.cleaning.workflow import make_noisy_dataset
from repro.core.result import FeasibilitySignal
from repro.core.snoopy import Snoopy, SnoopyConfig
from repro.datasets import load, load_cifar_n
from repro.noise.theory import (
    ber_after_uniform_noise,
    transition_bounds_from_sota,
)
from repro.transforms.catalog import catalog_for


@pytest.fixture(scope="module")
def cifar():
    return load("cifar10", scale=0.01, seed=0)


@pytest.fixture(scope="module")
def cifar_catalog(cifar):
    return catalog_for(cifar, seed=0, max_embeddings=5)


class TestSnoopyOnPaperDatasets:
    def test_clean_cifar_realistic_target(self, cifar, cifar_catalog):
        report = Snoopy(cifar_catalog, SnoopyConfig(seed=0)).run(
            cifar, target_accuracy=0.9
        )
        assert report.signal is FeasibilitySignal.REALISTIC
        # The clean analogue is calibrated to BER ~ 0.3%; the estimate
        # must be in the few-percent range, not tens of percent.
        assert report.ber_estimate < 0.1

    def test_noisy_cifar_unrealistic_target(self, cifar, cifar_catalog):
        noisy = make_noisy_dataset(cifar, 0.4, rng=0)
        report = Snoopy(cifar_catalog, SnoopyConfig(seed=0)).run(
            noisy, target_accuracy=0.95
        )
        assert report.signal is FeasibilitySignal.UNREALISTIC

    def test_estimate_tracks_lemma_evolution(self, cifar, cifar_catalog):
        estimates = {}
        for rho in (0.0, 0.2, 0.4):
            noisy = make_noisy_dataset(cifar, rho, rng=1) if rho else cifar
            report = Snoopy(cifar_catalog, SnoopyConfig(seed=0)).run(
                noisy, target_accuracy=0.9
            )
            estimates[rho] = report.ber_estimate
        # Monotone in noise, and within a factor-ish of the true values.
        assert estimates[0.0] < estimates[0.2] < estimates[0.4]
        for rho in (0.2, 0.4):
            truth = ber_after_uniform_noise(cifar.true_ber, rho, 10)
            assert estimates[rho] == pytest.approx(truth, abs=0.12)

    def test_snoopy_cheaper_and_no_worse_than_lr(self, cifar, cifar_catalog):
        noisy = make_noisy_dataset(cifar, 0.2, rng=0)
        report = Snoopy(cifar_catalog, SnoopyConfig(seed=0)).run(
            noisy, target_accuracy=0.9
        )
        lr = LogisticRegressionBaseline(
            cifar_catalog, num_epochs=5, seed=0,
            learning_rates=(0.1,), l2_values=(0.0,),
        ).run(noisy)
        # Feasibility estimate at or below the proxy error, at a fraction
        # of the simulated cost (LR embeds everything + trains a grid).
        assert report.ber_estimate <= lr.best_error + 0.02
        assert report.total_sim_cost_seconds < lr.sim_cost_seconds

    def test_snoopy_orders_of_magnitude_cheaper_than_finetune(
        self, cifar, cifar_catalog
    ):
        report = Snoopy(cifar_catalog, SnoopyConfig(seed=0)).run(
            cifar, target_accuracy=0.9
        )
        # The paper's fine-tune settings: a small LR grid, many epochs.
        finetune = FineTuneBaseline(cifar_catalog, seed=0).run(cifar)
        assert finetune.sim_cost_seconds > 10 * report.total_sim_cost_seconds


class TestCifarNIntegration:
    def test_estimate_within_theorem_bounds(self):
        dataset = load_cifar_n("cifar10_aggre", scale=0.01, seed=0)
        catalog = catalog_for(dataset, seed=0, max_embeddings=4)
        report = Snoopy(catalog, SnoopyConfig(seed=0)).run(
            dataset, target_accuracy=0.9
        )
        transition = dataset.extras["transition"]
        lower, upper = transition_bounds_from_sota(
            dataset.sota_error, transition
        )
        # The paper observes the estimate stays inside the (wide) bounds.
        assert lower - 0.05 <= report.ber_estimate <= upper + 0.05


class TestEndToEndCleaningLoop:
    def test_incremental_state_agrees_with_fresh_run_after_cleaning(
        self, cifar, cifar_catalog
    ):
        noisy = make_noisy_dataset(cifar, 0.3, rng=2)
        system = Snoopy(cifar_catalog, SnoopyConfig(strategy="full", seed=0))
        system.run(noisy, target_accuracy=0.9)
        state = system.incremental_state()
        session = CleaningSession(noisy, rng=0)
        step = session.clean_fraction(0.5)
        state.apply_cleaning(
            step.train_indices, step.train_labels,
            step.test_indices, step.test_labels,
        )
        _, incremental = state.ber_estimate()
        fresh = Snoopy(
            cifar_catalog, SnoopyConfig(strategy="full", seed=0)
        ).run(session.current_dataset(), target_accuracy=0.9)
        assert incremental == pytest.approx(fresh.ber_estimate, abs=0.03)

    def test_feasibility_guided_loop_saves_expensive_runs(
        self, cifar, cifar_catalog
    ):
        noisy = make_noisy_dataset(cifar, 0.3, rng=0)
        trainer = FineTuneBaseline(
            cifar_catalog, learning_rates=(0.05,), num_epochs=8, seed=0
        )
        trace = run_with_feasibility_study(
            CleaningSession(noisy, rng=0), trainer,
            target_accuracy=0.80, cost_model=CostModel.for_regime("cheap"),
            feasibility="snoopy", catalog=cifar_catalog, clean_step=0.05,
        )
        assert trace.reached_target
        feasibility_checks = sum(
            1 for p in trace.points if p.action == "feasibility"
        )
        assert trace.num_expensive_runs < feasibility_checks
