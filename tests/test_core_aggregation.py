"""Unit tests for min-aggregation and the Section IV-B regime analysis."""

import pytest

from repro.core.aggregation import (
    RegimeQuantities,
    aggregate_min,
    condition_8_holds,
    condition_9_holds,
    estimate_regime_quantities,
)
from repro.estimators.base import BEREstimate
from repro.exceptions import DataValidationError
from repro.transforms.pretrained import SimulatedEmbedding


class TestAggregateMin:
    def test_picks_minimum(self):
        estimates = {
            "a": BEREstimate(0.3),
            "b": BEREstimate(0.1),
            "c": BEREstimate(0.2),
        }
        name, best = aggregate_min(estimates)
        assert name == "b"
        assert best.value == 0.1

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            aggregate_min({})

    def test_single_entry(self):
        name, best = aggregate_min({"only": BEREstimate(0.5)})
        assert name == "only"


class TestRegimeQuantities:
    def _quantities(self, raw=0.1, transformed=0.15, limit=0.12, at_n=0.2):
        return RegimeQuantities(
            transform_name="t", ber_raw=raw, ber_transformed=transformed,
            estimator_limit=limit, estimate_at_n=at_n, samples=1000,
        )

    def test_definitions(self):
        q = self._quantities()
        assert q.transformation_bias == pytest.approx(0.05)
        assert q.asymptotic_tightness == pytest.approx(0.03)
        assert q.finite_sample_gap == pytest.approx(0.08)
        assert q.condition_8_margin == pytest.approx(0.05 + 0.08 - 0.03)

    def test_condition_8(self):
        good = self._quantities()
        # bias = 0.02, gap = -0.07, tightness = 0 -> margin = -0.05 < 0.
        bad = self._quantities(transformed=0.12, limit=0.12, at_n=0.05)
        assert condition_8_holds([good])
        assert not condition_8_holds([good, bad])

    def test_condition_9_weaker_than_8(self):
        marginal = self._quantities(transformed=0.12, limit=0.12, at_n=0.05)
        assert not condition_8_holds([marginal])
        assert condition_9_holds([marginal], identity_tightness=0.2)


class TestEstimateRegimeQuantities:
    def test_on_known_task(self, dataset):
        embedding = SimulatedEmbedding(
            "probe", 16, 0.9, 1e-4,
            dataset.oracle.latent_projection, seed=0,
        )
        q = estimate_regime_quantities(dataset, embedding, rng=0)
        assert q.ber_raw == pytest.approx(dataset.true_ber)
        assert q.samples == dataset.num_train
        # Empirical surrogates must be sane probabilities.
        assert 0.0 <= q.ber_transformed <= 1.0
        assert 0.0 <= q.estimator_limit <= 1.0
        assert q.estimator_limit <= q.estimate_at_n + 1e-9

    def test_requires_oracle(self, dataset):
        from dataclasses import replace

        plain = replace(dataset, oracle=None)
        embedding = SimulatedEmbedding(
            "probe", 8, 0.5, 1e-4, dataset.oracle.latent_projection, seed=0
        )
        with pytest.raises(DataValidationError, match="oracle"):
            estimate_regime_quantities(plain, embedding)

    def test_high_fidelity_embedding_has_low_bias(self, dataset):
        high = SimulatedEmbedding(
            "hi", 16, 0.95, 1e-4, dataset.oracle.latent_projection, seed=0
        )
        low = SimulatedEmbedding(
            "lo", 16, 0.15, 1e-4, dataset.oracle.latent_projection, seed=0
        )
        q_high = estimate_regime_quantities(dataset, high, rng=0)
        q_low = estimate_regime_quantities(dataset, low, rng=0)
        assert q_high.transformation_bias < q_low.transformation_bias
