"""Unit tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(5).random(3)
        b = ensure_rng(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(42)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_independent(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].random(5)
        b = children[1].random(5)
        assert not np.allclose(a, b)

    def test_reproducible_from_parent_seed(self):
        first = [g.random() for g in spawn(ensure_rng(7), 3)]
        second = [g.random() for g in spawn(ensure_rng(7), 3)]
        assert first == second

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_zero_count(self):
        assert spawn(ensure_rng(0), 0) == []
