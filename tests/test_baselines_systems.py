"""Unit tests for the baseline systems: LR proxy, AutoML, fine-tune, strawman."""

import numpy as np
import pytest

from repro.baselines.automl import (
    AutoMLSimulator,
    CandidateConfig,
    default_search_space,
)
from repro.baselines.finetune import FineTuneBaseline
from repro.baselines.logistic_regression import LogisticRegressionBaseline
from repro.baselines.proxy import constant_downscale, plug_into_cover_hart
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import BudgetError, DataValidationError


class TestLRBaseline:
    def test_run_reports_best_transform(self, dataset, catalog):
        baseline = LogisticRegressionBaseline(
            catalog, num_epochs=3, seed=0,
            learning_rates=(0.1,), l2_values=(0.0,),
        )
        result = baseline.run(dataset)
        assert result.best_transform in catalog.names
        assert result.best_error == min(result.errors_by_transform.values())
        assert 0.0 <= result.best_error <= 1.0
        assert result.sim_cost_seconds > 0
        assert result.grid_evaluations == len(catalog)

    def test_grid_size_accounting(self, dataset, catalog):
        baseline = LogisticRegressionBaseline(
            catalog, num_epochs=2, seed=0,
            learning_rates=(0.01, 0.1), l2_values=(0.0, 0.01),
        )
        result = baseline.run(dataset)
        assert result.grid_evaluations == 4 * len(catalog)

    def test_empty_catalog_raises(self):
        with pytest.raises(DataValidationError):
            LogisticRegressionBaseline([])

    def test_best_accuracy_property(self, dataset, catalog):
        baseline = LogisticRegressionBaseline(
            catalog, num_epochs=2, seed=0,
            learning_rates=(0.1,), l2_values=(0.0,),
        )
        result = baseline.run(dataset)
        assert result.best_accuracy == pytest.approx(1.0 - result.best_error)


class TestAutoML:
    def test_default_space_size(self):
        # 2 parameter-free + 3 ridge + 3 knn + 2 LR + 6 MLP configs.
        assert len(default_search_space()) == 16

    def test_run_with_large_budget_evaluates_everything(self, dataset):
        automl = AutoMLSimulator(sim_budget_seconds=1e9, seed=0)
        result = automl.run(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert result.evaluations == len(default_search_space())
        assert 0.0 <= result.best_error <= 1.0

    def test_budget_limits_evaluations(self, dataset):
        tiny = AutoMLSimulator(sim_budget_seconds=1e-5, seed=0)
        result = tiny.run(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        # At least one candidate always runs, but not all fit the budget.
        assert 1 <= result.evaluations < len(default_search_space())

    def test_more_budget_never_hurts(self, dataset):
        small = AutoMLSimulator(sim_budget_seconds=0.05, seed=0).run(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        large = AutoMLSimulator(sim_budget_seconds=1e9, seed=0).run(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert large.best_error <= small.best_error + 1e-12

    def test_invalid_budget_raises(self):
        with pytest.raises(BudgetError):
            AutoMLSimulator(sim_budget_seconds=0.0)

    def test_unknown_family_raises(self):
        with pytest.raises(BudgetError):
            CandidateConfig("quantum").build(seed=0)

    def test_trace_records_evaluations(self, dataset):
        result = AutoMLSimulator(sim_budget_seconds=1e9, seed=0).run(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, dataset.num_classes,
        )
        assert len(result.trace) == result.evaluations


class TestFineTune:
    def test_backbone_is_highest_fidelity(self, catalog):
        baseline = FineTuneBaseline(catalog)
        assert baseline.backbone().name == "emb_high"

    def test_run_beats_chance(self, dataset, catalog):
        baseline = FineTuneBaseline(
            catalog, learning_rates=(0.05,), num_epochs=10, seed=0
        )
        result = baseline.run(dataset)
        chance = 1.0 - 1.0 / dataset.num_classes
        assert result.test_error < chance
        assert result.embedding_name == "emb_high"

    def test_sim_cost_dominates_inference(self, dataset, catalog):
        baseline = FineTuneBaseline(
            catalog, learning_rates=(0.05,), num_epochs=10, seed=0
        )
        result = baseline.run(dataset)
        # Fine-tuning must cost far more than embedding the dataset once.
        inference = catalog["emb_high"].inference_cost(
            dataset.num_train + dataset.num_test
        )
        assert result.sim_cost_seconds > 10 * inference

    def test_empty_catalog_raises(self):
        with pytest.raises(DataValidationError):
            FineTuneBaseline([])


class TestProxyStrawman:
    def test_constant_downscale(self):
        assert constant_downscale(0.4, 2.0) == pytest.approx(0.2)

    def test_factor_below_one_raises(self):
        with pytest.raises(DataValidationError):
            constant_downscale(0.4, 0.5)

    def test_error_out_of_range_raises(self):
        with pytest.raises(DataValidationError):
            constant_downscale(1.4, 2.0)

    def test_plug_into_cover_hart_matches_formula(self):
        assert plug_into_cover_hart(0.3, 5) == pytest.approx(
            cover_hart_lower_bound(0.3, 5)
        )

    def test_downscaled_lr_error_can_underestimate(self):
        # The Figure 2 (right) phenomenon: plugging a *good* classifier's
        # error (close to the BER itself, not to the 1NN error ~ 2x BER)
        # into Eq. 2 halves it and lands below the true BER.
        true_ber = 0.2
        good_model_error = 0.22  # a strong proxy is close to the BER
        strawman = plug_into_cover_hart(good_model_error, 2)
        assert strawman < true_ber
