"""Unit tests for the non-1NN estimators (kNN-LOO, DE-kNN, KDE, GHP,
extrapolation) and the estimator registry."""

import numpy as np
import pytest

from repro.estimators import (
    DeKNNEstimator,
    ESTIMATOR_REGISTRY,
    GHPEstimator,
    KDEEstimator,
    KNNExtrapolationEstimator,
    KNNLooEstimator,
    get_estimator,
)
from repro.estimators.base import BEREstimate, register_estimator
from repro.estimators.ghp import friedman_rafsky_cross_edges, pairwise_ber_bounds
from repro.exceptions import DataValidationError, EstimatorError


@pytest.fixture(scope="module")
def easy_split():
    rng = np.random.default_rng(2)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [0.0, 8.0]])
    y_train = rng.integers(0, 3, 400)
    y_test = rng.integers(0, 3, 150)
    x_train = centers[y_train] + rng.normal(size=(400, 2))
    x_test = centers[y_test] + rng.normal(size=(150, 2))
    return x_train, y_train, x_test, y_test


@pytest.fixture(scope="module")
def hard_split(hard_dataset):
    return (
        hard_dataset.train_x,
        hard_dataset.train_y,
        hard_dataset.test_x,
        hard_dataset.test_y,
    )


ALL_ESTIMATORS = [
    KNNLooEstimator(k=5),
    DeKNNEstimator(k=10),
    KDEEstimator(),
    GHPEstimator(max_points_per_class=150),
    KNNExtrapolationEstimator(num_grid_points=5),
]


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "estimator", ALL_ESTIMATORS, ids=lambda e: e.name
    )
    def test_estimate_in_unit_interval(self, estimator, easy_split):
        estimate = estimator.estimate(*easy_split, 3)
        assert isinstance(estimate, BEREstimate)
        assert 0.0 <= estimate.value <= 1.0

    @pytest.mark.parametrize(
        "estimator", ALL_ESTIMATORS, ids=lambda e: e.name
    )
    def test_easy_task_scores_low(self, estimator, easy_split):
        # Classes are ~8 sigma apart: every estimator should report a
        # near-zero BER.
        estimate = estimator.estimate(*easy_split, 3)
        assert estimate.value < 0.08

    @pytest.mark.parametrize(
        "estimator",
        [KNNLooEstimator(k=5), DeKNNEstimator(k=10), GHPEstimator(max_points_per_class=150)],
        ids=lambda e: e.name,
    )
    def test_hard_task_scores_higher_than_easy(
        self, estimator, easy_split, hard_split
    ):
        easy = estimator.estimate(*easy_split, 3).value
        hard = estimator.estimate(*hard_split, 2).value
        assert hard > easy


class TestKNNLoo:
    def test_k_clamped_to_sample_size(self, rng):
        x = rng.normal(size=(6, 2))
        y = rng.integers(0, 2, 6)
        estimate = KNNLooEstimator(k=100).estimate(x, y, x, y, 2)
        assert estimate.details["k"] < 12

    def test_invalid_k_raises(self):
        with pytest.raises(DataValidationError):
            KNNLooEstimator(k=0)


class TestDeKNN:
    def test_posterior_plug_in_on_uniform_labels(self, rng):
        # Labels independent of features: plug-in estimate near 1 - 1/C.
        x_train = rng.normal(size=(600, 3))
        y_train = rng.integers(0, 2, 600)
        x_test = rng.normal(size=(200, 3))
        y_test = rng.integers(0, 2, 200)
        estimate = DeKNNEstimator(k=30).estimate(x_train, y_train, x_test, y_test, 2)
        assert estimate.value == pytest.approx(0.5, abs=0.1)


class TestKDE:
    def test_bandwidth_validation(self):
        with pytest.raises(DataValidationError):
            KDEEstimator(bandwidth=-1.0)

    def test_explicit_bandwidth(self, easy_split):
        estimate = KDEEstimator(bandwidth=1.0).estimate(*easy_split, 3)
        assert estimate.value < 0.1

    def test_single_class_train_raises(self, rng):
        x = rng.normal(size=(20, 2))
        with pytest.raises(EstimatorError):
            KDEEstimator().estimate(
                x, np.zeros(20, dtype=int), x, np.zeros(20, dtype=int), 2
            )


class TestGHP:
    def test_cross_edges_low_for_separated_clusters(self, rng):
        a = rng.normal(size=(50, 2))
        b = rng.normal(size=(50, 2)) + 100.0
        assert friedman_rafsky_cross_edges(a, b) == 1

    def test_cross_edges_high_for_identical_distributions(self, rng):
        a = rng.normal(size=(100, 2))
        b = rng.normal(size=(100, 2))
        # Expected cross edges ~ 2mn/(m+n) = 100 under H0; allow slack.
        assert friedman_rafsky_cross_edges(a, b) > 50

    def test_pairwise_bounds_ordering(self, rng):
        a = rng.normal(size=(60, 2))
        b = rng.normal(size=(60, 2)) + 1.5
        lower, upper = pairwise_ber_bounds(a, b)
        assert 0.0 <= lower <= upper <= 0.5

    def test_identical_distributions_bounds_near_half(self, rng):
        a = rng.normal(size=(150, 2))
        b = rng.normal(size=(150, 2))
        lower, upper = pairwise_ber_bounds(a, b)
        assert upper > 0.35

    def test_subsampling_keeps_estimator_usable(self, easy_split):
        estimate = GHPEstimator(max_points_per_class=30).estimate(*easy_split, 3)
        assert estimate.value < 0.15


class TestExtrapolation:
    def test_requires_three_grid_points(self):
        with pytest.raises(DataValidationError):
            KNNExtrapolationEstimator(num_grid_points=2)

    def test_fixed_dim_fit(self, easy_split):
        estimator = KNNExtrapolationEstimator(num_grid_points=5, effective_dim=2)
        estimate = estimator.estimate(*easy_split, 3)
        assert estimate.details["effective_dim"] == 2
        assert 0.0 <= estimate.details["r_infinity"] <= 1.0

    def test_curve_is_recorded(self, easy_split):
        estimate = KNNExtrapolationEstimator(num_grid_points=5).estimate(
            *easy_split, 3
        )
        sizes = estimate.details["curve_sizes"]
        assert sizes == sorted(sizes)
        assert len(sizes) == len(estimate.details["curve_errors"])


class TestRegistry:
    def test_all_estimators_registered(self):
        for name in ("1nn", "knn_loo", "de_knn", "kde", "ghp", "knn_extrapolation"):
            assert name in ESTIMATOR_REGISTRY

    def test_get_estimator_with_kwargs(self):
        estimator = get_estimator("de_knn", k=7)
        assert estimator.k == 7

    def test_unknown_name_raises(self):
        with pytest.raises(EstimatorError, match="unknown estimator"):
            get_estimator("magic")

    def test_duplicate_registration_raises(self):
        with pytest.raises(EstimatorError, match="already registered"):

            @register_estimator("1nn")
            class Duplicate:  # pragma: no cover - never instantiated
                pass
