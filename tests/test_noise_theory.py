"""Unit tests for repro.noise.theory: Lemma 2.1, Theorem 3.1 and bounds."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.noise.theory import (
    ber_after_pairwise_noise,
    ber_after_uniform_noise,
    ber_increase_decomposition,
    ber_under_transition,
    expected_increase_approximation,
    expected_sota_increase_uniform,
    transition_bounds_from_sota,
)
from repro.noise.transition import TransitionMatrix


def _random_posteriors(n, c, rng, sharpness=4.0):
    raw = rng.dirichlet(np.full(c, 1.0 / sharpness), size=n)
    return raw


class TestLemma21:
    def test_zero_noise_is_identity(self):
        assert ber_after_uniform_noise(0.1, 0.0, 5) == pytest.approx(0.1)

    def test_full_noise_saturates(self):
        # rho = 1: the label is uniform, BER = 1 - 1/C regardless of task.
        assert ber_after_uniform_noise(0.1, 1.0, 5) == pytest.approx(1 - 1 / 5)
        assert ber_after_uniform_noise(0.0, 1.0, 2) == pytest.approx(0.5)

    def test_linear_in_rho(self):
        vals = [ber_after_uniform_noise(0.05, r, 10) for r in (0.0, 0.5, 1.0)]
        assert vals[1] == pytest.approx((vals[0] + vals[2]) / 2)

    def test_monotone_in_rho_below_saturation(self):
        vals = [ber_after_uniform_noise(0.02, r, 4) for r in np.linspace(0, 1, 11)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_invalid_inputs_raise(self):
        with pytest.raises(DataValidationError):
            ber_after_uniform_noise(-0.1, 0.2, 3)
        with pytest.raises(DataValidationError):
            ber_after_uniform_noise(0.1, 2.0, 3)
        with pytest.raises(DataValidationError):
            ber_after_uniform_noise(0.1, 0.2, 1)


class TestPairwise:
    def test_formula(self):
        assert ber_after_pairwise_noise(0.1, 0.2) == pytest.approx(
            0.1 + 0.2 * (1 - 0.2)
        )

    def test_saturation_at_half(self):
        # BER 0.5 is a fixed point of pairwise flipping.
        assert ber_after_pairwise_noise(0.5, 0.7) == pytest.approx(0.5)


class TestTheorem31:
    def test_uniform_transition_recovers_lemma(self, rng):
        # Theorem 3.1 with the uniform matrix must equal Lemma 2.1.
        c = 5
        posteriors = _random_posteriors(4000, c, rng)
        clean_ber = float(np.mean(1 - posteriors.max(axis=1)))
        for rho in (0.0, 0.2, 0.5):
            t = TransitionMatrix.uniform(rho, c)
            noisy = ber_under_transition(posteriors, t)
            assert noisy == pytest.approx(
                ber_after_uniform_noise(clean_ber, rho, c), abs=1e-10
            )

    def test_pairwise_transition_on_binary_recovers_corollary(self, rng):
        posteriors = _random_posteriors(4000, 2, rng)
        clean_ber = float(np.mean(1 - posteriors.max(axis=1)))
        t = TransitionMatrix.pairwise(0.2, 2)
        noisy = ber_under_transition(posteriors, t)
        assert noisy == pytest.approx(
            ber_after_pairwise_noise(clean_ber, 0.2), abs=1e-10
        )

    def test_decomposition_sums_to_noisy_ber(self, rng):
        posteriors = _random_posteriors(2000, 4, rng)
        t = TransitionMatrix.class_dependent_random(4, 0.25, 0.1, rng=0)
        clean, flip, recovery = ber_increase_decomposition(posteriors, t)
        assert ber_under_transition(posteriors, t) == pytest.approx(
            clean + flip - recovery, abs=1e-10
        )

    def test_noise_never_decreases_ber_in_valid_regime(self, rng):
        posteriors = _random_posteriors(2000, 4, rng)
        clean_ber = float(np.mean(1 - posteriors.max(axis=1)))
        t = TransitionMatrix.class_dependent_random(4, 0.3, 0.05, rng=1)
        assert ber_under_transition(posteriors, t) >= clean_ber - 1e-10

    def test_rejects_argmax_violating_matrix(self, rng):
        matrix = np.array([[0.3, 0.0], [0.7, 1.0]])  # column 0 argmax is row 1
        t = TransitionMatrix(matrix)
        posteriors = _random_posteriors(100, 2, rng)
        with pytest.raises(DataValidationError, match="argmax"):
            ber_under_transition(posteriors, t)

    def test_rejects_unnormalized_posteriors(self):
        t = TransitionMatrix.uniform(0.1, 3)
        with pytest.raises(DataValidationError):
            ber_under_transition(np.ones((5, 3)), t)


class TestBounds:
    def test_interval_contains_theorem_value(self, rng):
        posteriors = _random_posteriors(4000, 5, rng)
        clean_ber = float(np.mean(1 - posteriors.max(axis=1)))
        t = TransitionMatrix.class_dependent_random(5, 0.2, 0.08, rng=2)
        noisy = ber_under_transition(posteriors, t)
        # SOTA error upper-bounds the clean BER by definition.
        sota = clean_ber + 0.02
        lower, upper = transition_bounds_from_sota(sota, t)
        assert lower - 1e-9 <= noisy <= upper + 1e-9

    def test_bounds_are_clipped(self):
        t = TransitionMatrix.uniform(0.9, 10)
        lower, upper = transition_bounds_from_sota(0.5, t)
        assert 0.0 <= lower <= upper <= 1.0

    def test_approximation_between_bounds_for_symmetric_noise(self):
        t = TransitionMatrix.uniform(0.3, 10)
        sota = 0.05
        lower, upper = transition_bounds_from_sota(sota, t)
        approx = expected_increase_approximation(sota, t)
        assert lower <= approx <= upper

    def test_sota_increase_uniform_equals_lemma(self):
        assert expected_sota_increase_uniform(0.05, 0.2, 10) == pytest.approx(
            ber_after_uniform_noise(0.05, 0.2, 10)
        )
