"""Unit tests for the transformation substrate (linear, NCA, simulated)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.transforms.base import FittedCatalog
from repro.transforms.linear import (
    IdentityTransform,
    PCATransform,
    RandomProjectionTransform,
    StandardizeTransform,
)
from repro.transforms.nca import NCATransform
from repro.transforms.pretrained import SimulatedEmbedding


@pytest.fixture()
def data(rng):
    return rng.normal(size=(200, 12)) * np.arange(1, 13)


class TestIdentity:
    def test_passthrough(self, data):
        t = IdentityTransform(12).fit(data)
        np.testing.assert_array_equal(t.transform(data), data)

    def test_zero_cost(self):
        assert IdentityTransform(4).inference_cost(1000) == 0.0

    def test_wrong_dim_raises(self, data):
        t = IdentityTransform(5).fit(data[:, :5])
        with pytest.raises(DataValidationError):
            t.transform(data)


class TestStandardize:
    def test_zero_mean_unit_variance(self, data):
        t = StandardizeTransform(12).fit(data)
        out = t.transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_transform_before_fit_raises(self, data):
        with pytest.raises(DataValidationError):
            StandardizeTransform(12).transform(data)


class TestPCA:
    def test_output_dim(self, data):
        out = PCATransform(5).fit(data).transform(data)
        assert out.shape == (200, 5)

    def test_components_orthonormal(self, data):
        pca = PCATransform(5).fit(data)
        gram = pca.components @ pca.components.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_variance_ordering(self, data):
        out = PCATransform(5).fit(data).transform(data)
        variances = out.var(axis=0)
        assert np.all(np.diff(variances) <= 1e-8)

    def test_reconstruction_better_with_more_components(self, data):
        def recon_error(k):
            pca = PCATransform(k).fit(data)
            projected = pca.transform(data)
            back = projected @ pca.components + data.mean(axis=0)
            return float(np.mean((back - data) ** 2))

        assert recon_error(8) < recon_error(2)

    def test_too_many_components_raises(self, data):
        with pytest.raises(DataValidationError):
            PCATransform(100).fit(data)

    def test_default_name(self):
        assert PCATransform(32).name == "pca_32"


class TestRandomProjection:
    def test_shape_and_determinism(self, data):
        a = RandomProjectionTransform(6, seed=3).fit(data).transform(data)
        b = RandomProjectionTransform(6, seed=3).fit(data).transform(data)
        assert a.shape == (200, 6)
        np.testing.assert_array_equal(a, b)

    def test_approximately_preserves_distances(self, rng):
        x = rng.normal(size=(30, 200))
        projected = RandomProjectionTransform(100, seed=0).fit(x).transform(x)
        orig = np.linalg.norm(x[0] - x[1])
        proj = np.linalg.norm(projected[0] - projected[1])
        assert proj == pytest.approx(orig, rel=0.5)

    def test_dim_mismatch_raises(self, data, rng):
        t = RandomProjectionTransform(4, seed=0).fit(data)
        with pytest.raises(DataValidationError):
            t.transform(rng.normal(size=(5, 3)))


class TestNCA:
    def test_improves_nearest_neighbor_accuracy(self, rng):
        # Two informative dims + heavy noise dims: NCA should focus on
        # the informative subspace and beat raw 1NN.
        n = 300
        y = rng.integers(0, 2, n)
        informative = y[:, None] * 3.0 + rng.normal(size=(n, 2)) * 0.5
        noise = rng.normal(size=(n, 10)) * 5.0
        x = np.hstack([informative, noise])
        nca = NCATransform(2, num_epochs=10, seed=0)
        nca.fit(x[:200], y[:200])
        from repro.knn.brute_force import BruteForceKNN

        raw_err = BruteForceKNN().fit(x[:200], y[:200]).error(x[200:], y[200:])
        out_train = nca.transform(x[:200])
        out_test = nca.transform(x[200:])
        nca_err = BruteForceKNN().fit(out_train, y[:200]).error(out_test, y[200:])
        assert nca_err <= raw_err

    def test_requires_labels(self, data):
        with pytest.raises(DataValidationError, match="labels"):
            NCATransform(2).fit(data)

    def test_output_shape(self, rng):
        x = rng.normal(size=(60, 8))
        y = rng.integers(0, 3, 60)
        out = NCATransform(3, num_epochs=2, seed=0).fit(x, y).transform(x)
        assert out.shape == (60, 3)


class TestSimulatedEmbedding:
    @pytest.fixture()
    def projection(self, dataset):
        return dataset.oracle.latent_projection

    def test_fidelity_validation(self, projection):
        with pytest.raises(DataValidationError):
            SimulatedEmbedding("bad", 8, 1.5, 0.0, projection)

    def test_deterministic_transform(self, dataset, projection):
        emb = SimulatedEmbedding("e", 16, 0.7, 1e-4, projection, seed=0)
        emb.fit(dataset.train_x)
        a = emb.transform(dataset.test_x)
        b = emb.transform(dataset.test_x)
        np.testing.assert_array_equal(a, b)

    def test_transform_before_fit_raises(self, dataset, projection):
        emb = SimulatedEmbedding("e", 16, 0.7, 1e-4, projection, seed=0)
        with pytest.raises(DataValidationError):
            emb.transform(dataset.test_x)

    def test_higher_fidelity_gives_lower_1nn_error(self, dataset, projection):
        from repro.knn.brute_force import BruteForceKNN

        errors = {}
        for fidelity in (0.1, 0.95):
            emb = SimulatedEmbedding(
                f"e{fidelity}", 16, fidelity, 1e-4, projection, seed=0
            ).fit(dataset.train_x)
            train_f = emb.transform(dataset.train_x)
            test_f = emb.transform(dataset.test_x)
            errors[fidelity] = (
                BruteForceKNN()
                .fit(train_f, dataset.train_y)
                .error(test_f, dataset.test_y)
            )
        assert errors[0.95] < errors[0.1]

    def test_inference_cost_scales_linearly(self, projection):
        emb = SimulatedEmbedding("e", 8, 0.5, 2e-4, projection, seed=0)
        assert emb.inference_cost(1000) == pytest.approx(0.2)

    def test_wrong_raw_dim_raises(self, dataset, projection, rng):
        emb = SimulatedEmbedding("e", 8, 0.5, 1e-4, projection, seed=0)
        with pytest.raises(DataValidationError):
            emb.fit(rng.normal(size=(10, 3)))


class TestFittedCatalog:
    def test_duplicate_names_raise(self):
        with pytest.raises(DataValidationError, match="duplicate"):
            FittedCatalog([IdentityTransform(3), IdentityTransform(3)])

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            FittedCatalog([])

    def test_getitem_by_name(self, data):
        catalog = FittedCatalog([IdentityTransform(12), PCATransform(3)])
        catalog.fit(data)
        assert catalog["pca_3"].output_dim == 3
        with pytest.raises(KeyError):
            catalog["missing"]

    def test_total_inference_cost(self, dataset):
        projection = dataset.oracle.latent_projection
        catalog = FittedCatalog([
            SimulatedEmbedding("a", 8, 0.5, 1e-4, projection, seed=0),
            SimulatedEmbedding("b", 8, 0.5, 3e-4, projection, seed=1),
        ])
        assert catalog.total_inference_cost(100) == pytest.approx(0.04)
