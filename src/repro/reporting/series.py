"""Figure-series containers: named (x, y) lines plus text rendering.

Benchmarks regenerate each paper figure as a :class:`FigureData` — the
same information a plot would carry, in a form that prints cleanly in a
test log and can be asserted against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataValidationError
from repro.reporting.tables import render_table


@dataclass
class Series:
    """One labeled line of a figure."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if len(self.x) != len(self.y):
            raise DataValidationError(
                f"series {self.label!r}: x and y length mismatch"
            )

    @property
    def final_y(self) -> float:
        return float(self.y[-1]) if len(self.y) else float("nan")


@dataclass
class FigureData:
    """All series of one reproduced figure, with provenance notes."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, x, y) -> Series:
        new = Series(label, x, y)
        self.series.append(new)
        return new

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def to_text(self, max_points: int = 12) -> str:
        """Compact text rendering: one table row per (series, point)."""
        rows = []
        for series in self.series:
            indices = (
                range(len(series.x))
                if len(series.x) <= max_points
                else np.linspace(0, len(series.x) - 1, max_points).astype(int)
            )
            for i in indices:
                rows.append([series.label, float(series.x[i]), float(series.y[i])])
        table = render_table(
            ["series", self.x_label, self.y_label],
            rows,
            title=f"{self.figure_id}: {self.title}",
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return table
