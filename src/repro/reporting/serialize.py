"""JSON serialization of reports and traces.

A feasibility report and a cleaning cost trace are the two artifacts a
user would archive or feed into other tooling; this module converts both
to plain-JSON-compatible dictionaries (and back-of-the-envelope loaders
are intentionally *not* provided — the dictionaries are an export
format, not a persistence layer for live objects).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.cleaning.strategies import CostTrace
from repro.core.result import FeasibilityReport


def _plain(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to JSON-native types."""
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and value != value:  # NaN
        return None
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def report_to_dict(report: FeasibilityReport) -> dict[str, Any]:
    """Flatten a :class:`FeasibilityReport` into a JSON-compatible dict."""
    payload: dict[str, Any] = {
        "dataset": report.dataset_name,
        "target_accuracy": report.target_accuracy,
        "signal": report.signal.value,
        "ber_estimate": report.ber_estimate,
        "best_accuracy": report.best_accuracy,
        "best_transform": report.best_transform,
        "gap": report.gap,
        "strategy": report.strategy,
        "total_sim_cost_seconds": report.total_sim_cost_seconds,
        "wall_seconds": report.wall_seconds,
        "per_transform": [
            {
                "transform": result.transform_name,
                "samples_used": result.samples_used,
                "one_nn_error": result.one_nn_error,
                "estimate": result.estimate.value,
                "sim_cost_seconds": result.sim_cost_seconds,
            }
            for result in report.per_transform
        ],
        "curves": {
            name: {
                "sizes": curve.sizes,
                "errors": curve.errors,
                "estimates": curve.estimates,
            }
            for name, curve in report.curves.items()
        },
    }
    if report.extrapolation is not None:
        extrapolation = report.extrapolation
        payload["extrapolation"] = {
            "transform": extrapolation.transform_name,
            "target_error": extrapolation.target_error,
            "required_samples": (
                None
                if not np.isfinite(extrapolation.required_samples)
                else extrapolation.required_samples
            ),
            "additional_samples": (
                None
                if not np.isfinite(extrapolation.additional_samples)
                else extrapolation.additional_samples
            ),
            "trustworthy": extrapolation.trustworthy,
            "fit_alpha": extrapolation.fit.alpha,
            "fit_intercept": extrapolation.fit.intercept,
            "fit_r_squared": extrapolation.fit.r_squared,
        }
    return _plain(payload)


def trace_to_dict(trace: CostTrace) -> dict[str, Any]:
    """Flatten a cleaning :class:`CostTrace` into a JSON-compatible dict."""
    return _plain(
        {
            "strategy": trace.strategy,
            "reached_target": trace.reached_target,
            "total_dollars": trace.total_dollars,
            "num_expensive_runs": trace.num_expensive_runs,
            "points": [
                {
                    "action": point.action,
                    "fraction_examined": point.fraction_examined,
                    "dollars": point.dollars,
                    "value": point.value,
                }
                for point in trace.points
            ],
        }
    )


def report_to_json(report: FeasibilityReport, indent: int = 2) -> str:
    """Render a report as a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent)


def trace_to_json(trace: CostTrace, indent: int = 2) -> str:
    """Render a cost trace as a JSON string."""
    return json.dumps(trace_to_dict(trace), indent=indent)
