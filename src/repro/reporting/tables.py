"""Aligned ASCII table rendering used by the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import DataValidationError


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned text table with a header rule.

    Floats are formatted compactly; all other values via ``str``.
    """
    if not headers:
        raise DataValidationError("headers must not be empty")
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    for i, row in enumerate(formatted):
        if len(row) != len(headers):
            raise DataValidationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in formatted), 1)
        if formatted
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
