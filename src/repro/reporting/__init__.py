"""Plain-text rendering and JSON export of tables, figures and reports."""

from repro.reporting.serialize import (
    report_to_dict,
    report_to_json,
    trace_to_dict,
    trace_to_json,
)
from repro.reporting.series import FigureData, Series
from repro.reporting.tables import render_table

__all__ = [
    "FigureData",
    "Series",
    "render_table",
    "report_to_dict",
    "report_to_json",
    "trace_to_dict",
    "trace_to_json",
]
