"""Additional numerical guidance (Section IV-C).

The 1NN error curve is approximated by the log-linear scaling law of
Eq. 10, ``log R(n) = -alpha * log(n) + c``, fitted by least squares on
the recorded convergence curve.  Inverting the fit gives the estimated
number of training samples needed to push the error down to a target —
the "how much more data" aid shown in Figures 7 and 8.

The paper stresses that this fit converges to zero error as n grows, so
any target eventually looks reachable: the extrapolation must only be
trusted when the required sample count is close to the observed range.
:class:`ExtrapolationResult.trustworthy` encodes that rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError

#: Extrapolations beyond this multiple of the observed maximum size are
#: flagged untrustworthy (the paper's 260K-vs-50K discussion).
TRUST_HORIZON = 4.0


@dataclass(frozen=True)
class LogLinearFit:
    """The fitted Eq. 10 law: ``log R(n) = -alpha log n + intercept``."""

    alpha: float
    intercept: float
    r_squared: float
    num_points: int

    def predict_error(self, num_samples: float) -> float:
        """Predicted 1NN error at a given training-set size."""
        if num_samples <= 0:
            raise ConvergenceError("num_samples must be positive")
        return float(
            np.exp(self.intercept - self.alpha * np.log(num_samples))
        )

    def samples_for_error(self, target_error: float) -> float:
        """Training-set size at which the fit reaches ``target_error``."""
        if not 0.0 < target_error < 1.0:
            raise ConvergenceError(
                f"target_error must be in (0, 1), got {target_error}"
            )
        if self.alpha <= 0:
            return float("inf")
        return float(
            np.exp((self.intercept - np.log(target_error)) / self.alpha)
        )


@dataclass(frozen=True)
class ExtrapolationResult:
    """Samples-to-target estimate for one transformation."""

    transform_name: str
    target_error: float
    current_samples: int
    current_error: float
    required_samples: float
    additional_samples: float
    trustworthy: bool
    fit: LogLinearFit

    def describe(self) -> str:
        if np.isinf(self.required_samples):
            return (
                f"{self.transform_name}: flat convergence, target error "
                f"{self.target_error:.4f} unreachable by adding data"
            )
        qualifier = "" if self.trustworthy else " (NOT trustworthy: far beyond data)"
        return (
            f"{self.transform_name}: ~{self.additional_samples:,.0f} more "
            f"samples to reach error {self.target_error:.4f}{qualifier}"
        )


def fit_log_linear(
    sizes: np.ndarray, errors: np.ndarray, min_points: int = 3
) -> LogLinearFit:
    """Least-squares fit of Eq. 10 on the positive part of a curve."""
    sizes = np.asarray(sizes, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if len(sizes) != len(errors):
        raise ConvergenceError("sizes and errors length mismatch")
    mask = (sizes > 0) & (errors > 0)
    sizes, errors = sizes[mask], errors[mask]
    if len(sizes) < min_points:
        raise ConvergenceError(
            f"need at least {min_points} positive curve points, got {len(sizes)}"
        )
    log_n = np.log(sizes)
    log_r = np.log(errors)
    design = np.column_stack([-log_n, np.ones_like(log_n)])
    coeffs, _, _, _ = np.linalg.lstsq(design, log_r, rcond=None)
    alpha, intercept = float(coeffs[0]), float(coeffs[1])
    predicted = design @ coeffs
    residual = float(np.sum((log_r - predicted) ** 2))
    total = float(np.sum((log_r - log_r.mean()) ** 2))
    r_squared = 1.0 if total == 0 else max(0.0, 1.0 - residual / total)
    return LogLinearFit(alpha, intercept, r_squared, len(sizes))


def extrapolate_samples_needed(
    transform_name: str,
    sizes: np.ndarray,
    errors: np.ndarray,
    target_error: float,
    trust_horizon: float = TRUST_HORIZON,
) -> ExtrapolationResult:
    """Eq. 10 inversion: how many more samples until the target error?

    The reported error target is the raw 1NN error (the fit's quantity);
    callers converting from a target *accuracy* should pass
    ``1 - target_accuracy``.
    """
    fit = fit_log_linear(sizes, errors)
    current_samples = int(sizes[-1])
    current_error = float(errors[-1])
    if current_error <= target_error:
        required = float(current_samples)
    else:
        required = fit.samples_for_error(target_error)
    additional = max(0.0, required - current_samples)
    trustworthy = bool(
        np.isfinite(required) and required <= trust_horizon * current_samples
    )
    return ExtrapolationResult(
        transform_name=transform_name,
        target_error=target_error,
        current_samples=current_samples,
        current_error=current_error,
        required_samples=required,
        additional_samples=additional,
        trustworthy=trustworthy,
        fit=fit,
    )
