"""Staged execution engine: pluggable parallel backends for arm pulls.

Successive halving's rounds (and uniform/full allocation trivially) are
embarrassingly parallel across surviving arms: within a round every arm
pulls to the same cumulative sample target using only its own state, and
the tangent variant's elimination threshold is fixed *before* any
candidate is pulled.  The :class:`RoundScheduler` exploits exactly that
structure — independent per-arm pull plans issued through a pluggable
:class:`ExecutionBackend` — while preserving bit-exact results versus
serial execution:

- each arm's pull sequence depends only on its own state and the round
  target, never on sibling progress — pulls are fully deterministic
  today, and any future stochastic step must draw from the arm's own
  pre-spawned stream (:func:`spawn_arm_streams`) so the guarantee
  survives by construction;
- results are reduced in the caller-supplied arm order, so sorting,
  tie-breaking and winner selection see the same sequence regardless of
  completion order.

Backends:

``serial``
    Plain loop; the reference semantics.
``thread``
    :class:`~concurrent.futures.ThreadPoolExecutor`; numpy releases the
    GIL inside BLAS kernels, so distance blocks and embedding matmuls of
    different arms overlap on multi-core hosts.  Shares the
    :class:`~repro.transforms.store.EmbeddingStore` in-process.
``process``
    :class:`~concurrent.futures.ProcessPoolExecutor`; arms are pickled
    to workers, mutated there, and their state is merged back by
    identity-preserving ``__dict__`` replacement.  When a
    sharing-enabled :class:`~repro.transforms.store.EmbeddingStore` is
    bound (:meth:`ExecutionBackend.bind_store` — done by
    :class:`~repro.core.snoopy.Snoopy` before the first round), workers
    are initialized with the store's attach handle: hot blocks are read
    zero-copy from the parent's shared-memory segments, misses are
    served from (and written to) the shared spill directory, and the
    arm's training pool crosses the boundary as a
    :class:`~repro.transforms.store.SharedArrayRef` instead of a
    pickled payload — so a warm store means zero transform calls and
    near-zero pickled bytes per pull.  Without a bound store, workers
    fall back to cold config-only caches (the pre-sharing behaviour).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike

_BACKENDS: dict[str, type["ExecutionBackend"]] = {}


def register_backend(name: str):
    """Class decorator adding an :class:`ExecutionBackend` to the registry."""

    def wrap(cls: type["ExecutionBackend"]) -> type["ExecutionBackend"]:
        cls.name = name
        _BACKENDS[name] = cls
        return cls

    return wrap


def backend_names() -> tuple[str, ...]:
    """Registered execution-backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def make_backend(
    name: str, max_workers: int | None = None
) -> "ExecutionBackend":
    """Instantiate a registered backend by name."""
    cls = _BACKENDS.get(name)
    if cls is None:
        raise DataValidationError(
            f"unknown execution backend {name!r}; "
            f"expected one of {backend_names()}"
        )
    return cls(max_workers=max_workers)


def default_max_workers() -> int:
    """Worker default: the cores this process may actually run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ExecutionBackend(ABC):
    """Executes a batch of independent tasks and returns ordered results."""

    name: str = "abstract"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise DataValidationError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers or default_max_workers()

    @abstractmethod
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order."""

    def bind_store(self, store) -> None:
        """Attach an :class:`EmbeddingStore` workers should share.

        A no-op for in-process backends (serial/thread share the store
        object directly); the process backend uses it to initialize
        workers with an attach handle.  Must be called before the first
        :meth:`map` that should benefit (the pool is built lazily).
        """

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


@register_backend("serial")
class SerialBackend(ExecutionBackend):
    """Reference implementation: a plain in-order loop."""

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared lazy-pool plumbing for the thread/process backends."""

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1:
            # No parallelism to gain; skip pool startup and pickling.
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


@register_backend("thread")
class ThreadBackend(_PoolBackend):
    """Thread pool; shares memory (and the embedding store) in-process."""

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.max_workers)


def _init_worker_store(state: dict) -> None:
    """Process-pool initializer: pre-attach the shared store handle.

    Materializing the handle once per worker (instead of per unpickled
    arm) gives every arm in the worker one shared attach cache and one
    digest cache; the registry in :mod:`repro.transforms.store` then
    dedupes each arm's unpickled store to this instance.
    """
    from repro.transforms.store import attach_handle

    attach_handle(state)


@register_backend("process")
class ProcessBackend(_PoolBackend):
    """Process pool; tasks and results cross a pickle boundary."""

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._store_state = None

    def bind_store(self, store) -> None:
        if store is not None and store.can_share_arrays:
            self._store_state = store.handle_state()

    def _make_pool(self):
        if self._store_state is not None:
            return ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker_store,
                initargs=(self._store_state,),
            )
        return ProcessPoolExecutor(max_workers=self.max_workers)


class ShardedScanExecutor:
    """Fans per-shard inverted-list scans out over an execution backend.

    The sharded ANN tier (:mod:`repro.knn.pq` / :mod:`repro.knn.ivf`)
    splits each query batch into one task per list shard; this executor
    runs those tasks through an :class:`ExecutionBackend` — by default
    its own :class:`ProcessBackend` sharing the engine's worker
    semantics — and, when a sharing-enabled
    :class:`~repro.transforms.store.EmbeddingStore` is supplied, binds
    it so workers attach the published
    :class:`~repro.transforms.store.SharedArrayRef` list payloads
    zero-copy instead of receiving pickled copies.

    The executor itself is *not* picklable and never crosses a process
    boundary: :class:`~repro.core.snoopy.Snoopy` only injects it into
    arm options for in-process execution backends (serial/thread),
    where the arm objects stay on this side of any pool.

    Determinism is the index's contract, not the executor's: shard
    tasks return per-shard top-``t`` pools ordered by the
    ``(distance, index)`` total order and the coordinator merges them
    with the same order, so results are bit-identical for any shard
    count — this class only supplies the transport.
    """

    def __init__(
        self,
        backend: ExecutionBackend | None = None,
        store=None,
        max_workers: int | None = None,
    ):
        self.backend = backend or ProcessBackend(max_workers=max_workers)
        self._owns_backend = backend is None
        self.store = store
        if store is not None:
            self.backend.bind_store(store)

    @property
    def store_state(self) -> dict | None:
        """Attach-handle state shard tasks ship to workers (or None)."""
        if self.store is not None and self.store.can_share_arrays:
            return self.store.handle_state()
        return None

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Run the shard tasks; results in input order."""
        return self.backend.map(fn, tasks)

    def close(self) -> None:
        """Shut down the backend if this executor created it."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ShardedScanExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedScanExecutor(backend={self.backend!r}, "
            f"shared_store={self.store is not None})"
        )

    def __reduce__(self):
        raise TypeError(
            "ShardedScanExecutor is process-local and cannot be pickled; "
            "construct one per process instead"
        )


# ----------------------------------------------------------------------
# Round scheduling over transformation arms
# ----------------------------------------------------------------------


def _run_arm_task(task):
    """Top-level (picklable) task body: invoke one arm method.

    Returns the arm alongside the method result so process workers ship
    their mutated copy back for merging.
    """
    arm, method, kwargs = task
    return arm, getattr(arm, method)(**kwargs)


#: Arm attributes that keep the *parent's* object across a process-backend
#: merge.  All are semantically immutable during pulls, and their identity
#: is load-bearing: the shared store keys blocks by transform object and
#: caches digests by pool-array object, so adopting unpickled clones would
#: orphan warm cache entries (and leak a token per round).
_PRESERVE_ON_MERGE = ("store", "transform", "_train_x", "_train_y")


def _merge_arm(original, returned) -> None:
    """Adopt a worker copy's state while preserving object identity.

    Thread/serial backends mutate arms in place (``returned is
    original``) and this is a no-op.  Process backends return pickled
    copies; the original object adopts the copy's ``__dict__`` so every
    existing reference (selection results, run state) stays valid, while
    the parent-side objects named in :data:`_PRESERVE_ON_MERGE` survive
    the swap (worker copies carry an attach handle — or a cold
    config-only store pre-sharing — and cloned transforms/pools with
    identical content).
    """
    if returned is original:
        return
    preserved = {
        name: original.__dict__[name]
        for name in _PRESERVE_ON_MERGE
        if name in original.__dict__
    }
    original.__dict__.clear()
    original.__dict__.update(returned.__dict__)
    original.__dict__.update(preserved)


class RoundScheduler:
    """Issues independent arm pulls concurrently within a round.

    The scheduler is deliberately dumb: it never decides *what* to pull
    — allocation strategies do — only runs a batch of per-arm pull plans
    through the configured backend and merges state back in arm order.
    """

    def __init__(self, backend: ExecutionBackend | None = None):
        self.backend = backend or SerialBackend()

    def run(self, arms: Sequence, method: str, **kwargs) -> list:
        """Invoke ``arm.<method>(**kwargs)`` on every arm; ordered results."""
        if not arms:
            return []
        tasks = [(arm, method, kwargs) for arm in arms]
        results = self.backend.map(_run_arm_task, tasks)
        values = []
        for arm, (returned, value) in zip(arms, results):
            _merge_arm(arm, returned)
            values.append(value)
        return values

    def pull_to(self, arms: Sequence, target: int, pull_size: int) -> list:
        """Pull every arm to ``target`` cumulative samples concurrently."""
        return self.run(arms, "pull_to", target=target, pull_size=pull_size)

    def pull_with_tangent(
        self, arms: Sequence, target: int, pull_size: int, threshold: float
    ) -> list[bool]:
        """Algorithm 2 candidate pulls; returns per-arm survival flags."""
        return self.run(
            arms,
            "pull_with_tangent",
            target=target,
            pull_size=pull_size,
            threshold=threshold,
        )

    def exhaust(self, arms: Sequence, pull_size: int = 512) -> list:
        """Feed every arm its entire remaining training pool."""
        return self.run(arms, "exhaust", pull_size=pull_size)

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def spawn_arm_streams(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Independent per-arm RNG streams, fixed regardless of schedule.

    Streams are spawned from one :class:`numpy.random.SeedSequence` up
    front and handed to the arms as their designated randomness source.
    Nothing in the current pull path consumes randomness — results are
    deterministic outright — but any future stochastic arm step must
    draw from its own stream (never a shared generator), so an arm sees
    identical draws whether pulls run serially, on threads, or in worker
    processes.
    """
    if count < 0:
        raise DataValidationError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(
            int(seed.integers(0, 2**63 - 1))
        )
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
