"""The paper's primary contribution: the Snoopy feasibility-study system.

- :mod:`repro.core.snoopy` — the system: catalog in, binary signal out.
- :mod:`repro.core.result` — report and convergence-curve containers.
- :mod:`repro.core.aggregation` — min-aggregation and the regime analysis
  of Section IV-B (Δf, δf, γ, Conditions 8/9).
- :mod:`repro.core.guidance` — the additional numerical aids of Section
  IV-C: the log-linear convergence fit and the samples-to-target
  extrapolation.
- :mod:`repro.core.incremental` — real-time re-runs after label cleaning.
"""

from repro.core.aggregation import (
    RegimeQuantities,
    aggregate_min,
    condition_8_holds,
    condition_9_holds,
    estimate_regime_quantities,
)
from repro.core.drift import (
    DriftAwareMonitor,
    DriftEvent,
    PageHinkleyDetector,
    SlidingWindowBER,
)
from repro.core.engine import (
    ExecutionBackend,
    ProcessBackend,
    RoundScheduler,
    SerialBackend,
    ThreadBackend,
    backend_names,
    make_backend,
    spawn_arm_streams,
)
from repro.core.guidance import (
    ExtrapolationResult,
    LogLinearFit,
    extrapolate_samples_needed,
    fit_log_linear,
)
from repro.core.incremental import IncrementalState
from repro.core.result import (
    BEREstimate,
    ConvergenceCurve,
    FeasibilityReport,
    FeasibilitySignal,
    TransformResult,
)
from repro.core.snoopy import RunContext, Snoopy, SnoopyConfig

__all__ = [
    "BEREstimate",
    "ConvergenceCurve",
    "DriftAwareMonitor",
    "DriftEvent",
    "ExecutionBackend",
    "PageHinkleyDetector",
    "ProcessBackend",
    "RoundScheduler",
    "SerialBackend",
    "SlidingWindowBER",
    "ThreadBackend",
    "ExtrapolationResult",
    "FeasibilityReport",
    "FeasibilitySignal",
    "IncrementalState",
    "LogLinearFit",
    "RegimeQuantities",
    "RunContext",
    "Snoopy",
    "SnoopyConfig",
    "TransformResult",
    "aggregate_min",
    "backend_names",
    "make_backend",
    "spawn_arm_streams",
    "condition_8_holds",
    "condition_9_holds",
    "estimate_regime_quantities",
    "extrapolate_samples_needed",
    "fit_log_linear",
]
