"""The Snoopy system (Sections III–V).

Given a dataset and a target accuracy, Snoopy:

1. wraps every catalog transformation in a streamed arm (inference +
   incremental 1NN),
2. allocates the sample budget across arms with successive halving (with
   or without tangent early stopping), uniform allocation, or full
   evaluation,
3. converts each arm's 1NN error into the Cover–Hart lower bound and
   aggregates by taking the minimum,
4. emits the binary REALISTIC/UNREALISTIC signal plus the additional
   guidance of Section IV-C (convergence curves, gap to target, Eq. 10
   samples-to-target extrapolation), and
5. retains per-transformation neighbor caches so that re-running after
   label cleaning is O(test) (Section V, Figure 13).

A run is a staged pipeline — **prepare → allocate → aggregate → guide**
— over a shared :class:`RunContext`.  The allocate phase dispatches
independent arm pulls through a :class:`repro.core.engine.RoundScheduler`
(serial, thread or process backend; bit-identical results), and every
embedding flows through a shared
:class:`repro.transforms.store.EmbeddingStore`, so a second strategy run
or a post-cleaning re-run never recomputes a transform output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bandit.arms import TransformationArm
from repro.bandit.successive_halving import SelectionResult, successive_halving
from repro.bandit.uniform import uniform_allocation
from repro.core.aggregation import aggregate_min
from repro.core.engine import (
    RoundScheduler,
    ShardedScanExecutor,
    backend_names,
    make_backend,
    spawn_arm_streams,
)
from repro.core.guidance import ExtrapolationResult, extrapolate_samples_needed
from repro.core.incremental import IncrementalState
from repro.core.result import (
    ConvergenceCurve,
    FeasibilityReport,
    FeasibilitySignal,
    TransformResult,
)
from repro.estimators.base import BEREstimate
from repro.estimators.confidence import ber_estimate_interval
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import ConvergenceError, DataValidationError
from repro.knn.incremental import NeighborCache
from repro.knn.kernels import DEFAULT_COMPUTE_DTYPE, resolve_dtype
from repro.rng import ensure_rng
from repro.transforms.base import fit_on
from repro.transforms.store import DEFAULT_CACHE_BYTES, EmbeddingStore

STRATEGIES = (
    "successive_halving_tangent",
    "successive_halving",
    "uniform",
    "full",
    "perfect",
)


@dataclass
class SnoopyConfig:
    """Tunable behaviour of a Snoopy run.

    Attributes
    ----------
    strategy:
        Allocation strategy; "successive_halving_tangent" is the paper's
        best-performing configuration and the default.
    budget:
        Total samples that may be embedded across all arms; ``None``
        chooses ``num_train * ceil(log2(num_arms))`` so the winning arm
        can reach the full training pool.
    pull_size:
        Samples per pull (the batch-size hyper-parameter of Section V);
        ``None`` uses 5% of the training pool.
    metric:
        Distance metric for the 1NN evaluators; "auto" selects cosine
        dissimilarity for text datasets and euclidean otherwise
        (following the paper's per-modality convention).
    knn_backend:
        Nearest-neighbor backend for the streamed evaluators, resolved
        through :func:`repro.knn.base.make_index`; ``None`` (default)
        keeps the built-in exact pairwise scan.  ``"ivf_pq"`` selects
        the compressed product-quantization index: each arm's pulled
        rows are encoded-on-append into uint8 codes, searched by ADC
        tables over the probed coarse lists and exactly re-ranked (see
        :mod:`repro.knn.pq`), cutting the per-arm corpus memory ~16-32x.
    pq_m, pq_nbits, pq_dim, nprobe, rerank:
        Approximate-search knobs forwarded to the backend (``nprobe``
        also applies to ``"ivf"``); ``None`` keeps each backend's
        default.  ``pq_dim`` enables the projection that keeps PQ
        subspaces small on wide embeddings.  See
        :class:`repro.knn.pq.IVFPQIndex`.
    pq_packed:
        Store PQ codes two-per-byte and scan with the uint8 fast-scan
        kernel (requires ``pq_nbits=4`` and a positive re-rank depth to
        take effect; see :mod:`repro.knn.pq`).  ``"ivf_pq"`` only.
    knn_shards:
        Shard the inverted lists of the "ivf"/"ivf_pq" backend across
        that many scan tasks, merged bit-identically for any shard
        count (see :mod:`repro.knn.sharding`).  With the "serial" or
        "thread" execution backend the shards run on a dedicated
        process pool (:class:`~repro.core.engine.ShardedScanExecutor`)
        attached to the shared store; under the "process" backend the
        arms already occupy the pool, so shard tasks run inline within
        each worker (same results, intra-worker parallelism only).
    top_up_winner:
        After selection, feed the winner the rest of the training pool.
    extrapolate:
        Attach the Eq. 10 samples-to-target extrapolation to the report.
    perfect_arm_name:
        Required when ``strategy == "perfect"``: evaluate only this arm
        (the oracle lower-bound strategy of Figure 12).
    execution_backend:
        How independent arm pulls run within a round: "serial" (default),
        "thread" or "process".  Results are bit-identical across
        backends; only wall-clock changes.
    max_workers:
        Worker cap for parallel backends; ``None`` uses the cores the
        process may run on.
    embedding_cache_bytes:
        Byte budget of the shared :class:`EmbeddingStore`'s hot
        (in-memory) tier (default 256 MiB).  ``0`` or ``None`` disables
        embedding memoization.
    store_dir:
        Spill/persistence directory for the :class:`EmbeddingStore`.
        When set, every cached block is also written to a
        content-addressed, digest-verified file there: evictions move
        blocks to disk instead of discarding them (corpora larger than
        the hot budget stream through), and a later run — or another
        tenant — pointed at the same directory warm-starts with zero
        transform calls.  ``None`` (default) keeps the cache
        memory-only (the ``process`` backend then uses an ephemeral
        spill dir, removed when the store closes).
    store_spill_bytes:
        Byte budget of the spill tier (default 1 GiB); the
        least-recently-used block files are pruned beyond it.
    compute_dtype:
        Precision of every distance evaluation and of the cached
        embedding blocks: "float32" (default — single-precision BLAS,
        roughly twice the 1NN throughput and half the bytes per cached
        embedding) or "float64" (strict mode, bit-compatible with the
        historical pipeline; choose it when downstream analysis
        compares errors at 1e-7 resolution or the embeddings span
        extreme dynamic ranges).  Results are deterministic for either
        choice; the two modes agree on 1NN errors up to distance ties
        within float32 resolution.
    """

    strategy: str = "successive_halving_tangent"
    budget: int | None = None
    pull_size: int | None = None
    metric: str = "auto"
    knn_backend: str | None = None
    pq_m: int | None = None
    pq_nbits: int | None = None
    pq_dim: int | None = None
    nprobe: int | None = None
    rerank: int | None = None
    pq_packed: bool = False
    knn_shards: int | None = None
    top_up_winner: bool = True
    extrapolate: bool = True
    perfect_arm_name: str | None = None
    seed: int | None = 0
    execution_backend: str = "serial"
    max_workers: int | None = None
    embedding_cache_bytes: int | None = DEFAULT_CACHE_BYTES
    store_dir: str | None = None
    store_spill_bytes: int | None = None
    compute_dtype: str = DEFAULT_COMPUTE_DTYPE

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise DataValidationError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        if self.strategy == "perfect" and not self.perfect_arm_name:
            raise DataValidationError(
                "strategy 'perfect' requires perfect_arm_name"
            )
        if self.execution_backend not in backend_names():
            raise DataValidationError(
                f"unknown execution backend {self.execution_backend!r}; "
                f"expected one of {backend_names()}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise DataValidationError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if (
            self.embedding_cache_bytes is not None
            and self.embedding_cache_bytes < 0
        ):
            raise DataValidationError(
                "embedding_cache_bytes must be non-negative, "
                f"got {self.embedding_cache_bytes}"
            )
        if self.store_spill_bytes is not None and self.store_spill_bytes < 1:
            raise DataValidationError(
                "store_spill_bytes must be positive, "
                f"got {self.store_spill_bytes}"
            )
        if self.store_dir is not None and not self.embedding_cache_bytes:
            raise DataValidationError(
                "store_dir requires embedding memoization; "
                "set embedding_cache_bytes > 0"
            )
        resolve_dtype(self.compute_dtype)  # fail fast on an unknown dtype
        for knob in ("pq_m", "pq_nbits", "pq_dim", "nprobe", "rerank",
                     "knn_shards"):
            value = getattr(self, knob)
            minimum = 0 if knob == "rerank" else 1
            if value is not None and value < minimum:
                raise DataValidationError(
                    f"{knob} must be >= {minimum}, got {value}"
                )
        # A knob the selected backend ignores would silently vanish —
        # the run would NOT use the configuration the caller believes
        # it benchmarked — so reject the combination outright.
        consumed = {
            "ivf_pq": ("pq_m", "pq_nbits", "pq_dim", "nprobe", "rerank",
                       "knn_shards"),
            "ivf": ("nprobe", "knn_shards"),
        }.get(self.knn_backend, ())
        stray = [
            knob
            for knob in ("pq_m", "pq_nbits", "pq_dim", "nprobe", "rerank",
                         "knn_shards")
            if getattr(self, knob) is not None and knob not in consumed
        ]
        if stray:
            raise DataValidationError(
                f"knob(s) {stray} have no effect with "
                f"knn_backend={self.knn_backend!r}; set "
                f"knn_backend='ivf_pq' (or 'ivf' for nprobe/knn_shards) "
                f"or unset them"
            )
        if self.pq_packed and self.knn_backend != "ivf_pq":
            raise DataValidationError(
                "pq_packed has no effect with "
                f"knn_backend={self.knn_backend!r}; it requires "
                "knn_backend='ivf_pq' (with pq_nbits=4)"
            )

    def knn_backend_options(self) -> dict:
        """Backend constructor kwargs implied by the set ANN knobs.

        Only knobs the selected backend understands are forwarded, and
        only when explicitly set, so each backend's own defaults apply
        otherwise.
        """
        if self.knn_backend == "ivf_pq":
            knobs = ("pq_m", "pq_nbits", "pq_dim", "nprobe", "rerank")
        elif self.knn_backend == "ivf":
            knobs = ("nprobe",)
        else:
            return {}
        options = {
            knob: getattr(self, knob)
            for knob in knobs
            if getattr(self, knob) is not None
        }
        if self.pq_packed:
            options["pq_packed"] = True
        if self.knn_shards is not None:
            options["shards"] = self.knn_shards
        return options


@dataclass
class RunContext:
    """Mutable state threaded through the run phases.

    ``prepare`` fills the inputs (metric, permutation, arms, scheduler),
    ``allocate`` the :class:`SelectionResult`, ``aggregate`` the
    per-transform estimates/curves and the winning aggregate, and
    ``guide`` consumes everything to assemble the report.
    """

    dataset: object
    target_accuracy: float
    config: SnoopyConfig
    started: float
    metric: str = ""
    order: np.ndarray | None = None
    arms: list[TransformationArm] = field(default_factory=list)
    scheduler: RoundScheduler | None = None
    scan_executor: ShardedScanExecutor | None = None
    selection: SelectionResult | None = None
    estimates: dict[str, BEREstimate] = field(default_factory=dict)
    per_transform: list[TransformResult] = field(default_factory=list)
    curves: dict[str, ConvergenceCurve] = field(default_factory=dict)
    best_name: str = ""
    best_estimate: BEREstimate | None = None

    @property
    def pull_size(self) -> int:
        return self.config.pull_size or max(16, self.dataset.num_train // 20)


@dataclass
class _RunState:
    """Internal artifacts of the last run, kept for incremental re-runs."""

    arms: list[TransformationArm]
    order: np.ndarray  # permutation: shuffled position -> original index
    num_classes: int
    dataset_name: str = ""
    caches: dict[str, NeighborCache] = field(default_factory=dict)


class Snoopy:
    """The feasibility-study system.

    Parameters
    ----------
    catalog:
        Iterable of :class:`FeatureTransform` (e.g. a
        :class:`repro.transforms.FittedCatalog`); fitted lazily on the
        training split if needed.
    config:
        A :class:`SnoopyConfig`; defaults are the paper's configuration.
    store:
        Optional externally shared :class:`EmbeddingStore`.  When
        omitted, the system owns one sized by
        ``config.embedding_cache_bytes`` and keeps it across ``run``
        calls, so successive strategy runs over the same catalog and
        data re-embed nothing.
    """

    def __init__(
        self,
        catalog,
        config: SnoopyConfig | None = None,
        store: EmbeddingStore | None = None,
    ):
        self.catalog = list(catalog)
        if not self.catalog:
            raise DataValidationError("catalog must contain at least one transform")
        self.config = config or SnoopyConfig()
        self._owns_store = False
        if store is not None:
            self.store: EmbeddingStore | None = store
        elif self.config.embedding_cache_bytes:
            self.store = EmbeddingStore(
                self.config.embedding_cache_bytes,
                dtype=self.config.compute_dtype,
                store_dir=self.config.store_dir,
                spill_bytes=self.config.store_spill_bytes,
            )
            self._owns_store = True
        else:
            self.store = None
        self._state: _RunState | None = None

    def close(self) -> None:
        """Release the owned store's shared segments/spill dir; idempotent.

        Externally supplied stores are left alone — their owner decides
        when sharing resources are released.
        """
        if self.store is not None and self._owns_store:
            self.store.close()

    def __enter__(self) -> "Snoopy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(self, dataset, target_accuracy: float) -> FeasibilityReport:
        """Perform the feasibility study and return the full report.

        The run is a staged pipeline over a :class:`RunContext`:
        prepare → allocate → aggregate → guide.
        """
        ctx = self._prepare(dataset, target_accuracy)
        try:
            self._allocate(ctx)
        finally:
            # Exception-safe epilogue: shut down the worker pools and
            # unpin the shared training-pool segments even when an
            # allocation raises, so no /dev/shm bytes outlive the run.
            ctx.scheduler.close()
            if ctx.scan_executor is not None:
                ctx.scan_executor.close()
            if self.store is not None:
                self.store.release_shared()
        self._aggregate(ctx)
        report = self._guide(ctx)
        self._state = _RunState(
            arms=ctx.arms,
            order=ctx.order,
            num_classes=dataset.num_classes,
            dataset_name=dataset.name,
        )
        return report

    def incremental_state(self) -> IncrementalState:
        """Neighbor-cache state of the last run, for real-time re-runs.

        Nearest-neighbor indices are translated back to *original*
        training-set positions, so cleaning indices from the dataset
        space apply directly.
        """
        if self._state is None:
            raise DataValidationError("no completed run; call run() first")
        state = self._state
        if not state.caches:
            for arm in state.arms:
                shuffled_nn = arm.evaluator.nearest_indices
                original_nn = state.order[shuffled_nn]
                train_labels = np.empty(len(state.order), dtype=np.int64)
                train_labels[state.order] = arm.train_labels
                state.caches[arm.name] = NeighborCache(
                    original_nn,
                    train_labels,
                    arm.test_labels,
                )
        return IncrementalState(dict(state.caches), state.num_classes)

    # ------------------------------------------------------------------
    # Phase 1: prepare — validate, permute, fit, build arms + scheduler
    # ------------------------------------------------------------------

    def _prepare(self, dataset, target_accuracy: float) -> RunContext:
        if not 0.0 < target_accuracy <= 1.0:
            raise DataValidationError(
                f"target_accuracy must be in (0, 1], got {target_accuracy}"
            )
        config = self.config
        ctx = RunContext(
            dataset=dataset,
            target_accuracy=target_accuracy,
            config=config,
            started=time.perf_counter(),
        )
        ctx.metric = self._resolve_metric(dataset)
        rng = ensure_rng(config.seed)
        ctx.order = rng.permutation(dataset.num_train)
        # A dedicated scan pool parallelizes the per-arm ANN scans when
        # the arms themselves run in-process (serial/thread backends).
        # Under the "process" backend the arms already occupy the pool —
        # and the executor cannot cross a pickle boundary — so shard
        # tasks run inline inside each worker instead (same results).
        use_scan_pool = (
            (config.knn_shards or 0) > 1
            and config.execution_backend != "process"
        )
        if (
            config.execution_backend == "process" or use_scan_pool
        ) and self.store is not None:
            # Workers must attach hot blocks by name and share a spill
            # dir; enabling before arms are built lets even the test-set
            # embeddings land in shared segments.
            self.store.enable_sharing()
        if use_scan_pool:
            ctx.scan_executor = ShardedScanExecutor(
                store=self.store, max_workers=config.max_workers
            )
        ctx.arms = self._build_arms(
            dataset, ctx.order, ctx.metric, ctx.scan_executor
        )
        backend = make_backend(config.execution_backend, config.max_workers)
        backend.bind_store(self.store)
        ctx.scheduler = RoundScheduler(backend)
        return ctx

    def _resolve_metric(self, dataset) -> str:
        if self.config.metric != "auto":
            return self.config.metric
        return "cosine" if dataset.modality == "text" else "euclidean"

    def _build_arms(
        self, dataset, order: np.ndarray, metric: str, scan_executor=None
    ) -> list[TransformationArm]:
        # Build arms directly over the permuted pool (shared by all arms).
        train_x = dataset.train_x[order]
        train_y = dataset.train_y[order]
        streams = spawn_arm_streams(self.config.seed, len(self.catalog))
        arms = []
        for transform, stream in zip(self.catalog, streams):
            if not transform.fitted:
                fit_on(transform, train_x, train_y)
            arms.append(
                TransformationArm(
                    transform,
                    train_x,
                    train_y,
                    dataset.test_x,
                    dataset.test_y,
                    metric=metric,
                    knn_backend=self.config.knn_backend,
                    knn_backend_options=self.config.knn_backend_options(),
                    store=self.store,
                    dtype=self.config.compute_dtype,
                    seed=stream,
                    scan_executor=scan_executor,
                )
            )
        return arms

    # ------------------------------------------------------------------
    # Phase 2: allocate — spend the sample budget across arms
    # ------------------------------------------------------------------

    def _allocate(self, ctx: RunContext) -> None:
        config = self.config
        arms = ctx.arms
        scheduler = ctx.scheduler
        num_train = ctx.dataset.num_train
        pull_size = ctx.pull_size
        rounds = max(1, int(np.ceil(np.log2(len(arms)))))
        budget = config.budget or num_train * rounds
        if config.strategy == "full":
            scheduler.exhaust(arms, pull_size)
            winner = min(arms, key=lambda arm: arm.current_loss)
            ctx.selection = SelectionResult(
                winner=winner,
                strategy="full",
                total_samples=sum(arm.samples_used for arm in arms),
                total_sim_cost=sum(arm.sim_cost for arm in arms),
                samples_per_arm={arm.name: arm.samples_used for arm in arms},
            )
        elif config.strategy == "perfect":
            winner = next(
                (arm for arm in arms if arm.name == config.perfect_arm_name),
                None,
            )
            if winner is None:
                raise DataValidationError(
                    f"perfect_arm_name {config.perfect_arm_name!r} not in catalog"
                )
            winner.exhaust(pull_size)
            ctx.selection = SelectionResult(
                winner=winner,
                strategy="perfect",
                total_samples=winner.samples_used,
                total_sim_cost=winner.sim_cost,
                samples_per_arm={winner.name: winner.samples_used},
            )
        elif config.strategy == "uniform":
            ctx.selection = uniform_allocation(
                arms, budget, pull_size=pull_size, scheduler=scheduler
            )
        else:
            ctx.selection = successive_halving(
                arms,
                budget,
                pull_size=pull_size,
                use_tangent=config.strategy == "successive_halving_tangent",
                scheduler=scheduler,
            )
        if config.top_up_winner and not ctx.selection.winner.exhausted:
            ctx.selection.winner.exhaust()

    # ------------------------------------------------------------------
    # Phase 3: aggregate — per-arm estimates, curves, min-aggregation
    # ------------------------------------------------------------------

    def _aggregate(self, ctx: RunContext) -> None:
        num_classes = ctx.dataset.num_classes
        num_test = ctx.dataset.num_test
        for arm in ctx.arms:
            if not arm.losses:
                continue
            error = arm.current_loss
            lower = cover_hart_lower_bound(error, num_classes)
            interval = ber_estimate_interval(error, num_test, num_classes)
            estimate = BEREstimate(
                value=lower,
                lower=lower,
                upper=error,
                details={
                    "one_nn_error": error,
                    "samples": arm.samples_used,
                    "confidence_low": interval.low,
                    "confidence_high": interval.high,
                },
            )
            ctx.estimates[arm.name] = estimate
            ctx.per_transform.append(
                TransformResult(
                    transform_name=arm.name,
                    samples_used=arm.samples_used,
                    one_nn_error=error,
                    estimate=estimate,
                    sim_cost_seconds=arm.sim_cost,
                )
            )
            sizes, errors = arm.loss_curve()
            curve_estimates = np.array(
                [cover_hart_lower_bound(e, num_classes) for e in errors]
            )
            ctx.curves[arm.name] = ConvergenceCurve(
                arm.name, sizes, errors, curve_estimates
            )
        ctx.best_name, ctx.best_estimate = aggregate_min(ctx.estimates)

    # ------------------------------------------------------------------
    # Phase 4: guide — signal, trust band, extrapolation, report
    # ------------------------------------------------------------------

    def _guide(self, ctx: RunContext) -> FeasibilityReport:
        best_estimate = ctx.best_estimate
        target_error = 1.0 - ctx.target_accuracy
        signal = (
            FeasibilitySignal.REALISTIC
            if best_estimate.value <= target_error
            else FeasibilitySignal.UNREALISTIC
        )
        # The signal is "confident" when the same decision holds at both
        # ends of the winning estimate's Wilson band (Section IV-C's
        # trust theme, quantified).
        low = best_estimate.details["confidence_low"]
        high = best_estimate.details["confidence_high"]
        signal_confident = (low <= target_error) == (high <= target_error)
        extrapolation = self._extrapolate(
            ctx.curves.get(ctx.best_name), target_error
        )
        return FeasibilityReport(
            dataset_name=ctx.dataset.name,
            target_accuracy=ctx.target_accuracy,
            signal=signal,
            ber_estimate=best_estimate.value,
            best_transform=ctx.best_name,
            gap=target_error - best_estimate.value,
            per_transform=ctx.per_transform,
            curves=ctx.curves,
            extrapolation=extrapolation,
            strategy=ctx.selection.strategy,
            total_sim_cost_seconds=sum(arm.sim_cost for arm in ctx.arms),
            wall_seconds=time.perf_counter() - ctx.started,
            signal_confident=signal_confident,
        )

    def _extrapolate(
        self, curve: ConvergenceCurve | None, target_error: float
    ) -> ExtrapolationResult | None:
        if not self.config.extrapolate or curve is None:
            return None
        if not 0.0 < target_error < 1.0:
            return None
        try:
            return extrapolate_samples_needed(
                curve.transform_name, curve.sizes, curve.errors, target_error
            )
        except ConvergenceError:
            return None
