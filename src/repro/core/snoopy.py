"""The Snoopy system (Sections III–V).

Given a dataset and a target accuracy, Snoopy:

1. wraps every catalog transformation in a streamed arm (inference +
   incremental 1NN),
2. allocates the sample budget across arms with successive halving (with
   or without tangent early stopping), uniform allocation, or full
   evaluation,
3. converts each arm's 1NN error into the Cover–Hart lower bound and
   aggregates by taking the minimum,
4. emits the binary REALISTIC/UNREALISTIC signal plus the additional
   guidance of Section IV-C (convergence curves, gap to target, Eq. 10
   samples-to-target extrapolation), and
5. retains per-transformation neighbor caches so that re-running after
   label cleaning is O(test) (Section V, Figure 13).
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bandit.arms import TransformationArm, build_arms
from repro.bandit.successive_halving import SelectionResult, successive_halving
from repro.bandit.uniform import uniform_allocation
from repro.core.aggregation import aggregate_min
from repro.core.guidance import ExtrapolationResult, extrapolate_samples_needed
from repro.core.incremental import IncrementalState
from repro.core.result import (
    ConvergenceCurve,
    FeasibilityReport,
    FeasibilitySignal,
    TransformResult,
)
from repro.estimators.base import BEREstimate
from repro.estimators.confidence import ber_estimate_interval
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import ConvergenceError, DataValidationError
from repro.knn.incremental import NeighborCache
from repro.rng import ensure_rng

STRATEGIES = (
    "successive_halving_tangent",
    "successive_halving",
    "uniform",
    "full",
    "perfect",
)


@dataclass
class SnoopyConfig:
    """Tunable behaviour of a Snoopy run.

    Attributes
    ----------
    strategy:
        Allocation strategy; "successive_halving_tangent" is the paper's
        best-performing configuration and the default.
    budget:
        Total samples that may be embedded across all arms; ``None``
        chooses ``num_train * ceil(log2(num_arms))`` so the winning arm
        can reach the full training pool.
    pull_size:
        Samples per pull (the batch-size hyper-parameter of Section V);
        ``None`` uses 5% of the training pool.
    metric:
        Distance metric for the 1NN evaluators; "auto" selects cosine
        dissimilarity for text datasets and euclidean otherwise
        (following the paper's per-modality convention).
    knn_backend:
        Nearest-neighbor backend for the streamed evaluators, resolved
        through :func:`repro.knn.base.make_index`; ``None`` (default)
        keeps the built-in exact pairwise scan.
    top_up_winner:
        After selection, feed the winner the rest of the training pool.
    extrapolate:
        Attach the Eq. 10 samples-to-target extrapolation to the report.
    perfect_arm_name:
        Required when ``strategy == "perfect"``: evaluate only this arm
        (the oracle lower-bound strategy of Figure 12).
    """

    strategy: str = "successive_halving_tangent"
    budget: int | None = None
    pull_size: int | None = None
    metric: str = "auto"
    knn_backend: str | None = None
    top_up_winner: bool = True
    extrapolate: bool = True
    perfect_arm_name: str | None = None
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise DataValidationError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        if self.strategy == "perfect" and not self.perfect_arm_name:
            raise DataValidationError(
                "strategy 'perfect' requires perfect_arm_name"
            )


@dataclass
class _RunState:
    """Internal artifacts of the last run, kept for incremental re-runs."""

    arms: list[TransformationArm]
    order: np.ndarray  # permutation: shuffled position -> original index
    num_classes: int
    dataset_name: str = ""
    caches: dict[str, NeighborCache] = field(default_factory=dict)


class Snoopy:
    """The feasibility-study system.

    Parameters
    ----------
    catalog:
        Iterable of :class:`FeatureTransform` (e.g. a
        :class:`repro.transforms.FittedCatalog`); fitted lazily on the
        training split if needed.
    config:
        A :class:`SnoopyConfig`; defaults are the paper's configuration.
    """

    def __init__(self, catalog, config: SnoopyConfig | None = None):
        self.catalog = list(catalog)
        if not self.catalog:
            raise DataValidationError("catalog must contain at least one transform")
        self.config = config or SnoopyConfig()
        self._state: _RunState | None = None

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(self, dataset, target_accuracy: float) -> FeasibilityReport:
        """Perform the feasibility study and return the full report."""
        if not 0.0 < target_accuracy <= 1.0:
            raise DataValidationError(
                f"target_accuracy must be in (0, 1], got {target_accuracy}"
            )
        started = time.perf_counter()
        rng = ensure_rng(self.config.seed)
        metric = self._resolve_metric(dataset)
        order = rng.permutation(dataset.num_train)
        arms = self._build_arms(dataset, order, metric)
        selection = self._allocate(arms, dataset.num_train)
        if self.config.top_up_winner and not selection.winner.exhausted:
            self._exhaust(selection.winner)
        report = self._build_report(
            dataset, target_accuracy, arms, selection, started
        )
        self._state = _RunState(
            arms=arms,
            order=order,
            num_classes=dataset.num_classes,
            dataset_name=dataset.name,
        )
        return report

    def incremental_state(self) -> IncrementalState:
        """Neighbor-cache state of the last run, for real-time re-runs.

        Nearest-neighbor indices are translated back to *original*
        training-set positions, so cleaning indices from the dataset
        space apply directly.
        """
        if self._state is None:
            raise DataValidationError("no completed run; call run() first")
        state = self._state
        if not state.caches:
            for arm in state.arms:
                shuffled_nn = arm.evaluator.nearest_indices
                original_nn = state.order[shuffled_nn]
                train_labels = np.empty(len(state.order), dtype=np.int64)
                train_labels[state.order] = arm._train_y  # noqa: SLF001
                state.caches[arm.name] = NeighborCache(
                    original_nn,
                    train_labels,
                    arm.evaluator._test_y,  # noqa: SLF001
                )
        return IncrementalState(dict(state.caches), state.num_classes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_metric(self, dataset) -> str:
        if self.config.metric != "auto":
            return self.config.metric
        return "cosine" if dataset.modality == "text" else "euclidean"

    def _build_arms(
        self, dataset, order: np.ndarray, metric: str
    ) -> list[TransformationArm]:
        # Build arms directly over the permuted pool (shared by all arms).
        train_x = dataset.train_x[order]
        train_y = dataset.train_y[order]
        arms = []
        for transform in self.catalog:
            if not transform.fitted:
                _fit(transform, train_x, train_y)
            arms.append(
                TransformationArm(
                    transform,
                    train_x,
                    train_y,
                    dataset.test_x,
                    dataset.test_y,
                    metric=metric,
                    knn_backend=self.config.knn_backend,
                )
            )
        return arms

    def _allocate(
        self, arms: list[TransformationArm], num_train: int
    ) -> SelectionResult:
        config = self.config
        pull_size = config.pull_size or max(16, num_train // 20)
        rounds = max(1, int(np.ceil(np.log2(len(arms)))))
        budget = config.budget or num_train * rounds
        if config.strategy == "full":
            for arm in arms:
                self._exhaust(arm, pull_size)
            winner = min(arms, key=lambda arm: arm.current_loss)
            return SelectionResult(
                winner=winner,
                strategy="full",
                total_samples=sum(arm.samples_used for arm in arms),
                total_sim_cost=sum(arm.sim_cost for arm in arms),
                samples_per_arm={arm.name: arm.samples_used for arm in arms},
            )
        if config.strategy == "perfect":
            winner = next(
                (arm for arm in arms if arm.name == config.perfect_arm_name),
                None,
            )
            if winner is None:
                raise DataValidationError(
                    f"perfect_arm_name {config.perfect_arm_name!r} not in catalog"
                )
            self._exhaust(winner, pull_size)
            return SelectionResult(
                winner=winner,
                strategy="perfect",
                total_samples=winner.samples_used,
                total_sim_cost=winner.sim_cost,
                samples_per_arm={winner.name: winner.samples_used},
            )
        if config.strategy == "uniform":
            return uniform_allocation(arms, budget, pull_size=pull_size)
        return successive_halving(
            arms,
            budget,
            pull_size=pull_size,
            use_tangent=config.strategy == "successive_halving_tangent",
        )

    @staticmethod
    def _exhaust(arm: TransformationArm, pull_size: int = 512) -> None:
        while not arm.exhausted:
            arm.pull(pull_size)

    def _build_report(
        self,
        dataset,
        target_accuracy: float,
        arms: list[TransformationArm],
        selection: SelectionResult,
        started: float,
    ) -> FeasibilityReport:
        num_classes = dataset.num_classes
        per_transform: list[TransformResult] = []
        estimates: dict[str, BEREstimate] = {}
        curves: dict[str, ConvergenceCurve] = {}
        for arm in arms:
            if not arm.losses:
                continue
            error = arm.current_loss
            lower = cover_hart_lower_bound(error, num_classes)
            interval = ber_estimate_interval(
                error, dataset.num_test, num_classes
            )
            estimate = BEREstimate(
                value=lower,
                lower=lower,
                upper=error,
                details={
                    "one_nn_error": error,
                    "samples": arm.samples_used,
                    "confidence_low": interval.low,
                    "confidence_high": interval.high,
                },
            )
            estimates[arm.name] = estimate
            per_transform.append(
                TransformResult(
                    transform_name=arm.name,
                    samples_used=arm.samples_used,
                    one_nn_error=error,
                    estimate=estimate,
                    sim_cost_seconds=arm.sim_cost,
                )
            )
            sizes, errors = arm.loss_curve()
            curve_estimates = np.array(
                [cover_hart_lower_bound(e, num_classes) for e in errors]
            )
            curves[arm.name] = ConvergenceCurve(
                arm.name, sizes, errors, curve_estimates
            )
        best_name, best_estimate = aggregate_min(estimates)
        target_error = 1.0 - target_accuracy
        signal = (
            FeasibilitySignal.REALISTIC
            if best_estimate.value <= target_error
            else FeasibilitySignal.UNREALISTIC
        )
        # The signal is "confident" when the same decision holds at both
        # ends of the winning estimate's Wilson band (Section IV-C's
        # trust theme, quantified).
        low = best_estimate.details["confidence_low"]
        high = best_estimate.details["confidence_high"]
        signal_confident = (low <= target_error) == (high <= target_error)
        extrapolation = self._extrapolate(curves.get(best_name), target_error)
        return FeasibilityReport(
            dataset_name=dataset.name,
            target_accuracy=target_accuracy,
            signal=signal,
            ber_estimate=best_estimate.value,
            best_transform=best_name,
            gap=target_error - best_estimate.value,
            per_transform=per_transform,
            curves=curves,
            extrapolation=extrapolation,
            strategy=selection.strategy,
            total_sim_cost_seconds=sum(arm.sim_cost for arm in arms),
            wall_seconds=time.perf_counter() - started,
            signal_confident=signal_confident,
        )

    def _extrapolate(
        self, curve: ConvergenceCurve | None, target_error: float
    ) -> ExtrapolationResult | None:
        if not self.config.extrapolate or curve is None:
            return None
        if not 0.0 < target_error < 1.0:
            return None
        try:
            return extrapolate_samples_needed(
                curve.transform_name, curve.sizes, curve.errors, target_error
            )
        except ConvergenceError:
            return None


def _fit(transform, x: np.ndarray, y: np.ndarray) -> None:
    if "y" in inspect.signature(transform.fit).parameters:
        transform.fit(x, y)
    else:
        transform.fit(x)
