"""Drift-aware BER estimation over data streams (paper: Future Extension).

The paper sketches, as future work, a feasibility study for stream-based
settings: estimate the BER over a sliding window of recent data and
detect *distributional drift on the level of the task itself* — i.e. a
change in achievable accuracy — independent of any trained model.

This module implements that sketch:

- :class:`SlidingWindowBER` maintains a window of (embedded feature,
  label) pairs and produces a Cover–Hart BER estimate of the recent
  distribution on demand, splitting the window into train/eval halves.
- :class:`PageHinkleyDetector` is a classic sequential change detector
  run over the stream of window estimates; a sustained upward shift in
  the estimated BER (the task getting harder — e.g. a noisier labeling
  source coming online) raises a drift alarm.
- :class:`DriftAwareMonitor` wires the two together.

The window is deliberately small (the paper notes small windows are
required for the estimate to reflect the *current* distribution), which
makes individual estimates noisy — exactly why a sequential detector,
not per-window thresholding, is used.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError
from repro.knn.base import make_index


class SlidingWindowBER:
    """Cover–Hart BER estimate over the most recent window of a stream.

    Parameters
    ----------
    num_classes:
        ``C`` of the task.
    window_size:
        Number of most-recent samples retained.
    metric:
        Distance metric for the 1NN evaluation.
    eval_fraction:
        Fraction of the window held out as the evaluation split (the
        most recent samples, so the estimate reflects "now").
    knn_backend:
        kNN index backend for the 1NN evaluation, built through
        :func:`repro.knn.base.make_index` ("brute_force" by default).
    compute_dtype:
        Compute precision for the 1NN evaluation ("float32"/"float64";
        ``None`` keeps the strict float64 path).  A monitor re-estimates
        on a hot loop, so the float32 path is the natural choice when
        the stream is high-volume.
    """

    def __init__(
        self,
        num_classes: int,
        window_size: int = 512,
        metric: str = "euclidean",
        eval_fraction: float = 0.25,
        knn_backend: str = "brute_force",
        compute_dtype=None,
    ):
        if num_classes < 2:
            raise DataValidationError("num_classes must be >= 2")
        if window_size < 8:
            raise DataValidationError("window_size must be >= 8")
        if not 0.0 < eval_fraction < 1.0:
            raise DataValidationError("eval_fraction must be in (0, 1)")
        self.num_classes = num_classes
        self.window_size = window_size
        self.metric = metric
        self.eval_fraction = eval_fraction
        self.knn_backend = knn_backend
        self.compute_dtype = compute_dtype
        self._features: deque[np.ndarray] = deque(maxlen=window_size)
        self._labels: deque[int] = deque(maxlen=window_size)
        self._seen = 0

    @property
    def current_size(self) -> int:
        return len(self._labels)

    @property
    def total_seen(self) -> int:
        return self._seen

    @property
    def ready(self) -> bool:
        """True once the window holds enough samples for a split."""
        return self.current_size >= max(16, self.window_size // 4)

    def observe(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Append a batch of stream samples (oldest entries fall out)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        if len(features) != len(labels):
            raise DataValidationError("features and labels length mismatch")
        if len(labels) and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise DataValidationError("label out of range")
        for row, label in zip(features, labels):
            self._features.append(row)
            self._labels.append(int(label))
        self._seen += len(labels)

    def estimate(self) -> float:
        """Cover–Hart BER estimate of the current window distribution.

        The oldest (1 - eval_fraction) of the window acts as the training
        split, the newest part as the evaluation split.
        """
        if not self.ready:
            raise DataValidationError(
                f"window holds {self.current_size} samples; "
                "need more before estimating"
            )
        features = np.stack(list(self._features))
        labels = np.array(self._labels)
        cut = int(len(labels) * (1.0 - self.eval_fraction))
        cut = min(max(cut, 2), len(labels) - 2)
        index = make_index(
            self.knn_backend, metric=self.metric, dtype=self.compute_dtype
        ).fit(features[:cut], labels[:cut])
        error = index.error(features[cut:], labels[cut:], k=1)
        return cover_hart_lower_bound(error, self.num_classes)


class PageHinkleyDetector:
    """Page–Hinkley test for a sustained upward shift in a value stream.

    Standard formulation: track the cumulative deviation of observations
    from their running mean minus a drift allowance ``delta``; alarm when
    the deviation exceeds ``threshold`` above its running minimum.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.1):
        if threshold <= 0:
            raise DataValidationError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    @property
    def statistic(self) -> float:
        """Current test statistic (cumulative - running minimum)."""
        return self._cumulative - self._minimum

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when drift is detected."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        return self.statistic > self.threshold


@dataclass
class DriftEvent:
    """A raised drift alarm."""

    at_sample: int
    ber_estimate: float
    statistic: float


@dataclass
class DriftAwareMonitor:
    """Streamed feasibility monitor: windowed BER estimates + detector.

    Feed the stream through :meth:`observe`; every ``check_every``
    samples a fresh window estimate is produced and pushed through the
    Page–Hinkley detector.  A drift alarm means the *task* got harder —
    the signal the paper proposes for model-independent drift detection.
    """

    window: SlidingWindowBER
    detector: PageHinkleyDetector
    check_every: int = 128
    estimates: list[tuple[int, float]] = field(default_factory=list)
    events: list[DriftEvent] = field(default_factory=list)
    _since_check: int = 0

    def observe(self, features: np.ndarray, labels: np.ndarray) -> list[DriftEvent]:
        """Ingest a batch; returns any drift events raised by it.

        Large batches are split internally so that a check runs after
        every ``check_every`` stream samples — the monitor behaves the
        same whether the stream arrives sample-by-sample or in bulk.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        new_events: list[DriftEvent] = []
        cursor = 0
        while cursor < len(labels):
            take = min(
                self.check_every - self._since_check, len(labels) - cursor
            )
            self.window.observe(
                features[cursor : cursor + take],
                labels[cursor : cursor + take],
            )
            cursor += take
            self._since_check += take
            if self._since_check < self.check_every:
                break
            self._since_check = 0
            if not self.window.ready:
                continue
            estimate = self.window.estimate()
            self.estimates.append((self.window.total_seen, estimate))
            if self.detector.update(estimate):
                event = DriftEvent(
                    at_sample=self.window.total_seen,
                    ber_estimate=estimate,
                    statistic=self.detector.statistic,
                )
                self.events.append(event)
                new_events.append(event)
                self.detector.reset()
        return new_events
