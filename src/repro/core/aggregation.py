"""Min-aggregation and the regime analysis of Section IV-B.

Snoopy aggregates per-transformation estimates by taking the minimum.
The paper justifies this through three quantities per transformation f:

- asymptotic tightness  ``Delta_f = R*_{f(X)} - lim_n R̂_{f(X),n}``   (Eq. 5)
- transformation bias   ``delta_f = R*_{f(X)} - R*_X``               (Eq. 6)
- n-sample gap          ``gamma_{f,n} = R̂_{f(X),n} - lim_n R̂``      (Eq. 7)

Condition 8 (``delta_f + gamma_{f,n} - Delta_f >= 0`` for all f) makes
the min a valid *lower* bound on the BER; Condition 9 additionally
involves the identity transform's tightness.  None of the three terms is
observable on real data — but on this library's synthetic tasks the true
BER is known, so :func:`estimate_regime_quantities` can measure them
empirically (Figures 14–17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.estimators.base import BEREstimate
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.estimators.de_knn import DeKNNEstimator
from repro.exceptions import DataValidationError
from repro.knn.progressive import ProgressiveOneNN
from repro.rng import SeedLike, ensure_rng
from repro.transforms.store import EmbeddingStore, embed_or_transform


def aggregate_min(estimates: dict[str, BEREstimate]) -> tuple[str, BEREstimate]:
    """The system's aggregation rule: keep the minimal estimate."""
    if not estimates:
        raise DataValidationError("cannot aggregate an empty estimate set")
    best_name = min(estimates, key=lambda name: estimates[name].value)
    return best_name, estimates[best_name]


@dataclass(frozen=True)
class RegimeQuantities:
    """Empirical estimates of (Delta_f, delta_f, gamma_{f,n}) for one f."""

    transform_name: str
    ber_raw: float  # R*_X (oracle)
    ber_transformed: float  # R*_{f(X)} (plug-in estimate)
    estimator_limit: float  # lim_n R̂_{f(X),n} (extrapolated)
    estimate_at_n: float  # R̂_{f(X),n}
    samples: int

    @property
    def asymptotic_tightness(self) -> float:
        """Delta_f (Eq. 5); >= 0 by Cover–Hart."""
        return self.ber_transformed - self.estimator_limit

    @property
    def transformation_bias(self) -> float:
        """delta_f (Eq. 6); >= 0 for deterministic transformations."""
        return self.ber_transformed - self.ber_raw

    @property
    def finite_sample_gap(self) -> float:
        """gamma_{f,n} (Eq. 7); >= 0 in expectation."""
        return self.estimate_at_n - self.estimator_limit

    @property
    def condition_8_margin(self) -> float:
        """delta_f + gamma_{f,n} - Delta_f; Condition 8 needs this >= 0."""
        return (
            self.transformation_bias
            + self.finite_sample_gap
            - self.asymptotic_tightness
        )


def condition_8_holds(quantities: list[RegimeQuantities]) -> bool:
    """Sufficient condition for R̂ to never underestimate the BER."""
    return all(q.condition_8_margin >= 0 for q in quantities)


def condition_9_holds(
    quantities: list[RegimeQuantities], identity_tightness: float
) -> bool:
    """Sufficient condition for R̂ to beat the raw-feature estimator."""
    return all(
        q.condition_8_margin + identity_tightness >= 0 for q in quantities
    )


def estimate_regime_quantities(
    dataset,
    transform,
    num_curve_points: int = 6,
    plug_in_k: int = 25,
    metric: str = "euclidean",
    rng: SeedLike = None,
    store: EmbeddingStore | None = None,
) -> RegimeQuantities:
    """Measure (Delta_f, delta_f, gamma_{f,n}) on a known-BER dataset.

    - ``R*_X`` comes from the dataset's oracle.
    - ``R*_{f(X)}`` is approximated by a DE-kNN posterior plug-in on the
      transformed features (consistent; k is kept moderate).
    - ``lim_n R̂`` is approximated by a log-linear extrapolation of the
      Cover–Hart estimates to 64x the available data, a pragmatic stand-
      in for the true limit on a finite sample.

    These are *empirical* surrogates — the point of Figures 14-17 is
    illustration, not exactness, as the paper itself emphasizes that the
    quantities are unobservable in practice.
    """
    if dataset.oracle is None:
        raise DataValidationError(
            "regime quantities need a dataset with a ground-truth oracle"
        )
    rng = ensure_rng(rng)
    if not transform.fitted:
        transform.fit(dataset.train_x)
    train_f = embed_or_transform(store, transform, dataset.train_x)
    test_f = embed_or_transform(store, transform, dataset.test_x)
    num_classes = dataset.num_classes
    # Convergence curve of the Cover–Hart estimate.
    order = rng.permutation(len(train_f))
    sizes = np.unique(
        np.geomspace(
            max(16, len(train_f) // 2**num_curve_points),
            len(train_f),
            num=num_curve_points,
        ).astype(int)
    )
    evaluator = ProgressiveOneNN(test_f, dataset.test_y, metric=metric)
    estimates = []
    consumed = 0
    for size in sizes:
        evaluator.partial_fit(
            train_f[order[consumed:size]], dataset.train_y[order[consumed:size]]
        )
        consumed = size
        estimates.append(
            cover_hart_lower_bound(evaluator.error(), num_classes)
        )
    estimates = np.array(estimates)
    # Extrapolated limit of the estimator (log-linear, clipped at 0).
    from repro.core.guidance import fit_log_linear

    positive = estimates > 0
    if positive.sum() >= 3:
        fit = fit_log_linear(sizes[positive], estimates[positive])
        limit = fit.predict_error(64 * sizes[-1])
    else:
        limit = float(estimates[-1])
    limit = float(min(limit, estimates[-1]))
    # Plug-in estimate of R*_{f(X)}.
    plug_in = DeKNNEstimator(k=plug_in_k, metric=metric).estimate(
        train_f, dataset.train_y, test_f, dataset.test_y, num_classes
    )
    return RegimeQuantities(
        transform_name=transform.name,
        ber_raw=dataset.oracle.true_ber,
        ber_transformed=plug_in.value,
        estimator_limit=limit,
        estimate_at_n=float(estimates[-1]),
        samples=int(sizes[-1]),
    )
