"""Incremental Snoopy state for the iterative cleaning loop (Section V).

After a full run, the system keeps one :class:`NeighborCache` per
evaluated transformation.  When the user cleans labels, the caches are
updated in O(#cleaned + #test) — no inference, no distance computation —
and a fresh aggregated estimate is available immediately.  This is the
mechanism behind the near-instant re-runs of Figure 13.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import FeasibilitySignal
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError
from repro.knn.incremental import NeighborCache


class IncrementalState:
    """Re-runnable estimate state over cached nearest neighbors."""

    def __init__(self, caches: dict[str, NeighborCache], num_classes: int):
        if not caches:
            raise DataValidationError("need at least one neighbor cache")
        if num_classes < 2:
            raise DataValidationError("num_classes must be >= 2")
        self._caches = dict(caches)
        self._num_classes = num_classes

    @property
    def transform_names(self) -> list[str]:
        return list(self._caches)

    def apply_cleaning(
        self,
        train_indices: np.ndarray,
        train_labels: np.ndarray,
        test_indices: np.ndarray,
        test_labels: np.ndarray,
    ) -> None:
        """Propagate label corrections to every cached transformation."""
        for cache in self._caches.values():
            cache.update_train_labels(train_indices, train_labels)
            cache.update_test_labels(test_indices, test_labels)

    def estimates(self) -> dict[str, float]:
        """Per-transformation Cover–Hart estimates under current labels."""
        return {
            name: cover_hart_lower_bound(cache.error(), self._num_classes)
            for name, cache in self._caches.items()
        }

    def ber_estimate(self) -> tuple[str, float]:
        """Aggregated (min) estimate and the transformation achieving it."""
        estimates = self.estimates()
        best = min(estimates, key=estimates.get)
        return best, estimates[best]

    def signal(self, target_accuracy: float) -> FeasibilitySignal:
        """The binary decision under the current labels."""
        if not 0.0 < target_accuracy <= 1.0:
            raise DataValidationError(
                f"target_accuracy must be in (0, 1], got {target_accuracy}"
            )
        _, estimate = self.ber_estimate()
        if estimate <= 1.0 - target_accuracy:
            return FeasibilitySignal.REALISTIC
        return FeasibilitySignal.UNREALISTIC
