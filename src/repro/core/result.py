"""Result containers for a Snoopy feasibility study."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.estimators.base import BEREstimate  # re-exported
from repro.exceptions import DataValidationError

__all__ = [
    "BEREstimate",
    "ConvergenceCurve",
    "FeasibilityReport",
    "FeasibilitySignal",
    "TransformResult",
]


class FeasibilitySignal(enum.Enum):
    """The binary output of the system (Section III)."""

    REALISTIC = "realistic"
    UNREALISTIC = "unrealistic"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


@dataclass(frozen=True)
class ConvergenceCurve:
    """1NN error (and its Cover–Hart estimate) vs training-set size."""

    transform_name: str
    sizes: np.ndarray
    errors: np.ndarray
    estimates: np.ndarray

    def __post_init__(self) -> None:
        if not len(self.sizes) == len(self.errors) == len(self.estimates):
            raise DataValidationError("curve arrays must have equal length")

    @property
    def final_size(self) -> int:
        return int(self.sizes[-1]) if len(self.sizes) else 0

    @property
    def final_error(self) -> float:
        return float(self.errors[-1]) if len(self.errors) else float("nan")

    @property
    def final_estimate(self) -> float:
        return float(self.estimates[-1]) if len(self.estimates) else float("nan")


@dataclass(frozen=True)
class TransformResult:
    """Per-transformation outcome of a run."""

    transform_name: str
    samples_used: int
    one_nn_error: float
    estimate: BEREstimate
    sim_cost_seconds: float


@dataclass
class FeasibilityReport:
    """Everything Snoopy tells the user (Sections III and IV-C).

    Attributes
    ----------
    signal:
        REALISTIC iff ``ber_estimate <= 1 - target_accuracy``.
    ber_estimate:
        The aggregated estimate R̂ = min over transformations.
    gap:
        ``(1 - target_accuracy) - ber_estimate``; positive slack means
        the target looks comfortably achievable.
    extrapolation:
        The Eq. 10 samples-to-target estimate for the winning
        transformation, or None when not requested/possible.
    """

    dataset_name: str
    target_accuracy: float
    signal: FeasibilitySignal
    ber_estimate: float
    best_transform: str
    gap: float
    per_transform: list[TransformResult]
    curves: dict[str, ConvergenceCurve] = field(default_factory=dict)
    extrapolation: "ExtrapolationResult | None" = None  # noqa: F821
    strategy: str = "full"
    total_sim_cost_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: True when the binary decision is stable across the Wilson band of
    #: the winning estimate (false near the target boundary or on tiny
    #: test sets — the user should gather more data or trust cautiously).
    signal_confident: bool = True

    @property
    def best_accuracy(self) -> float:
        """The projected best achievable accuracy, ``1 - R̂``."""
        return 1.0 - self.ber_estimate

    @property
    def is_realistic(self) -> bool:
        return self.signal is FeasibilitySignal.REALISTIC

    def estimates_by_transform(self) -> dict[str, float]:
        return {
            result.transform_name: result.estimate.value
            for result in self.per_transform
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"Feasibility study: {self.dataset_name}",
            f"  target accuracy : {self.target_accuracy:.4f}",
            f"  signal          : {self.signal}",
            f"  BER estimate    : {self.ber_estimate:.4f} "
            f"(best transform: {self.best_transform})",
            f"  projected best  : {self.best_accuracy:.4f}",
            f"  gap to target   : {self.gap:+.4f}",
            f"  strategy        : {self.strategy}",
            f"  signal confident: {self.signal_confident}",
            f"  simulated cost  : {self.total_sim_cost_seconds:.2f}s "
            f"(wall {self.wall_seconds:.2f}s)",
        ]
        if self.extrapolation is not None:
            lines.append(f"  extrapolation   : {self.extrapolation.describe()}")
        return "\n".join(lines)
