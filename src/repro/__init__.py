"""Reproduction of Snoopy: automatic feasibility study for ML via BER estimation.

This package implements the system described in "Automatic Feasibility
Study via Data Quality Analysis for ML: A Case-Study on Label Noise"
(ICDE 2023).  The public surface is intentionally small:

- :class:`repro.core.Snoopy` — the feasibility-study system itself.
- :mod:`repro.datasets` — synthetic analogues of the paper's six datasets
  (with known ground-truth Bayes error) plus the CIFAR-N noisy variants.
- :mod:`repro.transforms` — the feature-transformation catalog (simulated
  pre-trained embeddings, PCA, NCA, identity).
- :mod:`repro.noise` — label-noise models and the closed-form BER
  evolution results (Lemma 2.1, Theorem 3.1).
- :mod:`repro.estimators` — the Bayes-error estimator zoo.
- :mod:`repro.baselines` — logistic-regression proxy, AutoML simulator
  and fine-tune analogue used in the paper's evaluation.
- :mod:`repro.cleaning` — the end-to-end iterative label-cleaning use case.

Quickstart::

    from repro import Snoopy, datasets, transforms

    dataset = datasets.load("cifar10", scale=0.1, seed=0)
    catalog = transforms.vision_catalog(dataset, seed=0)
    system = Snoopy(catalog)
    report = system.run(dataset, target_accuracy=0.85)
    print(report.signal, report.best_accuracy)
"""

from repro.core.result import (
    BEREstimate,
    ConvergenceCurve,
    FeasibilityReport,
    FeasibilitySignal,
)
from repro.core.snoopy import Snoopy, SnoopyConfig

__version__ = "1.0.0"

__all__ = [
    "BEREstimate",
    "ConvergenceCurve",
    "FeasibilityReport",
    "FeasibilitySignal",
    "Snoopy",
    "SnoopyConfig",
]
