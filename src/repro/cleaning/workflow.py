"""End-to-end grid runner producing the cost curves of Figures 9/10/21-27."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cleaning.costs import CostModel
from repro.cleaning.simulator import CleaningSession
from repro.exceptions import DataValidationError
from repro.cleaning.strategies import (
    CostTrace,
    run_with_feasibility_study,
    run_without_feasibility_study,
)
from repro.core.snoopy import SnoopyConfig
from repro.datasets.base import Dataset
from repro.noise.models import inject_uniform_noise
from repro.rng import SeedLike, ensure_rng


@dataclass
class EndToEndOutcome:
    """All strategy traces for one (dataset, noise, target, regime) cell."""

    dataset_name: str
    noise_rho: float
    target_accuracy: float
    label_regime: str
    traces: dict[str, CostTrace] = field(default_factory=dict)
    min_fraction_to_target: float | None = None

    def cheapest_successful(self) -> tuple[str, float] | None:
        """(strategy, dollars) of the cheapest trace that hit the target."""
        successful = {
            name: trace.total_dollars
            for name, trace in self.traces.items()
            if trace.reached_target
        }
        if not successful:
            return None
        best = min(successful, key=successful.get)
        return best, successful[best]


def make_noisy_dataset(
    dataset: Dataset, rho: float, rng: SeedLike = None
) -> Dataset:
    """Inject uniform label noise into both splits (Lemma 2.1 model)."""
    rng = ensure_rng(rng)
    train = inject_uniform_noise(
        dataset.train_y, rho, dataset.num_classes, rng=rng
    )
    test = inject_uniform_noise(dataset.test_y, rho, dataset.num_classes, rng=rng)
    return dataset.with_noisy_labels(
        train.noisy_labels,
        test.noisy_labels,
        name_suffix=f"rho{rho:g}",
        extras={"noise_rho": rho},
    )


def run_end_to_end(
    dataset: Dataset,
    trainer,
    catalog,
    noise_rho: float,
    target_accuracy: float,
    label_regime: str = "cheap",
    step_fractions: tuple[float, ...] = (0.01, 0.05, 0.10, 0.50),
    include_lr: bool = True,
    snoopy_config: SnoopyConfig | None = None,
    seed: int = 0,
) -> EndToEndOutcome:
    """Run every interaction model on one experimental cell.

    Each strategy gets its own :class:`CleaningSession` over the *same*
    noisy dataset and the same cleaning order, so cost differences come
    from the strategy alone.
    """
    cost_model = CostModel.for_regime(label_regime)
    noisy = make_noisy_dataset(dataset, noise_rho, rng=seed)
    outcome = EndToEndOutcome(
        dataset_name=dataset.name,
        noise_rho=noise_rho,
        target_accuracy=target_accuracy,
        label_regime=label_regime,
    )
    for step in step_fractions:
        session = CleaningSession(noisy, rng=seed)
        outcome.traces[f"finetune_step_{step:g}"] = run_without_feasibility_study(
            session, trainer, target_accuracy, step, cost_model
        )
    session = CleaningSession(noisy, rng=seed)
    outcome.traces["fs_snoopy"] = run_with_feasibility_study(
        session,
        trainer,
        target_accuracy,
        cost_model,
        feasibility="snoopy",
        catalog=catalog,
        snoopy_config=snoopy_config,
        seed=seed,
    )
    if include_lr:
        session = CleaningSession(noisy, rng=seed)
        outcome.traces["fs_lr"] = run_with_feasibility_study(
            session,
            trainer,
            target_accuracy,
            cost_model,
            feasibility="lr",
            catalog=catalog,
            seed=seed,
        )
    outcome.min_fraction_to_target = _min_cleaning_fraction(
        noisy, target_accuracy
    )
    return outcome


@dataclass
class RepeatedOutcome:
    """Mean-over-runs summary, matching the paper's >=5-run reporting."""

    dataset_name: str
    noise_rho: float
    target_accuracy: float
    label_regime: str
    num_runs: int
    mean_dollars: dict[str, float] = field(default_factory=dict)
    mean_fraction_examined: dict[str, float] = field(default_factory=dict)
    success_rate: dict[str, float] = field(default_factory=dict)
    outcomes: list[EndToEndOutcome] = field(default_factory=list)


def run_end_to_end_repeated(
    dataset: Dataset,
    trainer,
    catalog,
    noise_rho: float,
    target_accuracy: float,
    num_runs: int = 5,
    label_regime: str = "cheap",
    step_fractions: tuple[float, ...] = (0.01, 0.10, 0.50),
    include_lr: bool = False,
    seed: int = 0,
) -> RepeatedOutcome:
    """Repeat :func:`run_end_to_end` over independent seeds; report means.

    The paper reports the mean accuracy and run-time over at least five
    independent runs per cell; this mirrors that protocol (each run
    re-draws the injected noise and the cleaning order).
    """
    if num_runs < 1:
        raise DataValidationError("num_runs must be >= 1")
    summary = RepeatedOutcome(
        dataset_name=dataset.name,
        noise_rho=noise_rho,
        target_accuracy=target_accuracy,
        label_regime=label_regime,
        num_runs=num_runs,
    )
    totals: dict[str, list[float]] = {}
    fractions: dict[str, list[float]] = {}
    successes: dict[str, list[float]] = {}
    for run in range(num_runs):
        outcome = run_end_to_end(
            dataset, trainer, catalog,
            noise_rho=noise_rho, target_accuracy=target_accuracy,
            label_regime=label_regime, step_fractions=step_fractions,
            include_lr=include_lr, seed=seed + run,
        )
        summary.outcomes.append(outcome)
        for name, trace in outcome.traces.items():
            totals.setdefault(name, []).append(trace.total_dollars)
            fractions.setdefault(name, []).append(
                trace.final_fraction_examined
            )
            successes.setdefault(name, []).append(
                1.0 if trace.reached_target else 0.0
            )
    summary.mean_dollars = {k: float(np.mean(v)) for k, v in totals.items()}
    summary.mean_fraction_examined = {
        k: float(np.mean(v)) for k, v in fractions.items()
    }
    summary.success_rate = {k: float(np.mean(v)) for k, v in successes.items()}
    return summary


def _min_cleaning_fraction(noisy: Dataset, target_accuracy: float) -> float | None:
    """Theoretical minimum fraction to clean before the target is reachable.

    Under uniform noise the achievable accuracy after cleaning fraction q
    is roughly ``1 - BER - (1 - q) * realized_noise``; solving for the
    target gives the horizontal reference line of Figures 9/10.
    """
    if noisy.true_ber is None:
        return None
    realized = noisy.label_noise_rate()
    if realized <= 0:
        return 0.0
    deficit = (1.0 - noisy.true_ber) - target_accuracy
    if deficit >= realized:
        return 0.0
    needed = 1.0 - deficit / realized
    return float(np.clip(needed, 0.0, 1.0))
