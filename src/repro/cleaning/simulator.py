"""The label-cleaning oracle.

Real cleaning needs a human expert; the simulation uses the noisy
dataset's retained clean labels (Section VI-D: "we focus on the manually
polluted datasets ... where we can simply restore the original label").
Cleaning a fraction examines that many *not-yet-examined* samples (over
train and test jointly) and restores their true labels — samples whose
noisy label happened to be correct still consume cleaning effort, exactly
as a human pass over them would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class CleaningStep:
    """The label corrections produced by one cleaning action."""

    train_indices: np.ndarray
    train_labels: np.ndarray
    test_indices: np.ndarray
    test_labels: np.ndarray

    @property
    def num_examined(self) -> int:
        return len(self.train_indices) + len(self.test_indices)


class CleaningSession:
    """Tracks cleaning progress over a noisy dataset.

    Parameters
    ----------
    dataset:
        A noisy :class:`Dataset` (one with ``clean_train_y`` /
        ``clean_test_y`` retained).
    rng:
        Ordering of the cleaning passes.
    """

    def __init__(self, dataset: Dataset, rng: SeedLike = None):
        if not dataset.is_noisy:
            raise DataValidationError(
                "cleaning needs a noisy dataset (clean labels retained)"
            )
        self._dataset = dataset
        self._train_y = dataset.train_y.copy()
        self._test_y = dataset.test_y.copy()
        self._clean_train_y = dataset.clean_train_y.copy()
        self._clean_test_y = dataset.clean_test_y.copy()
        rng = ensure_rng(rng)
        total = dataset.num_train + dataset.num_test
        # Pre-drawn global examination order: positions < num_train are
        # train indices, the rest map to test indices.
        self._order = rng.permutation(total)
        self._cursor = 0

    @property
    def total_samples(self) -> int:
        return len(self._order)

    @property
    def num_examined(self) -> int:
        return self._cursor

    @property
    def fraction_examined(self) -> float:
        return self._cursor / self.total_samples

    @property
    def all_cleaned(self) -> bool:
        return self._cursor >= self.total_samples

    def remaining_noise_rate(self) -> float:
        """Fraction of currently wrong labels over the whole artefact."""
        wrong = int(np.sum(self._train_y != self._clean_train_y)) + int(
            np.sum(self._test_y != self._clean_test_y)
        )
        return wrong / self.total_samples

    def current_dataset(self) -> Dataset:
        """The dataset under the current (partially cleaned) labels."""
        return replace(
            self._dataset,
            train_y=self._train_y.copy(),
            test_y=self._test_y.copy(),
        )

    def clean_fraction(self, fraction: float) -> CleaningStep:
        """Examine the next ``fraction`` of the artefact; restore labels.

        Returns the corrections applied (for incremental estimators);
        cleaning past 100% silently truncates.
        """
        if fraction <= 0:
            raise DataValidationError(f"fraction must be positive, got {fraction}")
        count = int(round(fraction * self.total_samples))
        return self.clean_count(max(1, count))

    def clean_count(self, count: int) -> CleaningStep:
        """Examine the next ``count`` samples in the fixed random order."""
        if count < 0:
            raise DataValidationError("count must be non-negative")
        stop = min(self._cursor + count, self.total_samples)
        picked = self._order[self._cursor : stop]
        self._cursor = stop
        num_train = self._dataset.num_train
        train_idx = picked[picked < num_train]
        test_idx = picked[picked >= num_train] - num_train
        train_labels = self._clean_train_y[train_idx]
        test_labels = self._clean_test_y[test_idx]
        self._train_y[train_idx] = train_labels
        self._test_y[test_idx] = test_labels
        return CleaningStep(
            train_indices=train_idx,
            train_labels=train_labels,
            test_indices=test_idx,
            test_labels=test_labels,
        )
