"""The dollar cost model of Section VI-D.

The paper prices two resources: human label cleaning (free / 0.002$ /
0.02$ per label) and machine time (0.9$ per GPU-hour, the then-current
single-GPU EC2 rate).  All simulated compute in the library is expressed
in "accelerator seconds", which this model converts to dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataValidationError

FREE_LABEL_COST = 0.0
CHEAP_LABEL_COST = 0.002  # 500 labels per dollar
EXPENSIVE_LABEL_COST = 0.02  # 50 labels per dollar
MACHINE_DOLLARS_PER_HOUR = 0.9

LABEL_REGIMES = {
    "free": FREE_LABEL_COST,
    "cheap": CHEAP_LABEL_COST,
    "expensive": EXPENSIVE_LABEL_COST,
}


@dataclass(frozen=True)
class CostModel:
    """Converts labels cleaned and compute seconds into dollars."""

    label_cost_dollars: float = CHEAP_LABEL_COST
    machine_dollars_per_hour: float = MACHINE_DOLLARS_PER_HOUR

    def __post_init__(self) -> None:
        if self.label_cost_dollars < 0:
            raise DataValidationError("label cost must be non-negative")
        if self.machine_dollars_per_hour < 0:
            raise DataValidationError("machine cost must be non-negative")

    @classmethod
    def for_regime(cls, regime: str) -> "CostModel":
        """Build the model for a named label-cost regime."""
        try:
            label_cost = LABEL_REGIMES[regime]
        except KeyError:
            raise DataValidationError(
                f"unknown regime {regime!r}; expected one of "
                f"{sorted(LABEL_REGIMES)}"
            ) from None
        return cls(label_cost_dollars=label_cost)

    def labels(self, num_labels: int) -> float:
        """Dollar cost of cleaning ``num_labels`` labels."""
        if num_labels < 0:
            raise DataValidationError("num_labels must be non-negative")
        return self.label_cost_dollars * num_labels

    def compute(self, sim_seconds: float) -> float:
        """Dollar cost of ``sim_seconds`` of accelerator time."""
        if sim_seconds < 0:
            raise DataValidationError("sim_seconds must be non-negative")
        return self.machine_dollars_per_hour * sim_seconds / 3600.0
