"""The end-to-end label-cleaning use case (Section VI-D).

A user holds a noisy dataset and a target accuracy, and alternates
between three actions: clean a portion of labels, train an expensive
high-accuracy model, or run a cheap feasibility study.  This subpackage
simulates that loop under the paper's cost model:

- :mod:`repro.cleaning.costs` — dollar cost model (label regimes
  free/cheap/expensive, machine $/hour).
- :mod:`repro.cleaning.simulator` — the cleaning oracle restoring true
  labels.
- :mod:`repro.cleaning.strategies` — the interaction models: fixed-step
  fine-tuning without a feasibility study, and feasibility-study-guided
  loops using the LR proxy or Snoopy.
- :mod:`repro.cleaning.workflow` — grid runner producing the cost curves
  of Figures 9, 10 and 21-27.
"""

from repro.cleaning.costs import (
    CHEAP_LABEL_COST,
    CostModel,
    EXPENSIVE_LABEL_COST,
    FREE_LABEL_COST,
    MACHINE_DOLLARS_PER_HOUR,
)
from repro.cleaning.prioritized import (
    PrioritizedCleaningSession,
    disagreement_scores,
    precision_at_fraction,
)
from repro.cleaning.simulator import CleaningSession
from repro.cleaning.strategies import (
    CostTrace,
    TracePoint,
    run_with_feasibility_study,
    run_without_feasibility_study,
)
from repro.cleaning.workflow import (
    EndToEndOutcome,
    RepeatedOutcome,
    run_end_to_end,
    run_end_to_end_repeated,
)

__all__ = [
    "CHEAP_LABEL_COST",
    "CleaningSession",
    "CostModel",
    "CostTrace",
    "EXPENSIVE_LABEL_COST",
    "EndToEndOutcome",
    "FREE_LABEL_COST",
    "MACHINE_DOLLARS_PER_HOUR",
    "PrioritizedCleaningSession",
    "RepeatedOutcome",
    "TracePoint",
    "disagreement_scores",
    "precision_at_fraction",
    "run_end_to_end",
    "run_end_to_end_repeated",
    "run_with_feasibility_study",
    "run_without_feasibility_study",
]
