"""User interaction models for the end-to-end use case (Section VI-D).

Two families are simulated:

- **Without a feasibility study** (:func:`run_without_feasibility_study`):
  repeatedly run the expensive training system; whenever it misses the
  target, clean a fixed step (1/5/10/50%) and retry.
- **With a feasibility study** (:func:`run_with_feasibility_study`):
  alternate cheap feasibility checks with 1% cleaning steps until the
  study reports REALISTIC, then run the expensive system once.  The
  feasibility signal comes either from Snoopy (with its incremental
  re-run optimization) or from the LR proxy (which re-trains, but never
  re-embeds, after each cleaning step).

Every action appends a :class:`TracePoint`, so a strategy's outcome is a
cost curve directly comparable to Figures 9/10/21-27.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.logistic_regression import (
    SoftmaxRegression,
    _LR_TRAIN_COST_PER_SAMPLE_EPOCH,
)
from repro.cleaning.costs import CostModel
from repro.cleaning.simulator import CleaningSession
from repro.core.result import FeasibilitySignal
from repro.core.snoopy import Snoopy, SnoopyConfig
from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng
from repro.transforms.store import EmbeddingStore, embed_or_transform

#: Simulated seconds for one incremental Snoopy re-run (the paper reports
#: 0.2 ms for 10K test x 50K train; we bill a conservative millisecond).
SNOOPY_INCREMENTAL_RERUN_COST = 1e-3


@dataclass(frozen=True)
class TracePoint:
    """One action in the interaction loop."""

    action: str  # "train" | "clean" | "feasibility"
    fraction_examined: float
    dollars: float  # cumulative
    value: float  # accuracy (train), estimate (feasibility), or NaN


@dataclass
class CostTrace:
    """The full cost curve of one strategy run."""

    strategy: str
    points: list[TracePoint] = field(default_factory=list)
    reached_target: bool = False

    def add(self, action: str, fraction: float, dollars: float, value: float):
        self.points.append(TracePoint(action, fraction, dollars, value))

    @property
    def total_dollars(self) -> float:
        return self.points[-1].dollars if self.points else 0.0

    @property
    def final_fraction_examined(self) -> float:
        return self.points[-1].fraction_examined if self.points else 0.0

    @property
    def num_expensive_runs(self) -> int:
        return sum(1 for p in self.points if p.action == "train")


def run_without_feasibility_study(
    session: CleaningSession,
    trainer,
    target_accuracy: float,
    step_fraction: float,
    cost_model: CostModel,
    max_steps: int = 400,
) -> CostTrace:
    """Baseline loop: expensive train, clean a fixed step, repeat."""
    _check_target(target_accuracy)
    trace = CostTrace(strategy=f"finetune_step_{step_fraction:g}")
    dollars = 0.0
    for _ in range(max_steps):
        result = trainer.run(session.current_dataset())
        dollars += cost_model.compute(result.sim_cost_seconds)
        trace.add("train", session.fraction_examined, dollars, result.test_accuracy)
        if result.test_accuracy >= target_accuracy:
            trace.reached_target = True
            break
        if session.all_cleaned:
            break
        step = session.clean_fraction(step_fraction)
        dollars += cost_model.labels(step.num_examined)
        trace.add("clean", session.fraction_examined, dollars, float("nan"))
    return trace


def run_with_feasibility_study(
    session: CleaningSession,
    trainer,
    target_accuracy: float,
    cost_model: CostModel,
    feasibility: str = "snoopy",
    catalog=None,
    clean_step: float = 0.01,
    max_steps: int = 400,
    snoopy_config: SnoopyConfig | None = None,
    lr_epochs: int = 5,
    retrain_cooldown: int = 5,
    seed: SeedLike = None,
    store: EmbeddingStore | None = None,
) -> CostTrace:
    """Feasibility-guided loop: cheap checks between 1% cleaning steps.

    ``feasibility`` selects the study system: ``"snoopy"`` (incremental
    re-runs after the first full run) or ``"lr"`` (the proxy baseline,
    re-trained but never re-embedded).  ``retrain_cooldown`` is the
    number of cleaning steps the loop waits after a failed expensive run
    before paying for another one.  ``store`` optionally shares one
    :class:`EmbeddingStore` between the study and any other component
    (e.g. the expensive trainer) touching the same catalog.
    """
    _check_target(target_accuracy)
    if catalog is None:
        raise DataValidationError("run_with_feasibility_study requires a catalog")
    if feasibility not in ("snoopy", "lr"):
        raise DataValidationError(
            f"feasibility must be 'snoopy' or 'lr', got {feasibility!r}"
        )
    study = (
        _SnoopyFeasibility(catalog, snoopy_config, store)
        if feasibility == "snoopy"
        else _LRFeasibility(catalog, lr_epochs, seed, store)
    )
    trace = CostTrace(strategy=f"fs_{feasibility}")
    dollars = 0.0
    # Cooldown against false positives: the study projects the *best
    # possible* accuracy, which the concrete expensive trainer may not
    # reach.  After a failed expensive run the loop cleans for several
    # steps before paying for another one, instead of thrashing on
    # re-training at every positive signal.  When the artefact is fully
    # cleaned one final expensive run is always performed.
    cooldown_remaining = 0
    for _ in range(max_steps):
        estimate, sim_cost = study.estimate(session)
        dollars += cost_model.compute(sim_cost)
        projected = 1.0 - estimate
        trace.add("feasibility", session.fraction_examined, dollars, projected)
        signal_positive = projected >= target_accuracy
        should_train = (
            signal_positive and cooldown_remaining == 0
        ) or session.all_cleaned
        if should_train:
            result = trainer.run(session.current_dataset())
            dollars += cost_model.compute(result.sim_cost_seconds)
            trace.add(
                "train", session.fraction_examined, dollars, result.test_accuracy
            )
            if result.test_accuracy >= target_accuracy:
                trace.reached_target = True
                break
            cooldown_remaining = retrain_cooldown
        if session.all_cleaned:
            break
        step = session.clean_fraction(clean_step)
        dollars += cost_model.labels(step.num_examined)
        trace.add("clean", session.fraction_examined, dollars, float("nan"))
        study.apply_cleaning(step)
        cooldown_remaining = max(0, cooldown_remaining - 1)
    return trace


def _check_target(target_accuracy: float) -> None:
    if not 0.0 < target_accuracy <= 1.0:
        raise DataValidationError(
            f"target_accuracy must be in (0, 1], got {target_accuracy}"
        )


class _SnoopyFeasibility:
    """Snoopy study: one full run, then incremental O(test) re-runs."""

    def __init__(
        self,
        catalog,
        config: SnoopyConfig | None,
        store: EmbeddingStore | None = None,
    ):
        self._catalog = catalog
        self._config = config
        self._store = store
        self._state = None

    def estimate(self, session: CleaningSession) -> tuple[float, float]:
        if self._state is None:
            system = Snoopy(self._catalog, self._config, store=self._store)
            report = system.run(session.current_dataset(), target_accuracy=1.0)
            self._state = system.incremental_state()
            return report.ber_estimate, report.total_sim_cost_seconds
        _, estimate = self._state.ber_estimate()
        return estimate, SNOOPY_INCREMENTAL_RERUN_COST

    def apply_cleaning(self, step) -> None:
        if self._state is not None:
            self._state.apply_cleaning(
                step.train_indices,
                step.train_labels,
                step.test_indices,
                step.test_labels,
            )


class _LRFeasibility:
    """LR-proxy study: embeddings computed once, grid re-trained per check."""

    def __init__(
        self,
        catalog,
        num_epochs: int,
        seed: SeedLike,
        store: EmbeddingStore | None = None,
    ):
        self._catalog = list(catalog)
        self._num_epochs = num_epochs
        self._rng = ensure_rng(seed)
        self._store = store
        self._embedded: list[tuple[str, object, object, float]] | None = None

    def _embed(self, dataset) -> float:
        """Embed all splits once; returns the inference sim cost."""
        self._embedded = []
        cost = 0.0
        total = dataset.num_train + dataset.num_test
        for transform in self._catalog:
            if not transform.fitted:
                transform.fit(dataset.train_x)
            self._embedded.append(
                (
                    transform.name,
                    embed_or_transform(self._store, transform, dataset.train_x),
                    embed_or_transform(self._store, transform, dataset.test_x),
                    transform.inference_cost(total),
                )
            )
            cost += transform.inference_cost(total)
        return cost

    def estimate(self, session: CleaningSession) -> tuple[float, float]:
        dataset = session.current_dataset()
        sim_cost = 0.0
        if self._embedded is None:
            sim_cost += self._embed(dataset)
        best = 1.0
        for _, train_f, test_f, _ in self._embedded:
            model = SoftmaxRegression(
                learning_rate=0.1,
                num_epochs=self._num_epochs,
                seed=self._rng,
            ).fit(train_f, dataset.train_y, dataset.num_classes)
            best = min(best, model.error(test_f, dataset.test_y))
            sim_cost += (
                _LR_TRAIN_COST_PER_SAMPLE_EPOCH
                * dataset.num_train
                * self._num_epochs
            )
        return best, sim_cost

    def apply_cleaning(self, step) -> None:
        """Labels live in the session; embeddings are label-independent."""
