"""Prioritized (disagreement-first) label cleaning.

The paper's end-to-end use case cleans labels uniformly at random; its
data-centric-AI discussion suggests the feasibility signal can guide
data actions more directly.  This module implements that idea: rank
samples by how suspicious their current label looks under the 1NN
structure Snoopy already maintains, and clean the most suspicious first.

The suspicion score for a training sample is the fraction of its k
nearest same-split neighbors that disagree with its current label (a
classic noisy-label filter); test samples are scored by disagreement
with their nearest training neighbor.  Cleaning in this order finds
actually-flipped labels far faster than random order at equal human
effort — the ablation benchmark quantifies the saving.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.simulator import CleaningSession, CleaningStep
from repro.datasets.base import Dataset
from repro.exceptions import DataValidationError
from repro.knn.base import make_index
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform
from repro.transforms.store import EmbeddingStore, embed_or_transform


def disagreement_scores(
    dataset: Dataset,
    transform: FeatureTransform | None = None,
    k: int = 5,
    metric: str = "euclidean",
    store: EmbeddingStore | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample label-suspicion scores in [0, 1] for (train, test).

    Higher = more likely mislabeled.  Scores are computed on the
    transformed features when a transform is given (recommended: the
    winning embedding of a Snoopy run); passing the run's ``store``
    reuses the embeddings that run already computed.
    """
    if k < 1:
        raise DataValidationError("k must be >= 1")
    if transform is not None:
        if not transform.fitted:
            transform.fit(dataset.train_x)
        train_f = embed_or_transform(store, transform, dataset.train_x)
        test_f = embed_or_transform(store, transform, dataset.test_x)
    else:
        train_f, test_f = dataset.train_x, dataset.test_x
    # Exact backend: suspicion scoring leans on leave-one-out queries.
    index = make_index("brute_force", metric=metric).fit(
        train_f, dataset.train_y
    )
    k_eff = min(k, max(1, len(train_f) - 1))
    _, neighbor_idx = index.kneighbors(train_f, k=k_eff, exclude_self=True)
    neighbor_labels = dataset.train_y[neighbor_idx]
    train_scores = np.mean(
        neighbor_labels != dataset.train_y[:, None], axis=1
    )
    _, test_nn = index.kneighbors(test_f, k=k_eff)
    test_neighbor_labels = dataset.train_y[test_nn]
    test_scores = np.mean(
        test_neighbor_labels != dataset.test_y[:, None], axis=1
    )
    return train_scores, test_scores


class PrioritizedCleaningSession(CleaningSession):
    """A cleaning session that examines suspicious samples first.

    Drop-in replacement for :class:`CleaningSession`: the examination
    order is descending suspicion (ties broken randomly) instead of
    uniform.  Scores are computed once up front from the *noisy* labels,
    matching the realistic workflow of ranking before a cleaning pass.
    """

    def __init__(
        self,
        dataset: Dataset,
        transform: FeatureTransform | None = None,
        k: int = 5,
        metric: str = "euclidean",
        rng: SeedLike = None,
    ):
        super().__init__(dataset, rng=rng)
        rng = ensure_rng(rng)
        train_scores, test_scores = disagreement_scores(
            dataset, transform=transform, k=k, metric=metric
        )
        combined = np.concatenate([train_scores, test_scores])
        # Random jitter breaks ties without disturbing the ranking.
        jitter = rng.random(len(combined)) * 1e-9
        self._order = np.argsort(-(combined + jitter), kind="stable")


def precision_at_fraction(
    session: CleaningSession, fraction: float
) -> tuple[CleaningStep, float]:
    """Clean a fraction and report what share of examined labels was wrong.

    Utility for the prioritization ablation: a perfect ranker achieves
    precision ~ min(1, noise / fraction); a random order achieves
    precision ~ noise.
    """
    before_wrong = session.remaining_noise_rate() * session.total_samples
    step = session.clean_fraction(fraction)
    after_wrong = session.remaining_noise_rate() * session.total_samples
    fixed = before_wrong - after_wrong
    precision = fixed / max(step.num_examined, 1)
    return step, float(precision)
