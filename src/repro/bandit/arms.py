"""Transformation arms: streamed inference + incremental 1NN per embedding.

An arm owns one feature transformation and a :class:`ProgressiveOneNN`
evaluator bound to the transformed test set.  Pulling the arm embeds the
next chunk of training samples (accruing simulated inference cost) and
updates the exact 1NN test error.  Losses are the 1NN errors — lower is
better — exactly the quantity successive halving ranks on.

Arms are the unit of work of the staged execution engine: the multi-pull
plans (:meth:`TransformationArm.pull_to`,
:meth:`TransformationArm.pull_with_tangent`,
:meth:`TransformationArm.exhaust`) touch only the arm's own state, so a
:class:`repro.core.engine.RoundScheduler` can run them on any backend —
including across a pickle boundary — with bit-identical results.
"""

from __future__ import annotations

import numpy as np

from repro.bandit.tangent import tangent_lower_bound
from repro.exceptions import BudgetError, DataValidationError
from repro.knn.progressive import ProgressiveOneNN
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform, fit_on
from repro.transforms.store import (
    EmbeddingStore,
    SharedArrayRef,
    embed_or_transform,
)


class TransformationArm:
    """One bandit arm wrapping a transformation and its 1NN evaluator.

    Parameters
    ----------
    transform:
        A *fitted* :class:`FeatureTransform`.
    train_x, train_y:
        The full (pre-shuffled) training pool this arm may consume.
    test_x, test_y:
        Test split; embedded once, up front (test sets are small).
    metric:
        Distance metric for the 1NN evaluator.
    knn_backend:
        Search backend for the 1NN evaluator, resolved through
        :func:`repro.knn.base.make_index`; ``None`` keeps the built-in
        exact pairwise scan.  Append-capable ANN backends ("ivf_pq")
        persist across pulls — each pull's chunk is encoded into the
        compressed index instead of rebuilding one.
    knn_backend_options:
        Extra backend constructor kwargs (e.g. ``pq_m``, ``pq_nbits``,
        ``nprobe``, ``rerank`` for "ivf_pq").
    store:
        Optional shared :class:`EmbeddingStore`; when given, every chunk
        embedding is memoized, so sibling runs (another strategy, a
        post-cleaning re-run) never recompute a transform output.
    dtype:
        Compute dtype for the 1NN distance arithmetic
        ("float32"/"float64"; ``None`` keeps the strict float64 path).
        Pair a float32 arm with a float32 store so cached chunks feed
        the evaluator without a widening round-trip.
    seed:
        Optional per-arm RNG stream, exposed as :attr:`rng` (see
        :func:`repro.core.engine.spawn_arm_streams`).  The current pull
        path is fully deterministic and draws nothing; any future
        stochastic arm step must use this stream (never a shared
        generator) so results stay independent of the execution
        schedule.
    scan_executor:
        Optional :class:`~repro.core.engine.ShardedScanExecutor`
        forwarded to the evaluator's sharded inverted-list backend.
        Process-local (never picklable), so it is only set when arms
        run on the serial/thread execution backends.
    """

    def __init__(
        self,
        transform: FeatureTransform,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        metric: str = "euclidean",
        knn_backend: str | None = None,
        knn_backend_options: dict | None = None,
        store: EmbeddingStore | None = None,
        dtype=None,
        seed: SeedLike = None,
        scan_executor=None,
    ):
        if not transform.fitted:
            raise DataValidationError(
                f"arm {transform.name!r}: transform must be fitted"
            )
        self.transform = transform
        self.store = store
        self.dtype = dtype
        self.rng = None if seed is None else ensure_rng(seed)
        self._train_x = np.asarray(train_x, dtype=np.float64)
        self._train_y = np.asarray(train_y, dtype=np.int64)
        if len(self._train_x) == 0:
            raise DataValidationError("arm needs a non-empty training pool")
        embedded_test = embed_or_transform(
            store, transform, np.asarray(test_x, dtype=np.float64)
        )
        self.evaluator = ProgressiveOneNN(
            embedded_test,
            test_y,
            metric=metric,
            knn_backend=knn_backend,
            knn_backend_options=knn_backend_options,
            dtype=dtype,
            scan_executor=scan_executor,
        )
        self.sim_cost = transform.inference_cost(len(test_y))
        self.losses: list[float] = []
        self.pull_sizes: list[int] = []

    @property
    def name(self) -> str:
        return self.transform.name

    @property
    def samples_used(self) -> int:
        return self.evaluator.train_seen

    @property
    def exhausted(self) -> bool:
        return self.samples_used >= len(self._train_x)

    @property
    def current_loss(self) -> float:
        """Latest 1NN error; infinity before the first pull."""
        return self.losses[-1] if self.losses else np.inf

    @property
    def train_pool_size(self) -> int:
        return len(self._train_x)

    @property
    def train_labels(self) -> np.ndarray:
        """Labels of this arm's (pre-shuffled) training pool (copy)."""
        return self._train_y.copy()

    @property
    def test_labels(self) -> np.ndarray:
        """Current test labels as seen by the evaluator (copy)."""
        return self.evaluator.test_labels

    def pull(self, num_samples: int) -> float:
        """Embed and ingest up to ``num_samples`` further training points.

        Returns the updated 1NN error.  Pulling an exhausted arm re-reports
        the current loss without cost, so allocation loops need no special
        casing near the end of the pool.
        """
        if num_samples < 0:
            raise BudgetError(f"num_samples must be >= 0, got {num_samples}")
        start = self.samples_used
        stop = min(start + num_samples, len(self._train_x))
        if stop > start:
            chunk_x = self._embed_chunk(start, stop)
            loss = self.evaluator.partial_fit(chunk_x, self._train_y[start:stop])
            self.sim_cost += self.transform.inference_cost(stop - start)
        else:
            loss = self.current_loss
        self.losses.append(loss)
        self.pull_sizes.append(stop - start)
        return loss

    def pull_to(self, target: int, pull_size: int) -> float:
        """Pull chunk-wise until ``target`` cumulative samples are consumed.

        Guarantees at least one loss reading exists once the target is
        met (appending a zero-cost reading if needed), then returns the
        current loss.  Self-contained: safe to run on any execution
        backend.
        """
        while self.samples_used < target and not self.exhausted:
            self.pull(min(pull_size, target - self.samples_used))
        if self.samples_used >= target and (
            not self.losses or self.pull_sizes[-1] == 0
        ):
            self.pull(0)
        return self.current_loss

    def pull_with_tangent(
        self, target: int, pull_size: int, threshold: float
    ) -> bool:
        """Algorithm 2: pull chunk-wise, stop when provably eliminated.

        After every chunk the tangent lower bound of the convergence
        curve at ``target`` is compared against ``threshold`` (the worst
        current loss of the round's protected better half); exceeding it
        proves the arm cannot survive the round.  Returns True if the
        arm completed the round (still a contender), False if pruned.
        """
        if not self.losses:
            self.pull(min(pull_size, target))
        while self.samples_used < target and not self.exhausted:
            sizes, losses = self.loss_curve()
            prediction = tangent_lower_bound(sizes, losses, target)
            if prediction > threshold:
                return False
            self.pull(min(pull_size, target - self.samples_used))
        return True

    def exhaust(self, pull_size: int = 512) -> float:
        """Feed the arm its entire remaining pool; returns the final loss."""
        while not self.exhausted:
            self.pull(pull_size)
        return self.current_loss

    def loss_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative sample counts, losses) for convergence plots."""
        return self.evaluator.curve_arrays()

    def __getstate__(self) -> dict:
        """Ship the training pool as a shared-memory ref when possible.

        The pool dominates an arm's pickled size (tens of MB at study
        scale) and is identical across the pool boundary, so with a
        sharing-enabled store attached it is replaced by a
        :class:`SharedArrayRef` — workers map the parent's segment
        zero-copy instead of receiving a payload.  Without a sharing
        store (serial/thread backends never pickle arms; plain stores
        predate sharing) the full array is shipped as before.
        """
        state = dict(self.__dict__)
        store = self.store
        if store is not None and store.can_share_arrays:
            ref = store.share_array(self._train_x)
            if ref is not None:
                state["_train_x"] = ref
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        pool = self._train_x
        if isinstance(pool, SharedArrayRef):
            resolved = (
                None if self.store is None else self.store.resolve_array(pool)
            )
            if resolved is None:
                raise DataValidationError(
                    f"arm {self.transform.name!r}: shared training pool "
                    f"{pool.key[1].hex() if isinstance(pool.key[1], bytes) else pool.key[1]} "
                    "is gone (store closed or segment unlinked)"
                )
            self._train_x = resolved

    def _embed_chunk(self, start: int, stop: int) -> np.ndarray:
        if self.store is not None:
            return self.store.embed_rows(
                self.transform, self._train_x, start, stop
            )
        return self.transform.transform(self._train_x[start:stop])


def build_arms(
    transforms,
    dataset,
    metric: str = "euclidean",
    rng: SeedLike = None,
    knn_backend: str | None = None,
    knn_backend_options: dict | None = None,
    store: EmbeddingStore | None = None,
    dtype=None,
    scan_executor=None,
) -> list[TransformationArm]:
    """Fit each transform on the training split and wrap it in an arm.

    The training pool is shuffled once and shared (in the same order)
    across arms so that all arms see identical sample sequences —
    removing sampling noise from the arm comparison.
    """
    rng = ensure_rng(rng)
    order = rng.permutation(dataset.num_train)
    train_x = dataset.train_x[order]
    train_y = dataset.train_y[order]
    arms = []
    for transform in transforms:
        if not transform.fitted:
            fit_on(transform, train_x, train_y)
        arms.append(
            TransformationArm(
                transform,
                train_x,
                train_y,
                dataset.test_x,
                dataset.test_y,
                metric=metric,
                knn_backend=knn_backend,
                knn_backend_options=knn_backend_options,
                store=store,
                dtype=dtype,
                scan_executor=scan_executor,
            )
        )
    return arms
