"""Transformation arms: streamed inference + incremental 1NN per embedding.

An arm owns one feature transformation and a :class:`ProgressiveOneNN`
evaluator bound to the transformed test set.  Pulling the arm embeds the
next chunk of training samples (accruing simulated inference cost) and
updates the exact 1NN test error.  Losses are the 1NN errors — lower is
better — exactly the quantity successive halving ranks on.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.exceptions import BudgetError, DataValidationError
from repro.knn.progressive import ProgressiveOneNN
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform


class TransformationArm:
    """One bandit arm wrapping a transformation and its 1NN evaluator.

    Parameters
    ----------
    transform:
        A *fitted* :class:`FeatureTransform`.
    train_x, train_y:
        The full (pre-shuffled) training pool this arm may consume.
    test_x, test_y:
        Test split; embedded once, up front (test sets are small).
    metric:
        Distance metric for the 1NN evaluator.
    knn_backend:
        Search backend for the 1NN evaluator, resolved through
        :func:`repro.knn.base.make_index`; ``None`` keeps the built-in
        exact pairwise scan.
    """

    def __init__(
        self,
        transform: FeatureTransform,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        metric: str = "euclidean",
        knn_backend: str | None = None,
    ):
        if not transform.fitted:
            raise DataValidationError(
                f"arm {transform.name!r}: transform must be fitted"
            )
        self.transform = transform
        self._train_x = np.asarray(train_x, dtype=np.float64)
        self._train_y = np.asarray(train_y, dtype=np.int64)
        if len(self._train_x) == 0:
            raise DataValidationError("arm needs a non-empty training pool")
        embedded_test = transform.transform(np.asarray(test_x, dtype=np.float64))
        self.evaluator = ProgressiveOneNN(
            embedded_test, test_y, metric=metric, knn_backend=knn_backend
        )
        self.sim_cost = transform.inference_cost(len(test_y))
        self.losses: list[float] = []
        self.pull_sizes: list[int] = []

    @property
    def name(self) -> str:
        return self.transform.name

    @property
    def samples_used(self) -> int:
        return self.evaluator.train_seen

    @property
    def exhausted(self) -> bool:
        return self.samples_used >= len(self._train_x)

    @property
    def current_loss(self) -> float:
        """Latest 1NN error; infinity before the first pull."""
        return self.losses[-1] if self.losses else np.inf

    @property
    def train_pool_size(self) -> int:
        return len(self._train_x)

    def pull(self, num_samples: int) -> float:
        """Embed and ingest up to ``num_samples`` further training points.

        Returns the updated 1NN error.  Pulling an exhausted arm re-reports
        the current loss without cost, so allocation loops need no special
        casing near the end of the pool.
        """
        if num_samples < 0:
            raise BudgetError(f"num_samples must be >= 0, got {num_samples}")
        start = self.samples_used
        stop = min(start + num_samples, len(self._train_x))
        if stop > start:
            chunk_x = self.transform.transform(self._train_x[start:stop])
            loss = self.evaluator.partial_fit(chunk_x, self._train_y[start:stop])
            self.sim_cost += self.transform.inference_cost(stop - start)
        else:
            loss = self.current_loss
        self.losses.append(loss)
        self.pull_sizes.append(stop - start)
        return loss

    def loss_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative sample counts, losses) for convergence plots."""
        return self.evaluator.curve_arrays()


def build_arms(
    transforms,
    dataset,
    metric: str = "euclidean",
    rng: SeedLike = None,
    knn_backend: str | None = None,
) -> list[TransformationArm]:
    """Fit each transform on the training split and wrap it in an arm.

    The training pool is shuffled once and shared (in the same order)
    across arms so that all arms see identical sample sequences —
    removing sampling noise from the arm comparison.
    """
    rng = ensure_rng(rng)
    order = rng.permutation(dataset.num_train)
    train_x = dataset.train_x[order]
    train_y = dataset.train_y[order]
    arms = []
    for transform in transforms:
        if not transform.fitted:
            _fit_transform(transform, train_x, train_y)
        arms.append(
            TransformationArm(
                transform,
                train_x,
                train_y,
                dataset.test_x,
                dataset.test_y,
                metric=metric,
                knn_backend=knn_backend,
            )
        )
    return arms


def _fit_transform(
    transform: FeatureTransform, x: np.ndarray, y: np.ndarray
) -> None:
    """Fit a transform, passing labels only to supervised ones (NCA)."""
    if "y" in inspect.signature(transform.fit).parameters:
        transform.fit(x, y)
    else:
        transform.fit(x)
