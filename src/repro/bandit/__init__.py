"""Resource allocation across transformations (Section V).

Computing every embedding on every sample is the bottleneck of a
feasibility study.  Casting each transformation as an *arm* whose pulls
stream training batches through inference + incremental 1NN turns the
problem into non-stochastic best-arm identification:

- :mod:`repro.bandit.arms` — the streamed transformation arm.
- :mod:`repro.bandit.successive_halving` — Algorithm 1 (Jamieson &
  Talwalkar 2016), optionally with the tangent early-stopping rule of
  Algorithm 2.
- :mod:`repro.bandit.uniform` — the uniform-allocation baseline.
- :mod:`repro.bandit.doubling` — the doubling trick removing the budget
  hyper-parameter.
"""

from repro.bandit.arms import TransformationArm, build_arms
from repro.bandit.doubling import doubling_successive_halving
from repro.bandit.successive_halving import (
    SelectionResult,
    successive_halving,
)
from repro.bandit.tangent import tangent_lower_bound
from repro.bandit.uniform import uniform_allocation

__all__ = [
    "SelectionResult",
    "TransformationArm",
    "build_arms",
    "doubling_successive_halving",
    "successive_halving",
    "tangent_lower_bound",
    "uniform_allocation",
]
