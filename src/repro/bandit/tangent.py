"""Tangent-based lower bounds on 1NN convergence curves (Algorithm 2).

Under mild assumptions the kNN error curve decreases as ``n^(-2/d)`` and
is convex on average, so the tangent at the last known point is a lower
bound on any future value of the curve.  The paper approximates the
tangent by the secant through the last two known points; the same
approximation is used here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError


def tangent_lower_bound(
    sizes: np.ndarray | list[int],
    losses: np.ndarray | list[float],
    target_size: int,
) -> float:
    """Predict the best-case (lowest) loss reachable at ``target_size``.

    Uses the line through the two most recent curve points, clipped at
    zero.  For a convex decreasing curve this is a valid lower bound;
    for a flat or rising tail the prediction equals the last loss.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    losses = np.asarray(losses, dtype=np.float64)
    if len(sizes) != len(losses):
        raise ConvergenceError("sizes and losses length mismatch")
    if len(sizes) == 0:
        raise ConvergenceError("need at least one curve point")
    if len(sizes) == 1:
        # Cannot form a secant: the only safe lower bound is zero for a
        # decreasing curve — but the algorithm uses this before a second
        # pull only, so returning 0 just means "cannot prune yet".
        return 0.0
    n_prev, n_last = sizes[-2], sizes[-1]
    l_prev, l_last = losses[-2], losses[-1]
    if target_size < n_last:
        raise ConvergenceError(
            f"target_size {target_size} precedes last point {n_last}"
        )
    if n_last == n_prev:
        return float(max(0.0, l_last))
    slope = (l_last - l_prev) / (n_last - n_prev)
    slope = min(slope, 0.0)  # curves are decreasing on average
    prediction = l_last + slope * (target_size - n_last)
    return float(max(0.0, prediction))
