"""Uniform allocation baseline (the non-adaptive strategy of Figure 12)."""

from __future__ import annotations

from repro.bandit.arms import TransformationArm
from repro.bandit.successive_halving import SelectionResult
from repro.exceptions import BudgetError


def uniform_allocation(
    arms: list[TransformationArm],
    budget: int,
    pull_size: int = 64,
) -> SelectionResult:
    """Split the sample budget evenly across all arms, no elimination."""
    if not arms:
        raise BudgetError("need at least one arm")
    if budget < len(arms):
        raise BudgetError(
            f"budget {budget} smaller than the number of arms {len(arms)}"
        )
    per_arm = budget // len(arms)
    for arm in arms:
        while arm.samples_used < per_arm and not arm.exhausted:
            arm.pull(min(pull_size, per_arm - arm.samples_used))
        if not arm.losses:
            arm.pull(0)
    winner = min(arms, key=lambda arm: arm.current_loss)
    return SelectionResult(
        winner=winner,
        strategy="uniform",
        total_samples=sum(arm.samples_used for arm in arms),
        total_sim_cost=sum(arm.sim_cost for arm in arms),
        samples_per_arm={arm.name: arm.samples_used for arm in arms},
    )
