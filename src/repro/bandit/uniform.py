"""Uniform allocation baseline (the non-adaptive strategy of Figure 12)."""

from __future__ import annotations

from repro.bandit.arms import TransformationArm
from repro.bandit.successive_halving import SelectionResult
from repro.core.engine import RoundScheduler
from repro.exceptions import BudgetError


def uniform_allocation(
    arms: list[TransformationArm],
    budget: int,
    pull_size: int = 64,
    scheduler: RoundScheduler | None = None,
) -> SelectionResult:
    """Split the sample budget evenly across all arms, no elimination.

    Arms are mutually independent, so the single round dispatches through
    the scheduler's execution backend (serial when ``scheduler`` is
    ``None``) with bit-identical results.
    """
    if not arms:
        raise BudgetError("need at least one arm")
    if budget < len(arms):
        raise BudgetError(
            f"budget {budget} smaller than the number of arms {len(arms)}"
        )
    scheduler = scheduler or RoundScheduler()
    per_arm = budget // len(arms)
    scheduler.pull_to(arms, per_arm, pull_size)
    winner = min(arms, key=lambda arm: arm.current_loss)
    return SelectionResult(
        winner=winner,
        strategy="uniform",
        total_samples=sum(arm.samples_used for arm in arms),
        total_sim_cost=sum(arm.sim_cost for arm in arms),
        samples_per_arm={arm.name: arm.samples_used for arm in arms},
    )
