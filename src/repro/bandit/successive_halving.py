"""Successive halving over transformation arms (Algorithm 1).

Budget semantics follow Jamieson & Talwalkar: a total budget ``B`` of arm
pulls — here measured in *training samples embedded* — is split evenly
across the ``ceil(log2 n)`` halving rounds, and within a round evenly
across surviving arms.  After each round the worse half of the arms is
dropped.

The tangent variant (Algorithm 2, ``use_tangent=True``) additionally
stops pulling an arm mid-round as soon as the tangent lower bound of its
convergence curve at the round's end exceeds the worst current loss among
the protected better half — such an arm provably cannot survive the
round, so skipping its remaining pulls cannot change the set of
survivors, and all of successive halving's guarantees carry over.

Within a round, arm pulls are independent: every surviving arm pulls to
the same cumulative target using only its own state, and the tangent
threshold is fixed (from the protected half) before any candidate is
pulled.  Both loops therefore dispatch through a
:class:`repro.core.engine.RoundScheduler`, which issues the pulls
concurrently on the configured backend with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bandit.arms import TransformationArm
from repro.core.engine import RoundScheduler
from repro.exceptions import BudgetError


@dataclass
class SelectionResult:
    """Outcome of an allocation strategy over transformation arms."""

    winner: TransformationArm
    strategy: str
    total_samples: int
    total_sim_cost: float
    samples_per_arm: dict[str, int]
    round_survivors: list[list[str]] = field(default_factory=list)
    pruned_by_tangent: list[str] = field(default_factory=list)

    @property
    def winner_name(self) -> str:
        return self.winner.name


def successive_halving(
    arms: list[TransformationArm],
    budget: int,
    pull_size: int = 64,
    use_tangent: bool = False,
    scheduler: RoundScheduler | None = None,
) -> SelectionResult:
    """Run Algorithm 1 (optionally with Algorithm 2's tangent breaks).

    Parameters
    ----------
    arms:
        Freshly built (or partially pulled — see the doubling trick)
        transformation arms.
    budget:
        Total number of training samples that may be embedded across all
        arms and rounds.
    pull_size:
        Chunk size of a single pull; the tangent rule evaluates after
        every chunk.
    use_tangent:
        Enable the early-stopping variant.
    scheduler:
        Round scheduler carrying the execution backend; ``None`` runs
        serially.  Results are bit-identical across backends.
    """
    if not arms:
        raise BudgetError("need at least one arm")
    if budget < 1:
        raise BudgetError(f"budget must be positive, got {budget}")
    if pull_size < 1:
        raise BudgetError(f"pull_size must be positive, got {pull_size}")
    scheduler = scheduler or RoundScheduler()
    num_arms = len(arms)
    rounds = max(1, int(np.ceil(np.log2(num_arms))))
    surviving = list(arms)
    pruned_names: list[str] = []
    history: list[list[str]] = []
    cumulative_target = 0
    for _ in range(rounds):
        count = len(surviving)
        if count == 1:
            break
        per_arm = budget // (count * rounds)
        if per_arm < 1:
            raise BudgetError(
                f"budget {budget} too small for {num_arms} arms over "
                f"{rounds} rounds"
            )
        cumulative_target += per_arm
        keep = max(1, count // 2)
        if use_tangent:
            # The better half (by current loss) is protected and pulled in
            # full; the rest may be pruned by the tangent rule.  The
            # threshold is fixed before any candidate pulls, so the
            # candidates are mutually independent and run concurrently.
            surviving.sort(key=lambda arm: arm.current_loss)
            protected, candidates = surviving[:keep], surviving[keep:]
            scheduler.pull_to(protected, cumulative_target, pull_size)
            threshold = max(arm.current_loss for arm in protected)
            survived = scheduler.pull_with_tangent(
                candidates, cumulative_target, pull_size, threshold
            )
            kept_candidates = []
            for arm, kept in zip(candidates, survived):
                if kept:
                    kept_candidates.append(arm)
                else:
                    pruned_names.append(arm.name)
            surviving = protected + kept_candidates
        else:
            scheduler.pull_to(surviving, cumulative_target, pull_size)
        surviving.sort(key=lambda arm: arm.current_loss)
        surviving = surviving[:keep]
        history.append([arm.name for arm in surviving])
    winner = min(surviving, key=lambda arm: arm.current_loss)
    return SelectionResult(
        winner=winner,
        strategy="successive_halving_tangent" if use_tangent else
        "successive_halving",
        total_samples=sum(arm.samples_used for arm in arms),
        total_sim_cost=sum(arm.sim_cost for arm in arms),
        samples_per_arm={arm.name: arm.samples_used for arm in arms},
        round_survivors=history,
        pruned_by_tangent=pruned_names,
    )


