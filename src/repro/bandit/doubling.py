"""The doubling trick: remove the budget hyper-parameter (cf. Section V).

Successive halving needs a total budget up front.  Following Jamieson &
Talwalkar (Section 3), running it with budget B, 2B, 4B, ... until the
winner has consumed its full training pool eliminates the dependence on
the initial choice at a constant-factor cost.  Arms keep their state
between iterations, so no pulled sample is ever wasted.
"""

from __future__ import annotations

import numpy as np

from repro.bandit.arms import TransformationArm
from repro.bandit.successive_halving import (
    SelectionResult,
    successive_halving,
)
from repro.exceptions import BudgetError


def doubling_successive_halving(
    arms: list[TransformationArm],
    initial_budget: int | None = None,
    pull_size: int = 64,
    use_tangent: bool = False,
    max_doublings: int = 20,
    scheduler=None,
) -> SelectionResult:
    """Run successive halving with doubling budgets until the winner
    exhausts its training pool.

    ``initial_budget`` defaults to one ``pull_size`` chunk per arm per
    round — the smallest budget Algorithm 1 accepts.
    """
    if not arms:
        raise BudgetError("need at least one arm")
    rounds = max(1, int(np.ceil(np.log2(len(arms)))))
    budget = initial_budget or pull_size * len(arms) * rounds
    result = successive_halving(
        arms, budget, pull_size=pull_size, use_tangent=use_tangent,
        scheduler=scheduler,
    )
    for _ in range(max_doublings):
        if result.winner.exhausted:
            break
        budget *= 2
        result = successive_halving(
            arms, budget, pull_size=pull_size, use_tangent=use_tangent,
            scheduler=scheduler,
        )
    result = SelectionResult(
        winner=result.winner,
        strategy=result.strategy + "_doubling",
        total_samples=sum(arm.samples_used for arm in arms),
        total_sim_cost=sum(arm.sim_cost for arm in arms),
        samples_per_arm={arm.name: arm.samples_used for arm in arms},
        round_survivors=result.round_survivors,
        pruned_by_tangent=result.pruned_by_tangent,
    )
    return result
