"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so applications
can catch everything from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DataValidationError(ReproError):
    """A dataset, label array, or feature matrix failed validation."""


class UnknownBackendError(DataValidationError):
    """An unregistered kNN backend name was requested.

    Raised by :func:`repro.knn.base.make_index`; the message names the
    registered backends so a typo is self-diagnosing.  Subclasses
    :class:`DataValidationError` so existing callers that catch the
    broader class keep working.
    """


class TransitionMatrixError(DataValidationError):
    """A label-noise transition matrix is malformed (shape, rows, range)."""


class EstimatorError(ReproError):
    """A Bayes-error estimator could not produce an estimate."""


class ConvergenceError(ReproError):
    """A curve fit or extrapolation failed to converge or is untrustworthy."""


class BudgetError(ReproError):
    """A resource-allocation routine received an unusable budget."""
