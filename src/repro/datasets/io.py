"""Dataset persistence: save/load to a single ``.npz`` archive.

The synthetic generators are deterministic, but users of the library may
want to pin the exact realized sample (e.g. to share a noisy artefact
across machines or archive the input of a study).  The archive stores
features, labels, clean labels when present, and scalar metadata; the
oracle (a function of the generator, not the sample) is *not* persisted
— reload it by reconstructing the task if ground truth is needed.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DataValidationError

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: str | pathlib.Path) -> pathlib.Path:
    """Write a dataset to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    metadata = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "num_classes": dataset.num_classes,
        "modality": dataset.modality,
        "sota_error": dataset.sota_error,
        "extras": {
            key: value
            for key, value in dataset.extras.items()
            if isinstance(value, (str, int, float, bool))
        },
    }
    arrays = {
        "train_x": dataset.train_x,
        "train_y": dataset.train_y,
        "test_x": dataset.test_x,
        "test_y": dataset.test_y,
        "metadata_json": np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8
        ),
    }
    if dataset.clean_train_y is not None:
        arrays["clean_train_y"] = dataset.clean_train_y
    if dataset.clean_test_y is not None:
        arrays["clean_test_y"] = dataset.clean_test_y
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: str | pathlib.Path) -> Dataset:
    """Load a dataset archive written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise DataValidationError(f"no dataset archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata_json"]).decode())
        except KeyError:
            raise DataValidationError(
                f"{path} is not a repro dataset archive"
            ) from None
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise DataValidationError(
                f"unsupported archive version {metadata.get('format_version')}"
            )
        return Dataset(
            name=metadata["name"],
            train_x=archive["train_x"],
            train_y=archive["train_y"],
            test_x=archive["test_x"],
            test_y=archive["test_y"],
            num_classes=metadata["num_classes"],
            modality=metadata["modality"],
            sota_error=metadata["sota_error"],
            clean_train_y=(
                archive["clean_train_y"] if "clean_train_y" in archive else None
            ),
            clean_test_y=(
                archive["clean_test_y"] if "clean_test_y" in archive else None
            ),
            extras=dict(metadata.get("extras", {})),
        )
