"""Dataset substrate with known ground-truth Bayes error.

The paper evaluates on MNIST/CIFAR10/CIFAR100/IMDB/SST2/YELP plus the
human-annotated noisy CIFAR-N variants.  Offline, this package provides
Gaussian-mixture analogues whose true BER is *known by construction*,
which is what every estimator-quality claim in the evaluation actually
requires (the paper itself resorts to the FeeBee noise-series protocol
because the true BER of the real datasets is unknowable).

- :mod:`repro.datasets.base` — the :class:`Dataset` container.
- :mod:`repro.datasets.synthetic` — the mixture task generator + oracle.
- :mod:`repro.datasets.catalog` — the six paper datasets (Table I).
- :mod:`repro.datasets.cifar_n` — CIFAR-N noisy variants (Table II).
- :mod:`repro.datasets.vtab` — the 19-task VTAB-like suite (Figure 11).
"""

from repro.datasets.base import Dataset
from repro.datasets.catalog import (
    DATASET_SPECS,
    DatasetSpec,
    dataset_names,
    load,
)
from repro.datasets.cifar_n import (
    CIFAR_N_STATS,
    CifarNStats,
    cifar_n_transition,
    load_cifar_n,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.synthetic import GaussianMixtureTask, TaskOracle
from repro.datasets.vtab import VTAB_TASK_NAMES, load_vtab_suite

__all__ = [
    "CIFAR_N_STATS",
    "CifarNStats",
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "GaussianMixtureTask",
    "TaskOracle",
    "VTAB_TASK_NAMES",
    "cifar_n_transition",
    "dataset_names",
    "load",
    "load_cifar_n",
    "load_dataset",
    "save_dataset",
    "load_vtab_suite",
]
