"""Stratified splitting utilities.

The library's generated datasets arrive pre-split, but user-supplied
data (the primary Snoopy use case) usually does not.  These helpers
produce label-stratified holdout splits and k-folds so that every class
is represented on both sides — a practical necessity for the 1NN test
error with many classes and few samples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng


def stratified_split(
    labels: np.ndarray,
    test_fraction: float = 0.2,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_indices, test_indices) stratified by label.

    Each class contributes ``round(test_fraction * count)`` test samples
    (at least one when the class has two or more members).
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataValidationError("test_fraction must be in (0, 1)")
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) < 2:
        raise DataValidationError("need at least 2 samples to split")
    rng = ensure_rng(rng)
    train_parts, test_parts = [], []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        members = rng.permutation(members)
        num_test = int(round(test_fraction * len(members)))
        if len(members) >= 2:
            num_test = min(max(num_test, 1), len(members) - 1)
        test_parts.append(members[:num_test])
        train_parts.append(members[num_test:])
    train_idx = rng.permutation(np.concatenate(train_parts))
    test_idx = rng.permutation(np.concatenate(test_parts))
    if len(train_idx) == 0 or len(test_idx) == 0:
        raise DataValidationError("split produced an empty side")
    return train_idx, test_idx


def stratified_kfold(
    labels: np.ndarray,
    num_folds: int = 5,
    rng: SeedLike = None,
) -> list[np.ndarray]:
    """Partition indices into ``num_folds`` label-stratified folds.

    Returns a list of index arrays; every sample appears in exactly one
    fold, and each class is spread across folds as evenly as possible.
    """
    if num_folds < 2:
        raise DataValidationError("num_folds must be >= 2")
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) < num_folds:
        raise DataValidationError(
            f"cannot make {num_folds} folds from {len(labels)} samples"
        )
    rng = ensure_rng(rng)
    folds: list[list[int]] = [[] for _ in range(num_folds)]
    for cls in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == cls))
        for position, index in enumerate(members):
            folds[position % num_folds].append(int(index))
    return [np.array(sorted(fold), dtype=np.int64) for fold in folds]


def dataset_from_arrays(
    features: np.ndarray,
    labels: np.ndarray,
    name: str = "user_data",
    modality: str = "vision",
    test_fraction: float = 0.2,
    rng: SeedLike = None,
):
    """Build a :class:`Dataset` from raw arrays with a stratified split.

    The on-ramp for user data: Snoopy needs a train/test split, and this
    produces one with every class on both sides.
    """
    from repro.datasets.base import Dataset

    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if len(features) != len(labels):
        raise DataValidationError("features and labels length mismatch")
    if labels.min(initial=0) < 0:
        raise DataValidationError("labels must be non-negative integers")
    train_idx, test_idx = stratified_split(labels, test_fraction, rng=rng)
    return Dataset(
        name=name,
        train_x=features[train_idx],
        train_y=labels[train_idx],
        test_x=features[test_idx],
        test_y=labels[test_idx],
        num_classes=int(labels.max()) + 1,
        modality=modality,
    )
