"""A VTAB-like suite of 19 small, diverse tasks (Figure 11).

The paper probes Snoopy's behaviour in the regime that stresses it most:
tiny datasets (1K training samples) whose distributions none of the
catalog embeddings were trained on.  We emulate this with 19 generated
tasks of widely varying class counts, intrinsic dimensions and
difficulties, named after the VTAB tasks they stand in for.
"""

from __future__ import annotations

import zlib

from repro.datasets.base import Dataset
from repro.datasets.synthetic import GaussianMixtureTask
from repro.rng import ensure_rng

#: (name, num_classes, latent_dim, class_sep) per task.  Separations are
#: chosen to span easy (near-zero BER) through hard (BER ~ 0.4) tasks,
#: mirroring VTAB's spread from Flowers102 to Diabetic Retinopathy.
_VTAB_TASKS: tuple[tuple[str, int, int, float], ...] = (
    ("caltech101", 102, 24, 5.2),
    ("cifar100_vtab", 100, 24, 3.6),
    ("dtd", 47, 16, 3.2),
    ("flowers102", 102, 20, 6.0),
    ("pets", 37, 16, 4.2),
    ("sun397", 397, 32, 4.0),
    ("svhn", 10, 10, 3.2),
    ("eurosat", 10, 8, 5.0),
    ("resisc45", 45, 16, 4.0),
    ("patch_camelyon", 2, 6, 2.4),
    ("retinopathy", 5, 8, 1.4),
    ("clevr_count", 8, 6, 2.6),
    ("clevr_dist", 6, 6, 1.7),
    ("dmlab", 6, 8, 1.8),
    ("dsprites_loc", 16, 4, 4.0),
    ("dsprites_ori", 16, 4, 2.6),
    ("kitti", 4, 6, 2.2),
    ("smallnorb_azim", 18, 6, 2.2),
    ("smallnorb_elev", 9, 6, 1.8),
)

VTAB_TASK_NAMES: tuple[str, ...] = tuple(name for name, *_ in _VTAB_TASKS)

#: VTAB's standard small-data protocol.
_VTAB_TRAIN, _VTAB_TEST = 1_000, 500


def load_vtab_task(name: str, seed: int = 0) -> Dataset:
    """Load one VTAB-like task (1K train / 500 test samples)."""
    for task_name, num_classes, latent_dim, class_sep in _VTAB_TASKS:
        if task_name == name:
            break
    else:
        raise KeyError(f"unknown VTAB task {name!r}")
    task = GaussianMixtureTask(
        num_classes=num_classes,
        latent_dim=latent_dim,
        class_sep=class_sep,
        clutter_dim=32,
        seed=zlib.crc32(f"vtab::{name}".encode()),
    )
    rng = ensure_rng(seed)
    dataset = task.sample_dataset(
        num_train=_VTAB_TRAIN,
        num_test=_VTAB_TEST,
        name=name,
        modality="vision",
        rng=rng,
    )
    dataset.extras["suite"] = "vtab"
    return dataset


def load_vtab_suite(seed: int = 0) -> list[Dataset]:
    """All 19 tasks, in the canonical order of :data:`VTAB_TASK_NAMES`."""
    return [load_vtab_task(name, seed=seed) for name in VTAB_TASK_NAMES]
