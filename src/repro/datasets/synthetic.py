"""Gaussian-mixture classification tasks with known Bayes error.

The generator produces a task in three layers:

1. A *latent* space: class ``y`` draws ``z ~ N(mu_y, sigma^2 I_k)`` with
   equal priors.  The exact posterior ``p(y | z)`` — and therefore the
   exact Bayes error — is computable from the mixture densities.
2. A *raw feature* space: ``x = [A z, clutter(z)]`` where ``A`` has
   orthonormal columns (so the map is injective and the BER on raw
   features equals the BER on latents) and ``clutter`` is a fixed
   deterministic non-linear map that adds many nuisance dimensions.  The
   clutter is what makes 1NN on raw features converge slowly — exactly
   the role raw pixels play in the paper's Figure 2.
3. A *latent recovery* matrix ``R`` with ``R x = z``, handed to the
   simulated embeddings (:mod:`repro.transforms.pretrained`) so that a
   high-fidelity embedding can behave like a strong pre-trained model.

Separation calibration: :meth:`GaussianMixtureTask.calibrate_to_ber`
binary-searches the class separation so the task's clean BER matches a
target (e.g. half of the published SOTA error of the real dataset the
task emulates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng


def _mixture_posteriors(
    latents: np.ndarray, class_means: np.ndarray, within_std: float
) -> np.ndarray:
    """Exact ``p(y | z)`` of an equal-prior isotropic Gaussian mixture."""
    sq = (
        np.sum(latents**2, axis=1)[:, None]
        - 2.0 * latents @ class_means.T
        + np.sum(class_means**2, axis=1)[None, :]
    )
    logits = -sq / (2.0 * within_std**2)
    logits -= logits.max(axis=1, keepdims=True)
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    return probs


@dataclass(frozen=True)
class TaskOracle:
    """Ground-truth access for a generated task.

    Carries the exact clean BER, the posterior function and the latent
    recovery matrix used by simulated embeddings.
    """

    true_ber: float
    latent_projection: np.ndarray  # (k, D): recovers z from raw x
    class_means: np.ndarray  # (C, k)
    within_std: float

    @property
    def num_classes(self) -> int:
        return len(self.class_means)

    @property
    def latent_dim(self) -> int:
        return self.class_means.shape[1]

    def posteriors(self, latents: np.ndarray) -> np.ndarray:
        """Exact ``p(y | z)`` for latent points (equal class priors)."""
        latents = np.asarray(latents, dtype=np.float64)
        if latents.ndim != 2 or latents.shape[1] != self.latent_dim:
            raise DataValidationError(
                f"latents must be (n, {self.latent_dim}), got {latents.shape}"
            )
        return _mixture_posteriors(latents, self.class_means, self.within_std)

    def posteriors_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Exact ``p(y | x)`` via the injective latent recovery."""
        raw = np.asarray(raw, dtype=np.float64)
        return self.posteriors(raw @ self.latent_projection.T)


class GaussianMixtureTask:
    """A parameterized mixture task; call :meth:`sample_dataset` to realize it.

    Parameters
    ----------
    num_classes, latent_dim:
        Mixture geometry.  ``latent_dim`` controls intrinsic difficulty
        and 1NN convergence speed.
    class_sep:
        Distance scale between class means (before calibration).
    within_std:
        Isotropic within-class standard deviation.
    clutter_dim:
        Number of deterministic nuisance dimensions appended to the raw
        features (0 disables clutter).
    clutter_scale:
        Amplitude of the clutter relative to the signal block.
    clutter_frequency:
        Frequency of the clutter's random-cosine map.  High frequencies
        decorrelate the clutter from the latent geometry, so it behaves
        as a nuisance for finite-sample 1NN (while remaining a
        deterministic, BER-preserving function of the latent).
    seed:
        Fixes means, mixing matrices and the clutter map — the task
        identity.  Sampling uses independent per-call generators.
    """

    def __init__(
        self,
        num_classes: int,
        latent_dim: int,
        class_sep: float = 3.0,
        within_std: float = 1.0,
        raw_signal_dim: int | None = None,
        clutter_dim: int = 48,
        clutter_scale: float = 2.0,
        clutter_frequency: float = 4.0,
        seed: SeedLike = None,
    ):
        if num_classes < 2:
            raise DataValidationError("num_classes must be >= 2")
        if latent_dim < 1:
            raise DataValidationError("latent_dim must be >= 1")
        if class_sep <= 0 or within_std <= 0:
            raise DataValidationError("class_sep and within_std must be positive")
        self.num_classes = num_classes
        self.latent_dim = latent_dim
        self.class_sep = class_sep
        self.within_std = within_std
        self.raw_signal_dim = raw_signal_dim or max(latent_dim, 2 * latent_dim)
        if self.raw_signal_dim < latent_dim:
            raise DataValidationError("raw_signal_dim must be >= latent_dim")
        self.clutter_dim = clutter_dim
        self.clutter_scale = clutter_scale
        self.clutter_frequency = clutter_frequency
        rng = ensure_rng(seed)
        self._directions = self._sample_directions(rng)
        # Mixing matrix with orthonormal columns: injective, so the BER
        # on raw features equals the latent BER.
        gauss = rng.normal(size=(self.raw_signal_dim, latent_dim))
        q, _ = np.linalg.qr(gauss)
        self._mixing = q[:, :latent_dim]
        if clutter_dim > 0:
            self._clutter_weights = rng.normal(
                scale=clutter_frequency / np.sqrt(latent_dim),
                size=(clutter_dim, latent_dim),
            )
            self._clutter_bias = rng.uniform(-np.pi, np.pi, size=clutter_dim)
        else:
            self._clutter_weights = None
            self._clutter_bias = None
        self._ber_cache: dict[tuple[float, int, int], float] = {}

    def _sample_directions(self, rng: np.random.Generator) -> np.ndarray:
        """Unit-norm class-mean directions, used at any separation scale."""
        directions = rng.normal(size=(self.num_classes, self.latent_dim))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        return directions / np.maximum(norms, 1e-12)

    @property
    def raw_dim(self) -> int:
        return self.raw_signal_dim + self.clutter_dim

    def class_means(self, class_sep: float | None = None) -> np.ndarray:
        sep = self.class_sep if class_sep is None else class_sep
        return self._directions * sep

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def true_ber(
        self,
        class_sep: float | None = None,
        num_monte_carlo: int = 100_000,
        seed: int = 2_023,
    ) -> float:
        """Monte-Carlo estimate of the clean BER at the given separation.

        The Monte-Carlo seed is fixed so the estimate is a deterministic
        function of the task — important for the calibration search.
        """
        sep = self.class_sep if class_sep is None else class_sep
        key = (round(sep, 10), num_monte_carlo, seed)
        if key not in self._ber_cache:
            rng = np.random.default_rng(seed)
            means = self.class_means(sep)
            labels = rng.integers(0, self.num_classes, size=num_monte_carlo)
            latents = means[labels] + rng.normal(
                scale=self.within_std, size=(num_monte_carlo, self.latent_dim)
            )
            posts = _mixture_posteriors(latents, means, self.within_std)
            self._ber_cache[key] = float(np.mean(1.0 - posts.max(axis=1)))
        return self._ber_cache[key]

    def calibrate_to_ber(
        self,
        target_ber: float,
        tolerance: float = 0.1,
        max_iterations: int = 40,
        num_monte_carlo: int = 60_000,
    ) -> float:
        """Find (and adopt) a separation whose clean BER matches the target.

        ``tolerance`` is relative; the search is a plain bisection on the
        (monotone decreasing) BER-vs-separation curve.
        """
        if not 0.0 < target_ber < 1.0 - 1.0 / self.num_classes:
            raise DataValidationError(
                f"target_ber must be in (0, 1 - 1/C), got {target_ber}"
            )
        low, high = 1e-3, 40.0
        best = self.class_sep
        for _ in range(max_iterations):
            mid = 0.5 * (low + high)
            ber = self.true_ber(class_sep=mid, num_monte_carlo=num_monte_carlo)
            best = mid
            if abs(ber - target_ber) <= tolerance * target_ber:
                break
            if ber > target_ber:
                low = mid  # too hard: increase separation
            else:
                high = mid
        self.class_sep = best
        return best

    def _oracle_at(self, class_sep: float) -> TaskOracle:
        projection = np.zeros((self.latent_dim, self.raw_dim))
        # The mixing block has orthonormal columns so its transpose
        # recovers the latent exactly from the signal block.
        projection[:, : self.raw_signal_dim] = self._mixing.T
        return TaskOracle(
            true_ber=self.true_ber(class_sep=class_sep),
            latent_projection=projection,
            class_means=self.class_means(class_sep),
            within_std=self.within_std,
        )

    def oracle(self) -> TaskOracle:
        return self._oracle_at(self.class_sep)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _raw_features(self, latents: np.ndarray) -> np.ndarray:
        signal = latents @ self._mixing.T
        if self._clutter_weights is None:
            return signal
        clutter = self.clutter_scale * np.cos(
            latents @ self._clutter_weights.T + self._clutter_bias
        )
        return np.concatenate([signal, clutter], axis=1)

    def sample(
        self, num_samples: int, rng: SeedLike = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``(raw_x, labels, latents)`` from the task distribution."""
        rng = ensure_rng(rng)
        means = self.class_means()
        labels = rng.integers(0, self.num_classes, size=num_samples)
        latents = means[labels] + rng.normal(
            scale=self.within_std, size=(num_samples, self.latent_dim)
        )
        return self._raw_features(latents), labels, latents

    def sample_dataset(
        self,
        num_train: int,
        num_test: int,
        name: str = "synthetic",
        modality: str = "vision",
        sota_error: float | None = None,
        rng: SeedLike = None,
    ) -> Dataset:
        """Realize a :class:`Dataset` with oracle attached."""
        rng = ensure_rng(rng)
        train_x, train_y, train_z = self.sample(num_train, rng)
        test_x, test_y, test_z = self.sample(num_test, rng)
        return Dataset(
            name=name,
            train_x=train_x,
            train_y=train_y,
            test_x=test_x,
            test_y=test_y,
            num_classes=self.num_classes,
            modality=modality,
            sota_error=sota_error,
            oracle=self.oracle(),
            train_latents=train_z,
            test_latents=test_z,
        )
