"""The six paper datasets (Table I), realized as calibrated mixture tasks.

Each spec records the published statistics — class count, split sizes and
state-of-the-art error — and the generator parameters of its synthetic
analogue.  At load time the task separation is calibrated so the clean
BER sits at roughly half the SOTA error (a strong SOTA implies a low
natural BER, as the paper argues), and split sizes are scaled down by a
user-chosen factor so exact kNN stays fast.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

from repro.datasets.base import Dataset
from repro.datasets.synthetic import GaussianMixtureTask
from repro.exceptions import DataValidationError
from repro.rng import ensure_rng

#: Clean BER target as a fraction of the published SOTA error.
_BER_FRACTION_OF_SOTA = 0.5

#: Floor on split sizes after scaling, so tiny scales stay usable.
_MIN_TRAIN, _MIN_TEST = 256, 128


@dataclass(frozen=True)
class DatasetSpec:
    """Table I row plus synthetic-analogue generator parameters."""

    name: str
    modality: str
    num_classes: int
    paper_train: int
    paper_test: int
    sota_error: float
    sota_reference: str
    latent_dim: int
    clutter_dim: int

    @property
    def target_ber(self) -> float:
        return _BER_FRACTION_OF_SOTA * self.sota_error

    def scaled_sizes(self, scale: float) -> tuple[int, int]:
        if not 0.0 < scale <= 1.0:
            raise DataValidationError(f"scale must be in (0, 1], got {scale}")
        train = max(_MIN_TRAIN, int(round(self.paper_train * scale)))
        test = max(_MIN_TEST, int(round(self.paper_test * scale)))
        return train, test


DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("mnist", "vision", 10, 60_000, 10_000, 0.0016,
                    "Byerly et al. 2020", 8, 40),
        DatasetSpec("cifar10", "vision", 10, 50_000, 10_000, 0.0063,
                    "Kolesnikov et al. 2019", 12, 48),
        DatasetSpec("cifar100", "vision", 100, 50_000, 10_000, 0.0649,
                    "Kolesnikov et al. 2019", 24, 48),
        DatasetSpec("imdb", "text", 2, 25_000, 25_000, 0.0379,
                    "Yang et al. 2019 (XLNet)", 6, 56),
        DatasetSpec("sst2", "text", 2, 67_000, 872, 0.0320,
                    "Yang et al. 2019 (XLNet)", 6, 56),
        DatasetSpec("yelp", "text", 5, 500_000, 50_000, 0.2780,
                    "Yang et al. 2019 (XLNet)", 10, 56),
    )
}


def dataset_names() -> list[str]:
    """Names of the six paper datasets, in Table I order."""
    return list(DATASET_SPECS)


@lru_cache(maxsize=32)
def _calibrated_task(name: str, task_seed: int) -> GaussianMixtureTask:
    """Build and calibrate the generator once per (dataset, seed)."""
    spec = DATASET_SPECS[name]
    task = GaussianMixtureTask(
        num_classes=spec.num_classes,
        latent_dim=spec.latent_dim,
        clutter_dim=spec.clutter_dim,
        seed=task_seed,
    )
    task.calibrate_to_ber(spec.target_ber)
    return task


def load(name: str, scale: float = 0.02, seed: int = 0) -> Dataset:
    """Load a calibrated synthetic analogue of a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (``"mnist"``, ``"cifar10"``, ...).
    scale:
        Fraction of the paper's split sizes to sample (floored at
        256 train / 128 test).  The default keeps exact kNN interactive.
    seed:
        Controls the sampled points.  The task geometry (means, mixing,
        calibrated separation) depends only on the dataset name, so two
        seeds give two draws from the *same* underlying distribution.
    """
    if name not in DATASET_SPECS:
        raise DataValidationError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        )
    spec = DATASET_SPECS[name]
    # Task identity is fixed per dataset; the load seed only moves samples.
    # zlib.crc32 is stable across processes (unlike the salted str hash).
    task = _calibrated_task(name, task_seed=zlib.crc32(name.encode()))
    num_train, num_test = spec.scaled_sizes(scale)
    rng = ensure_rng(seed)
    dataset = task.sample_dataset(
        num_train=num_train,
        num_test=num_test,
        name=name,
        modality=spec.modality,
        sota_error=spec.sota_error,
        rng=rng,
    )
    dataset.extras["paper_train"] = spec.paper_train
    dataset.extras["paper_test"] = spec.paper_test
    dataset.extras["scale"] = scale
    return dataset
