"""The Dataset container shared by every component of the library.

A :class:`Dataset` is an immutable-by-convention bundle of train/test
features and labels plus task metadata.  Noisy variants are produced with
:meth:`Dataset.with_noisy_labels`, which keeps the clean labels around so
the cleaning simulator can act as the human-labeler oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.datasets.synthetic import TaskOracle


@dataclass
class Dataset:
    """Features, labels and task metadata for one classification task.

    Attributes
    ----------
    name:
        Task identifier (e.g. ``"cifar10"`` or ``"cifar10_aggre"``).
    train_x, train_y, test_x, test_y:
        Feature matrices and integer label vectors.
    num_classes:
        ``C = |Y|``.
    modality:
        "vision" or "text"; selects the transformation catalog.
    sota_error:
        Published state-of-the-art error for the task (Table I), used by
        the bounds of Figures 4/5.  ``None`` when not applicable.
    oracle:
        The generator's :class:`TaskOracle` carrying the true BER and the
        latent projection.  ``None`` for externally supplied data.
    clean_train_y, clean_test_y:
        The uncorrupted labels when noise was injected, else ``None``.
    extras:
        Free-form metadata (noise level, transition matrix, ...).
    """

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int
    modality: str = "vision"
    sota_error: float | None = None
    oracle: "TaskOracle | None" = None
    train_latents: np.ndarray | None = None
    test_latents: np.ndarray | None = None
    clean_train_y: np.ndarray | None = None
    clean_test_y: np.ndarray | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.train_x = np.asarray(self.train_x, dtype=np.float64)
        self.test_x = np.asarray(self.test_x, dtype=np.float64)
        self.train_y = np.asarray(self.train_y, dtype=np.int64)
        self.test_y = np.asarray(self.test_y, dtype=np.int64)
        if self.train_x.ndim != 2 or self.test_x.ndim != 2:
            raise DataValidationError("features must be 2-D matrices")
        if not np.isfinite(self.train_x).all() or not np.isfinite(
            self.test_x
        ).all():
            raise DataValidationError(
                "features must be finite (found NaN or infinity); clean or "
                "impute them first, e.g. with "
                "repro.noise.features.inject_missing_features"
            )
        if len(self.train_x) != len(self.train_y):
            raise DataValidationError("train features/labels length mismatch")
        if len(self.test_x) != len(self.test_y):
            raise DataValidationError("test features/labels length mismatch")
        if self.train_x.shape[1] != self.test_x.shape[1]:
            raise DataValidationError("train/test feature dimension mismatch")
        if self.num_classes < 2:
            raise DataValidationError("num_classes must be >= 2")
        for labels, split in ((self.train_y, "train"), (self.test_y, "test")):
            if len(labels) and (
                labels.min() < 0 or labels.max() >= self.num_classes
            ):
                raise DataValidationError(f"{split} labels out of range")
        if self.modality not in ("vision", "text"):
            raise DataValidationError(
                f"modality must be 'vision' or 'text', got {self.modality!r}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_train(self) -> int:
        return len(self.train_y)

    @property
    def num_test(self) -> int:
        return len(self.test_y)

    @property
    def raw_dim(self) -> int:
        return self.train_x.shape[1]

    @property
    def true_ber(self) -> float | None:
        """Ground-truth Bayes error of the *clean* task, if known."""
        return None if self.oracle is None else self.oracle.true_ber

    @property
    def is_noisy(self) -> bool:
        return self.clean_train_y is not None or self.clean_test_y is not None

    def label_noise_rate(self) -> float:
        """Realized fraction of currently corrupted labels (train + test)."""
        if not self.is_noisy:
            return 0.0
        clean_train = (
            self.clean_train_y if self.clean_train_y is not None else self.train_y
        )
        clean_test = (
            self.clean_test_y if self.clean_test_y is not None else self.test_y
        )
        wrong = int(np.sum(self.train_y != clean_train)) + int(
            np.sum(self.test_y != clean_test)
        )
        return wrong / (self.num_train + self.num_test)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_noisy_labels(
        self,
        noisy_train_y: np.ndarray,
        noisy_test_y: np.ndarray,
        name_suffix: str = "noisy",
        extras: dict[str, Any] | None = None,
    ) -> "Dataset":
        """Return a copy with corrupted labels and the clean ones retained."""
        noisy_train_y = np.asarray(noisy_train_y, dtype=np.int64)
        noisy_test_y = np.asarray(noisy_test_y, dtype=np.int64)
        if len(noisy_train_y) != self.num_train:
            raise DataValidationError("noisy_train_y length mismatch")
        if len(noisy_test_y) != self.num_test:
            raise DataValidationError("noisy_test_y length mismatch")
        merged_extras = dict(self.extras)
        merged_extras.update(extras or {})
        return replace(
            self,
            name=f"{self.name}_{name_suffix}",
            train_y=noisy_train_y,
            test_y=noisy_test_y,
            clean_train_y=self.train_y.copy(),
            clean_test_y=self.test_y.copy(),
            extras=merged_extras,
        )

    def subsample(
        self, num_train: int, num_test: int | None = None, rng: SeedLike = None
    ) -> "Dataset":
        """Random subsample of the splits (without replacement)."""
        rng = ensure_rng(rng)
        if num_train > self.num_train:
            raise DataValidationError(
                f"num_train {num_train} exceeds available {self.num_train}"
            )
        num_test = self.num_test if num_test is None else num_test
        if num_test > self.num_test:
            raise DataValidationError(
                f"num_test {num_test} exceeds available {self.num_test}"
            )
        train_idx = rng.choice(self.num_train, size=num_train, replace=False)
        test_idx = rng.choice(self.num_test, size=num_test, replace=False)
        return replace(
            self,
            train_x=self.train_x[train_idx],
            train_y=self.train_y[train_idx],
            test_x=self.test_x[test_idx],
            test_y=self.test_y[test_idx],
            train_latents=(
                None
                if self.train_latents is None
                else self.train_latents[train_idx]
            ),
            test_latents=(
                None if self.test_latents is None else self.test_latents[test_idx]
            ),
            clean_train_y=(
                None
                if self.clean_train_y is None
                else self.clean_train_y[train_idx]
            ),
            clean_test_y=(
                None if self.clean_test_y is None else self.clean_test_y[test_idx]
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ber = "unknown" if self.true_ber is None else f"{self.true_ber:.4f}"
        return (
            f"Dataset({self.name!r}, C={self.num_classes}, "
            f"train={self.num_train}, test={self.num_test}, ber={ber})"
        )
