"""CIFAR-N noisy variants (Wei et al. 2022), per the paper's Table II.

The real CIFAR-N datasets provide human-annotated noisy labels along with
their measured transition matrices.  We replicate the published summary
statistics — overall noise level, min/max per-class flip fraction and max
off-diagonal entry — and construct a class-dependent transition matrix
matching them, then corrupt the corresponding CIFAR analogue with it.
Theorem 3.1 and the Eq. 19 bounds only depend on the matrix, so the
bound/estimate comparisons of Figure 5 carry over exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.catalog import load
from repro.exceptions import DataValidationError
from repro.noise.models import inject_with_transition
from repro.noise.transition import TransitionMatrix
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class CifarNStats:
    """Published Table II statistics for one CIFAR-N variant."""

    name: str
    base_dataset: str
    noise_level: float  # overall flip fraction
    max_flip: float  # max_y rho(y) = 1 - min diagonal
    min_flip: float  # min_y rho(y) = 1 - max diagonal
    max_off_diagonal: float


CIFAR_N_STATS: dict[str, CifarNStats] = {
    stats.name: stats
    for stats in (
        CifarNStats("cifar10_aggre", "cifar10", 0.09, 0.17, 0.03, 0.10),
        CifarNStats("cifar10_random1", "cifar10", 0.17, 0.26, 0.10, 0.23),
        CifarNStats("cifar10_random2", "cifar10", 0.18, 0.26, 0.10, 0.23),
        CifarNStats("cifar10_random3", "cifar10", 0.18, 0.26, 0.10, 0.23),
        CifarNStats("cifar100_noisy", "cifar100", 0.40, 0.85, 0.08, 0.31),
    )
}


def cifar_n_variant_names() -> list[str]:
    return list(CIFAR_N_STATS)


def _per_class_flips(
    stats: CifarNStats, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-class flip fractions hitting min/max exactly and the mean target.

    One class is pinned at the published minimum and one at the maximum;
    the rest interpolate with an exponent chosen so the average matches
    the overall noise level (solving ``mean(min + (max-min) u^p) = noise``
    for p on a fixed grid).
    """
    lo, hi = stats.min_flip, stats.max_flip
    if not lo <= stats.noise_level <= hi:
        raise DataValidationError(
            f"{stats.name}: noise level outside [min_flip, max_flip]"
        )
    if num_classes == 2:
        return np.array([lo, hi])
    grid = np.linspace(0.0, 1.0, num_classes)
    target_mean_u = (stats.noise_level - lo) / max(hi - lo, 1e-12)
    # mean(u^p) over the grid is monotone decreasing in p: bisect.
    p_lo, p_hi = 0.05, 50.0
    for _ in range(60):
        p = 0.5 * (p_lo + p_hi)
        if np.mean(grid**p) > target_mean_u:
            p_lo = p
        else:
            p_hi = p
    flips = lo + (hi - lo) * grid**p
    flips[0], flips[-1] = lo, hi
    return rng.permutation(flips)


def cifar_n_transition(
    name: str, num_classes: int | None = None, rng: SeedLike = None
) -> TransitionMatrix:
    """Construct a transition matrix matching a variant's Table II stats.

    The leaked mass of each class is distributed over the others by a
    skewed Dirichlet draw (human confusions concentrate on a few look-
    alike classes), then rescaled so the matrix-wide maximum off-diagonal
    entry equals the published value.  Column argmax preservation — the
    standing assumption of Theorem 3.1 — is enforced by capping.
    """
    if name not in CIFAR_N_STATS:
        raise DataValidationError(
            f"unknown CIFAR-N variant {name!r}; "
            f"expected one of {cifar_n_variant_names()}"
        )
    stats = CIFAR_N_STATS[name]
    rng = ensure_rng(rng)
    if num_classes is None:
        num_classes = 10 if stats.base_dataset == "cifar10" else 100
    flips = _per_class_flips(stats, num_classes, rng)
    matrix = np.zeros((num_classes, num_classes))
    for cls in range(num_classes):
        weights = rng.dirichlet(np.full(num_classes - 1, 0.3))
        leak = flips[cls] * weights
        others = [i for i in range(num_classes) if i != cls]
        matrix[others, cls] = leak
        matrix[cls, cls] = 1.0 - flips[cls]
    # Concentrate the leak of the noisiest class so the matrix-wide max
    # off-diagonal matches the published value.  Mass is redistributed
    # *within* that column, keeping its flip fraction (and the pinned
    # min/max flips) intact; the target is capped by the column's total
    # leak and by argmax preservation.
    col = int(np.argmax(flips))
    leak_mass = flips[col]
    headroom = matrix[col, col] - 1e-6
    target = min(stats.max_off_diagonal, headroom, leak_mass)
    others = np.array([i for i in range(num_classes) if i != col])
    row = others[np.argmax(matrix[others, col])]
    rest = others[others != row]
    remaining = leak_mass - target
    current_rest = matrix[rest, col].sum()
    if current_rest > 0:
        matrix[rest, col] *= remaining / current_rest
    matrix[row, col] = target
    # Enforce argmax preservation everywhere by clipping oversized leaks
    # back onto the diagonal of their column.
    for col_idx in range(num_classes):
        diag = matrix[col_idx, col_idx]
        for row_idx in range(num_classes):
            if row_idx == col_idx:
                continue
            excess = matrix[row_idx, col_idx] - (diag - 1e-6)
            if excess > 0:
                matrix[row_idx, col_idx] -= excess
                matrix[col_idx, col_idx] += excess
                diag = matrix[col_idx, col_idx]
    return TransitionMatrix(matrix)


def load_cifar_n(
    name: str, scale: float = 0.02, seed: int = 0
) -> Dataset:
    """Load a CIFAR analogue corrupted with the variant's transition noise.

    Following the paper's setup, both splits are corrupted (the user's
    entire data artefact is noisy); the clean labels are retained for the
    cleaning simulator.
    """
    if name not in CIFAR_N_STATS:
        raise DataValidationError(
            f"unknown CIFAR-N variant {name!r}; "
            f"expected one of {cifar_n_variant_names()}"
        )
    stats = CIFAR_N_STATS[name]
    base = load(stats.base_dataset, scale=scale, seed=seed)
    rng = ensure_rng(seed + 7_919)
    transition = cifar_n_transition(name, base.num_classes, rng=rng)
    train_noise = inject_with_transition(base.train_y, transition, rng=rng)
    test_noise = inject_with_transition(base.test_y, transition, rng=rng)
    noisy = base.with_noisy_labels(
        train_noise.noisy_labels,
        test_noise.noisy_labels,
        name_suffix="n",
        extras={"cifar_n_variant": name, "transition": transition},
    )
    noisy.name = name
    return noisy
