"""Class-dependent label-noise transition matrices (Section III-A).

A transition matrix ``t`` encodes ``t[noisy, clean] = P(Y_noisy = noisy |
Y = clean)``; columns therefore sum to one.  The paper's Theorem 3.1
assumption — the clean class stays the per-column argmax after flipping —
is exposed as :meth:`TransitionMatrix.preserves_argmax`.

Constructions provided match the paper's experiments: uniform flipping
(recovering Lemma 2.1), pairwise flipping (the appendix example), and a
class-dependent random construction calibrated to summary statistics such
as those published for CIFAR-N (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TransitionMatrixError
from repro.rng import SeedLike, ensure_rng

_ATOL = 1e-9


class TransitionMatrix:
    """A validated column-stochastic label-noise transition matrix.

    ``matrix[i, j] = P(noisy label = i | clean label = j)``.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise TransitionMatrixError(
                f"transition matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] < 2:
            raise TransitionMatrixError("need at least 2 classes")
        if np.any(matrix < -_ATOL) or np.any(matrix > 1 + _ATOL):
            raise TransitionMatrixError("entries must lie in [0, 1]")
        col_sums = matrix.sum(axis=0)
        if not np.allclose(col_sums, 1.0, atol=1e-6):
            raise TransitionMatrixError(
                f"columns must sum to 1, got sums {col_sums}"
            )
        self.matrix = np.clip(matrix, 0.0, 1.0)

    @property
    def num_classes(self) -> int:
        return self.matrix.shape[0]

    @property
    def diagonal(self) -> np.ndarray:
        """Per-class keep probabilities ``t[y, y]``."""
        return np.diag(self.matrix).copy()

    @property
    def flip_fractions(self) -> np.ndarray:
        """Per-class flip probabilities ``rho(y) = 1 - t[y, y]``."""
        return 1.0 - self.diagonal

    def noise_level(self, class_priors: np.ndarray | None = None) -> float:
        """Overall flip probability under the given (default uniform) priors."""
        rho = self.flip_fractions
        if class_priors is None:
            return float(np.mean(rho))
        class_priors = np.asarray(class_priors, dtype=np.float64)
        if len(class_priors) != self.num_classes:
            raise TransitionMatrixError("priors length must match num_classes")
        return float(np.dot(rho, class_priors / class_priors.sum()))

    def max_diagonal(self) -> float:
        return float(self.diagonal.max())

    def min_diagonal(self) -> float:
        return float(self.diagonal.min())

    def max_off_diagonal(self) -> float:
        off = self.matrix.copy()
        np.fill_diagonal(off, -np.inf)
        return float(off.max())

    def min_off_diagonal(self) -> float:
        off = self.matrix.copy()
        np.fill_diagonal(off, np.inf)
        return float(off.min())

    def preserves_argmax(self) -> bool:
        """True iff every clean class remains the modal noisy class.

        This is the standing assumption of Theorem 3.1: the diagonal
        entry is the maximum of its column.
        """
        return bool(np.all(self.diagonal >= self.matrix.max(axis=0) - _ATOL))

    def sample_noisy_labels(
        self, clean_labels: np.ndarray, rng: SeedLike = None
    ) -> np.ndarray:
        """Draw noisy labels for each clean label from the matrix columns."""
        rng = ensure_rng(rng)
        clean_labels = np.asarray(clean_labels, dtype=np.int64)
        if len(clean_labels) and (
            clean_labels.min() < 0 or clean_labels.max() >= self.num_classes
        ):
            raise TransitionMatrixError("clean label out of matrix range")
        noisy = np.empty_like(clean_labels)
        for cls in range(self.num_classes):
            mask = clean_labels == cls
            count = int(mask.sum())
            if count:
                noisy[mask] = rng.choice(
                    self.num_classes, size=count, p=self.matrix[:, cls]
                )
        return noisy

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, rho: float, num_classes: int) -> "TransitionMatrix":
        """Uniform flipping: with prob. ``rho``, resample the label from U(Y).

        This is exactly the noise model of Lemma 2.1; the induced
        per-class flip fraction is ``rho * (1 - 1/C)``.
        """
        _check_rho(rho)
        c = num_classes
        matrix = np.full((c, c), rho / c)
        np.fill_diagonal(matrix, 1.0 - rho + rho / c)
        return cls(matrix)

    @classmethod
    def pairwise(
        cls, rho: float, num_classes: int, permutation: np.ndarray | None = None
    ) -> "TransitionMatrix":
        """Pairwise flipping: each class leaks only into one partner class.

        ``permutation[y]`` names the partner; the default pairs class
        ``y`` with ``(y + 1) % C``.  Matches the appendix example with
        BER evolution ``R + rho * (1 - 2R)`` for confusable pairs.
        """
        _check_rho(rho)
        c = num_classes
        if permutation is None:
            permutation = (np.arange(c) + 1) % c
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(c)):
            raise TransitionMatrixError("permutation must be a bijection on classes")
        if np.any(permutation == np.arange(c)):
            raise TransitionMatrixError("permutation must have no fixed points")
        matrix = np.zeros((c, c))
        np.fill_diagonal(matrix, 1.0 - rho)
        matrix[permutation, np.arange(c)] += rho
        return cls(matrix)

    @classmethod
    def class_dependent_random(
        cls,
        num_classes: int,
        mean_flip: float,
        flip_spread: float = 0.0,
        concentration: float = 1.0,
        rng: SeedLike = None,
    ) -> "TransitionMatrix":
        """Random class-dependent matrix with controlled per-class noise.

        Per-class flip fractions are drawn uniformly from
        ``[mean_flip - flip_spread, mean_flip + flip_spread]`` (clipped to
        [0, 0.49] so the argmax-preservation assumption holds), and each
        class's leaked mass is split across the other classes by a
        Dirichlet draw with the given concentration — small concentration
        produces the skewed confusions typical of human annotators.
        """
        rng = ensure_rng(rng)
        _check_rho(mean_flip)
        c = num_classes
        low = np.clip(mean_flip - flip_spread, 0.0, 0.49)
        high = np.clip(mean_flip + flip_spread, 0.0, 0.49)
        flips = rng.uniform(low, high, size=c)
        matrix = np.zeros((c, c))
        for cls_idx in range(c):
            weights = rng.dirichlet(np.full(c - 1, concentration))
            # Cap leaked entries below the diagonal to preserve argmax.
            leak = flips[cls_idx] * weights
            cap = (1.0 - flips[cls_idx]) - 1e-6
            excess = np.clip(leak - cap, 0.0, None)
            if excess.sum() > 0:
                leak = np.minimum(leak, cap)
                flips[cls_idx] = leak.sum()
            others = [i for i in range(c) if i != cls_idx]
            matrix[others, cls_idx] = leak
            matrix[cls_idx, cls_idx] = 1.0 - flips[cls_idx]
        return cls(matrix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransitionMatrix(C={self.num_classes}, "
            f"noise={self.noise_level():.3f})"
        )


def _check_rho(rho: float) -> None:
    if not 0.0 <= rho <= 1.0:
        raise TransitionMatrixError(f"noise level must be in [0, 1], got {rho}")
