"""Closed-form evolution of the Bayes error rate under label noise.

Implements the theory of Sections II/III and Appendix VIII of the paper:

- :func:`ber_after_uniform_noise` — Lemma 2.1.
- :func:`ber_after_pairwise_noise` — the pairwise-flipping example.
- :func:`ber_under_transition` — Theorem 3.1 for an arbitrary
  class-dependent transition matrix, evaluated on posterior samples.
- :func:`transition_bounds_from_sota` — the Eq. 19 interval for the noisy
  BER using only the state-of-the-art error and the matrix statistics.
- :func:`expected_increase_approximation` — the Eq. 20 point estimate
  used as the dashed "expected SOTA increase" lines in Figures 4 and 5.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.noise.transition import TransitionMatrix


def _check_error(value: float, name: str = "ber") -> None:
    if not 0.0 <= value <= 1.0:
        raise DataValidationError(f"{name} must be in [0, 1], got {value}")


def ber_after_uniform_noise(ber: float, rho: float, num_classes: int) -> float:
    """Lemma 2.1: ``R*_rho = R* + rho * (1 - 1/C - R*)``.

    ``rho`` is the probability that a label is *resampled* uniformly over
    all classes (so the realized flip rate is ``rho * (1 - 1/C)``).
    """
    _check_error(ber)
    _check_error(rho, "rho")
    if num_classes < 2:
        raise DataValidationError("num_classes must be >= 2")
    return ber + rho * (1.0 - 1.0 / num_classes - ber)


def ber_after_pairwise_noise(ber: float, rho: float) -> float:
    """Pairwise flipping corollary: ``R*_rho = R* + rho * (1 - 2 R*)``."""
    _check_error(ber)
    _check_error(rho, "rho")
    return ber + rho * (1.0 - 2.0 * ber)


def ber_under_transition(
    posteriors: np.ndarray, transition: TransitionMatrix
) -> float:
    """Theorem 3.1 evaluated by Monte-Carlo over posterior samples.

    Parameters
    ----------
    posteriors:
        Array of shape ``(n, C)``; row i is ``p(y | x_i)`` for a sample
        ``x_i`` drawn from the marginal of X.  On our synthetic tasks
        these are exact (the generator knows the mixture), making this a
        consistent estimate of the noisy BER.
    transition:
        The class-dependent noise model.  Must satisfy the theorem's
        standing assumption that flipping preserves each column argmax.

    Notes
    -----
    Using the law of total expectation (see Appendix VIII),
    ``R*_noisy = 1 - E_X[ sum_y t[y_x, y] p(y | x) ]`` where
    ``y_x = argmax_y p(y | x)``.
    """
    posteriors = np.asarray(posteriors, dtype=np.float64)
    if posteriors.ndim != 2:
        raise DataValidationError(
            f"posteriors must be 2-D (n, C), got {posteriors.shape}"
        )
    if posteriors.shape[1] != transition.num_classes:
        raise DataValidationError(
            "posterior columns must match transition num_classes"
        )
    if not np.allclose(posteriors.sum(axis=1), 1.0, atol=1e-6):
        raise DataValidationError("posterior rows must sum to 1")
    if not transition.preserves_argmax():
        raise DataValidationError(
            "Theorem 3.1 requires the transition matrix to preserve the "
            "per-class argmax (diagonal maximal per column)"
        )
    modal = np.argmax(posteriors, axis=1)
    # P(Y_noisy = y_x | x) = sum_y t[y_x, y] * p(y | x)
    kept = np.einsum("ij,ij->i", transition.matrix[modal, :], posteriors)
    return float(np.mean(1.0 - kept))


def ber_increase_decomposition(
    posteriors: np.ndarray, transition: TransitionMatrix
) -> tuple[float, float, float]:
    """The three terms of Theorem 3.1's statement, for inspection/tests.

    Returns ``(clean_ber, flip_term, recovery_term)`` such that
    ``noisy_ber = clean_ber + flip_term - recovery_term``.
    """
    posteriors = np.asarray(posteriors, dtype=np.float64)
    modal = np.argmax(posteriors, axis=1)
    n = len(posteriors)
    p_modal = posteriors[np.arange(n), modal]
    clean_ber = float(np.mean(1.0 - p_modal))
    rho = transition.flip_fractions
    flip_term = float(np.mean(rho[modal] * p_modal))
    cross = posteriors.copy()
    cross[np.arange(n), modal] = 0.0
    recovery_term = float(
        np.mean(np.einsum("ij,ij->i", transition.matrix[modal, :], cross))
    )
    return clean_ber, flip_term, recovery_term


def transition_bounds_from_sota(
    sota_error: float, transition: TransitionMatrix
) -> tuple[float, float]:
    """The Eq. 19 interval for the noisy BER given only the SOTA error.

    ``lower = (1 - s) * min_y rho(y) - s * max off-diagonal`` and
    ``upper = s + max_y rho(y)``, both clipped to [0, 1].  These are the
    dashed bound lines of Figure 5.
    """
    _check_error(sota_error, "sota_error")
    min_flip = float(transition.flip_fractions.min())
    max_flip = float(transition.flip_fractions.max())
    max_off = transition.max_off_diagonal()
    lower = (1.0 - sota_error) * min_flip - sota_error * max_off
    upper = sota_error + max_flip
    return max(0.0, lower), min(1.0, upper)


def expected_increase_approximation(
    sota_error: float,
    transition: TransitionMatrix,
    class_priors: np.ndarray | None = None,
) -> float:
    """The Eq. 20 point approximation ``s + E_Y[rho(y)] * (1 - s)``.

    This is the paper's pragmatic proxy for the noisy BER when only a
    SOTA error and the average flip fraction are known.
    """
    _check_error(sota_error, "sota_error")
    mean_flip = transition.noise_level(class_priors)
    return min(1.0, sota_error + mean_flip * (1.0 - sota_error))


def expected_sota_increase_uniform(
    sota_error: float, rho: float, num_classes: int
) -> float:
    """Expected noisy error of a SOTA model under Lemma 2.1 noise.

    Used for the dashed horizontal lines in Figure 4: treat the SOTA
    error as a stand-in for the clean BER and evolve it with the lemma.
    """
    return ber_after_uniform_noise(sota_error, rho, num_classes)
