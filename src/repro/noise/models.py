"""Label-noise injectors.

Each injector returns a :class:`NoiseInjection` carrying the corrupted
labels, the clean originals, and a boolean flip mask — the mask is what
the cleaning simulator (Section VI-D) uses as its oracle for restoring
labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.noise.transition import TransitionMatrix
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class NoiseInjection:
    """Result of corrupting a label array.

    Attributes
    ----------
    noisy_labels:
        Labels after corruption.
    clean_labels:
        The originals (copy), kept as the cleaning oracle.
    flipped:
        Boolean mask, True where ``noisy_labels != clean_labels``.
    """

    noisy_labels: np.ndarray
    clean_labels: np.ndarray
    flipped: np.ndarray

    @property
    def flip_rate(self) -> float:
        """Realized fraction of labels actually changed."""
        if len(self.flipped) == 0:
            return 0.0
        return float(np.mean(self.flipped))


def _package(clean: np.ndarray, noisy: np.ndarray) -> NoiseInjection:
    clean = np.asarray(clean, dtype=np.int64)
    noisy = np.asarray(noisy, dtype=np.int64)
    return NoiseInjection(noisy, clean.copy(), noisy != clean)


def inject_uniform_noise(
    labels: np.ndarray,
    rho: float,
    num_classes: int,
    rng: SeedLike = None,
) -> NoiseInjection:
    """Uniform label noise: with prob. ``rho`` resample a label from U(Y).

    This matches the noise model of Lemma 2.1 exactly (including the
    possibility of a "flip" back to the original class), so the BER
    evolves as ``R + rho * (1 - 1/C - R)``.
    """
    if not 0.0 <= rho <= 1.0:
        raise DataValidationError(f"rho must be in [0, 1], got {rho}")
    rng = ensure_rng(rng)
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) and (labels.min() < 0 or labels.max() >= num_classes):
        raise DataValidationError("labels out of range for num_classes")
    resample = rng.random(len(labels)) < rho
    noisy = labels.copy()
    count = int(resample.sum())
    if count:
        noisy[resample] = rng.integers(0, num_classes, size=count)
    return _package(labels, noisy)


def inject_with_transition(
    labels: np.ndarray,
    transition: TransitionMatrix,
    rng: SeedLike = None,
) -> NoiseInjection:
    """Class-dependent noise drawn from a transition matrix (Eq. 4)."""
    rng = ensure_rng(rng)
    labels = np.asarray(labels, dtype=np.int64)
    noisy = transition.sample_noisy_labels(labels, rng=rng)
    return _package(labels, noisy)


def inject_pairwise_noise(
    labels: np.ndarray,
    rho: float,
    num_classes: int,
    permutation: np.ndarray | None = None,
    rng: SeedLike = None,
) -> NoiseInjection:
    """Pairwise flipping: each class leaks into a single partner class."""
    transition = TransitionMatrix.pairwise(rho, num_classes, permutation)
    return inject_with_transition(labels, transition, rng=rng)


def inject_instance_dependent_noise(
    features: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    base_rate: float,
    rng: SeedLike = None,
) -> NoiseInjection:
    """Instance-dependent noise: harder (more isolated) points flip more.

    The paper's theory covers class-dependent noise only; this injector
    exists to exercise the failure modes discussed in Section III (where
    Theorem 3.1's assumptions do not hold).  A point's flip probability
    scales with its normalized distance to its class centroid, with mean
    ``base_rate``.
    """
    if not 0.0 <= base_rate <= 1.0:
        raise DataValidationError(f"base_rate must be in [0, 1], got {base_rate}")
    rng = ensure_rng(rng)
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if len(features) != len(labels):
        raise DataValidationError("features and labels length mismatch")
    difficulty = np.zeros(len(labels))
    for cls in range(num_classes):
        mask = labels == cls
        if not mask.any():
            continue
        centroid = features[mask].mean(axis=0)
        difficulty[mask] = np.linalg.norm(features[mask] - centroid, axis=1)
    mean_difficulty = difficulty.mean()
    if mean_difficulty > 0:
        rates = np.clip(base_rate * difficulty / mean_difficulty, 0.0, 1.0)
    else:
        rates = np.full(len(labels), base_rate)
    flip = rng.random(len(labels)) < rates
    noisy = labels.copy()
    count = int(flip.sum())
    if count:
        offsets = rng.integers(1, num_classes, size=count)
        noisy[flip] = (labels[flip] + offsets) % num_classes
    return _package(labels, noisy)
