"""Feature-space data quality issues (paper: "Other Data Quality Dimensions").

The paper focuses on label noise and leaves noisy/incomplete features as
future work while noting that the BER implicitly quantifies *all*
quality dimensions.  This module implements the two feature-side
injectors needed to study that claim empirically:

- :func:`inject_feature_noise` — additive Gaussian noise on features
  (the "accuracy" dimension on the feature side).  Feature noise is a
  *stochastic* channel, so unlike a deterministic transformation it
  genuinely increases the BER; on the library's mixture tasks the new
  BER remains computable in closed form because Gaussian noise on a
  Gaussian mixture yields another Gaussian mixture
  (:func:`ber_after_latent_feature_noise`).
- :func:`inject_missing_features` — mask a fraction of entries
  (completeness dimension) with either zero or mean imputation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FeatureCorruption:
    """Result of corrupting a feature matrix."""

    noisy_features: np.ndarray
    clean_features: np.ndarray
    mask: np.ndarray  # True where an entry was altered


def inject_feature_noise(
    features: np.ndarray,
    noise_std: float,
    rng: SeedLike = None,
) -> FeatureCorruption:
    """Add isotropic Gaussian noise of the given standard deviation."""
    if noise_std < 0:
        raise DataValidationError("noise_std must be non-negative")
    rng = ensure_rng(rng)
    features = np.asarray(features, dtype=np.float64)
    noise = rng.normal(scale=noise_std, size=features.shape)
    noisy = features + noise
    mask = np.ones(features.shape, dtype=bool) if noise_std > 0 else np.zeros(
        features.shape, dtype=bool
    )
    return FeatureCorruption(noisy, features.copy(), mask)


def inject_missing_features(
    features: np.ndarray,
    missing_fraction: float,
    strategy: str = "mean",
    rng: SeedLike = None,
) -> FeatureCorruption:
    """Erase a random fraction of entries and impute them.

    ``strategy`` is "mean" (column mean of the observed entries) or
    "zero".  The mask marks the imputed entries.
    """
    if not 0.0 <= missing_fraction <= 1.0:
        raise DataValidationError("missing_fraction must be in [0, 1]")
    if strategy not in ("mean", "zero"):
        raise DataValidationError(
            f"strategy must be 'mean' or 'zero', got {strategy!r}"
        )
    rng = ensure_rng(rng)
    features = np.asarray(features, dtype=np.float64)
    mask = rng.random(features.shape) < missing_fraction
    noisy = features.copy()
    if strategy == "zero":
        noisy[mask] = 0.0
    else:
        # Column means of the observed entries; fully-masked columns
        # fall back to 0 (computed by hand to avoid the nanmean
        # empty-slice warning).
        observed_counts = (~mask).sum(axis=0)
        observed_sums = np.where(mask, 0.0, features).sum(axis=0)
        column_means = np.divide(
            observed_sums,
            observed_counts,
            out=np.zeros(features.shape[1]),
            where=observed_counts > 0,
        )
        rows, cols = np.nonzero(mask)
        noisy[rows, cols] = column_means[cols]
    return FeatureCorruption(noisy, features.copy(), mask)


def ber_after_latent_feature_noise(
    class_means: np.ndarray,
    within_std: float,
    noise_std: float,
    num_monte_carlo: int = 100_000,
    seed: int = 2_023,
) -> float:
    """Exact (Monte-Carlo) BER of a mixture task under latent feature noise.

    Adding ``N(0, noise_std^2 I)`` to the latent of an equal-prior
    isotropic mixture yields the same mixture with within-class variance
    ``within_std^2 + noise_std^2``; this evaluates the resulting BER the
    same way the task generator does, giving a closed-form-quality
    reference for the feature-noise experiments.
    """
    if within_std <= 0 or noise_std < 0:
        raise DataValidationError("standard deviations must be valid")
    from repro.datasets.synthetic import _mixture_posteriors

    class_means = np.asarray(class_means, dtype=np.float64)
    effective_std = float(np.hypot(within_std, noise_std))
    rng = np.random.default_rng(seed)
    num_classes, latent_dim = class_means.shape
    labels = rng.integers(0, num_classes, size=num_monte_carlo)
    latents = class_means[labels] + rng.normal(
        scale=effective_std, size=(num_monte_carlo, latent_dim)
    )
    posteriors = _mixture_posteriors(latents, class_means, effective_std)
    return float(np.mean(1.0 - posteriors.max(axis=1)))
