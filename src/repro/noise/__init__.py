"""Label-noise substrate: transition matrices, injectors and BER theory.

- :mod:`repro.noise.transition` — validated transition matrices with the
  constructions used in the paper (uniform flipping, pairwise flipping,
  class-dependent random matrices calibrated to published statistics).
- :mod:`repro.noise.models` — label-noise injectors returning both the
  corrupted labels and the flip mask.
- :mod:`repro.noise.theory` — closed-form evolution of the Bayes error
  under noise: Lemma 2.1 (uniform), Theorem 3.1 (class-dependent), the
  pairwise-flipping corollary, and the lower/upper bounds of Eq. 15-20.
- :mod:`repro.noise.features` — feature-side quality injectors (Gaussian
  noise, missing values) extending the paper's "other data quality
  dimensions" discussion.
"""

from repro.noise.features import (
    FeatureCorruption,
    ber_after_latent_feature_noise,
    inject_feature_noise,
    inject_missing_features,
)
from repro.noise.models import (
    NoiseInjection,
    inject_pairwise_noise,
    inject_uniform_noise,
    inject_with_transition,
)
from repro.noise.theory import (
    ber_after_pairwise_noise,
    ber_after_uniform_noise,
    ber_under_transition,
    expected_increase_approximation,
    transition_bounds_from_sota,
)
from repro.noise.transition import TransitionMatrix

__all__ = [
    "FeatureCorruption",
    "NoiseInjection",
    "TransitionMatrix",
    "ber_after_pairwise_noise",
    "ber_after_latent_feature_noise",
    "ber_after_uniform_noise",
    "ber_under_transition",
    "expected_increase_approximation",
    "inject_feature_noise",
    "inject_missing_features",
    "inject_pairwise_noise",
    "inject_uniform_noise",
    "inject_with_transition",
    "transition_bounds_from_sota",
]
