"""Deterministic random-number handling shared across the package.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` and normalizes it
through :func:`ensure_rng`.  Components that need several independent
streams derive them with :func:`spawn`, so that results are reproducible
regardless of call order.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so callers can
    thread one generator through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are seeded from the parent stream, so two runs with the
    same parent seed always produce the same children.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
