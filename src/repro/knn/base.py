"""Unified kNN index protocol, backend registry and voting kernel.

Every nearest-neighbor backend in the library — the exact
:class:`~repro.knn.brute_force.BruteForceKNN`, the approximate
:class:`~repro.knn.ivf.IVFFlatIndex` and the append-only
:class:`~repro.knn.incremental.IncrementalKNNIndex` — implements the
:class:`KNNIndex` abstract base class defined here:

- ``fit(x, y)`` indexes a corpus of feature rows with integer labels,
- ``kneighbors(queries, k)`` returns ``(distances, indices)``,
- ``predict(queries, k)`` is the majority-vote kNN classification,
- ``error(queries, true_labels, k)`` is its misclassification rate,
- ``num_fitted`` reports the corpus size.

Call sites (estimator zoo, baseline model zoo, Snoopy, cleaning,
drift monitoring) construct indexes through :func:`make_index` so the
backend is a configuration choice rather than a hard-coded import —
the paper's accelerator-style scaling path (Johnson et al.) then only
requires flipping ``backend="brute_force"`` to ``backend="ivf"``.

The module also hosts :func:`majority_vote`, the fully vectorized
voting kernel shared by all backends (no per-row Python scan, even on
ties).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import DataValidationError, UnknownBackendError
from repro.knn.kernels import DistanceKernel, make_kernel


class KNNIndex(ABC):
    """Abstract base class every kNN backend implements.

    Concrete backends are registered under a string name and built via
    :func:`make_index`; see the module docstring for the contract.
    """

    #: True for append-only ANN backends (``partial_fit`` + sublinear
    #: search) that :class:`~repro.knn.progressive.ProgressiveOneNN`
    #: should keep alive across training batches instead of rebuilding
    #: per batch.
    supports_progressive_append = False

    @property
    @abstractmethod
    def num_fitted(self) -> int:
        """Number of corpus points currently indexed (0 before fit)."""

    @abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNIndex":
        """Index the corpus ``x`` with integer labels ``y``; returns self."""

    @abstractmethod
    def kneighbors(
        self, queries: np.ndarray, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the k nearest corpus points."""

    def predict(self, queries: np.ndarray, k: int = 1) -> np.ndarray:
        """Majority-vote kNN prediction; ties go to the closest neighbor."""
        labels = self._fitted_labels()
        _, idx = self.kneighbors(queries, k=k)
        return majority_vote(labels[idx])

    def error(
        self, queries: np.ndarray, true_labels: np.ndarray, k: int = 1
    ) -> float:
        """Misclassification rate of the kNN classifier on the queries."""
        true_labels = np.asarray(true_labels)
        if len(queries) != len(true_labels):
            raise DataValidationError(
                f"queries and labels length mismatch: "
                f"{len(queries)} vs {len(true_labels)}"
            )
        return float(np.mean(self.predict(queries, k=k) != true_labels))

    def _fitted_labels(self) -> np.ndarray:
        """Corpus labels; backends with a ``_y`` attribute get this free."""
        labels = getattr(self, "_y", None)
        if labels is None:
            raise DataValidationError("index is not fitted; call fit() first")
        return labels


class ExactSearchMixin:
    """Shared blocked exact search for corpus-backed backends.

    Hosts the one copy of the exclude-self contract and the fused
    top-k/leave-one-out plumbing; expects ``self.metric``,
    ``self.block_size``, ``self.dtype``, a ``self._kernel_cache`` slot
    (set to ``None`` whenever the corpus changes) and
    ``_require_fitted() -> (corpus, labels)``.

    The corpus-bound :class:`~repro.knn.kernels.DistanceKernel` is built
    lazily on the first search and reused until invalidated, so the
    corpus-side norms are computed once per fitted corpus instead of
    once per ``kneighbors`` call.
    """

    def _search_kernel(self) -> DistanceKernel:
        """The corpus-bound distance kernel (built lazily, then cached)."""
        corpus, _ = self._require_fitted()
        if self._kernel_cache is None:
            self._kernel_cache = make_kernel(
                self.metric, corpus, dtype=self.dtype
            )
        return self._kernel_cache

    def kneighbors(
        self, queries: np.ndarray, k: int = 1, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the k nearest corpus points.

        With ``exclude_self=True`` the queries must be the fitted corpus
        itself (same rows, same order) and each point's zero-distance
        self match is removed (leave-one-out mode); any other query set
        would silently mask arbitrary corpus columns, so a length
        mismatch raises :class:`DataValidationError`.
        """
        kernel = self._search_kernel()
        # No float64 pre-cast: the kernel casts straight to its compute
        # dtype, so float32 queries feed a float32 index with zero
        # widening copies.
        queries = np.asarray(queries)
        if exclude_self and len(queries) != kernel.num_bound:
            raise DataValidationError(
                f"exclude_self=True requires the queries to be the fitted "
                f"corpus itself, but got {len(queries)} queries for a corpus "
                f"of {kernel.num_bound}"
            )
        return kernel.topk(
            queries, k, block_size=self.block_size, exclude_self=exclude_self
        )

    def loo_error(self, k: int = 1) -> float:
        """Leave-one-out kNN error on the fitted corpus itself."""
        corpus, labels = self._require_fitted()
        _, idx = self.kneighbors(corpus, k=k, exclude_self=True)
        return float(np.mean(majority_vote(labels[idx]) != labels))


_BACKENDS: dict[str, type] = {}

_BACKEND_ALIASES = {"exact": "brute_force"}


def register_backend(name: str):
    """Class decorator registering a :class:`KNNIndex` under ``name``."""

    def decorator(cls):
        _BACKENDS[name] = cls
        return cls

    return decorator


#: Backends whose quantizer structure is euclidean-only; requesting any
#: other metric raises instead of silently degrading.
_EUCLIDEAN_ONLY = frozenset({"ivf", "ivf_pq"})

#: Backends whose inverted lists can be sharded across scan workers
#: (``shards`` / ``scan_executor`` / ``store`` options).
_SHARDABLE = frozenset({"ivf", "ivf_pq"})

#: Sharding/fast-scan options only the listed backends accept;
#: :func:`make_index` rejects them elsewhere with a targeted error
#: instead of an opaque ``TypeError`` from the constructor.
_SHARD_OPTIONS = {
    "shards": _SHARDABLE,
    "scan_executor": _SHARDABLE,
    "store": _SHARDABLE,
    "pq_packed": frozenset({"ivf_pq"}),
}


def _load_default_backends() -> None:
    # Imported lazily so base <-> backend modules never cycle.
    from repro.knn import brute_force, incremental, ivf, pq  # noqa: F401


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`make_index`."""
    _load_default_backends()
    return tuple(sorted(_BACKENDS))


def make_index(
    backend: str = "brute_force", *, metric: str = "euclidean", **kwargs
) -> KNNIndex:
    """Build a kNN index by backend name.

    Parameters
    ----------
    backend:
        One of :func:`available_backends` ("brute_force" — alias
        "exact" —, "ivf", "ivf_pq", "incremental").  An unregistered
        name raises :class:`~repro.exceptions.UnknownBackendError`
        naming the registered backends.
    metric:
        Distance metric.  The quantizer-based backends ("ivf",
        "ivf_pq") are euclidean-only; requesting cosine raises
        :class:`DataValidationError` instead of silently degrading.
    kwargs:
        Forwarded to the backend constructor (e.g. ``block_size`` for
        the exact backends, ``nlist``/``nprobe``/``seed`` for IVF,
        additionally ``pq_m``/``pq_nbits``/``rerank``/``pq_packed`` for
        IVF-PQ, ``dtype`` — "float32"/"float64" compute precision — for
        all of them, and the sharded-scan options ``shards`` /
        ``scan_executor`` / ``store`` for the inverted-list backends
        "ivf" and "ivf_pq").
    """
    _load_default_backends()
    name = _BACKEND_ALIASES.get(backend, backend)
    cls = _BACKENDS.get(name)
    if cls is None:
        raise UnknownBackendError(
            f"unknown kNN backend {backend!r}; "
            f"available backends: {available_backends()}"
        )
    for option, accepted_by in _SHARD_OPTIONS.items():
        if option in kwargs and name not in accepted_by:
            raise DataValidationError(
                f"option {option!r} is only supported by the "
                f"{tuple(sorted(accepted_by))} backend(s), "
                f"not {backend!r}"
            )
    if name in _EUCLIDEAN_ONLY:
        if metric != "euclidean":
            raise DataValidationError(
                f"{name} backend supports only the euclidean metric, "
                f"got {metric!r}"
            )
        return cls(**kwargs)
    return cls(metric=metric, **kwargs)


def majority_vote(neighbor_labels: np.ndarray) -> np.ndarray:
    """Fully vectorized majority vote over distance-sorted neighbor labels.

    ``neighbor_labels`` has shape ``(n, k)`` with each row ordered by
    increasing distance.  Ties on the vote count are broken by the class
    whose representative appears earliest in the sorted neighbor list —
    the same deterministic, distance-aware rule the previous per-row
    scan implemented, expressed as a single rank-weighted score matrix:

    ``score[i, c] = count[i, c] * (k + 1) + (k - first_rank[i, c])``

    Counts dominate (they are scaled past the largest possible rank
    bonus) and among count-tied classes the smaller first rank wins.
    Two classes can never share both count and first rank, so ``argmax``
    is unambiguous.
    """
    neighbor_labels = np.asarray(neighbor_labels, dtype=np.int64)
    n, k = neighbor_labels.shape
    if k == 1:
        return neighbor_labels[:, 0].copy()
    num_classes = int(neighbor_labels.max()) + 1
    rows = np.repeat(np.arange(n), k)
    cols = neighbor_labels.ravel()
    counts = np.zeros((n, num_classes), dtype=np.int64)
    np.add.at(counts, (rows, cols), 1)
    first_rank = np.full((n, num_classes), k, dtype=np.int64)
    np.minimum.at(first_rank, (rows, cols), np.tile(np.arange(k), n))
    score = counts * (k + 1) + (k - first_rank)
    return np.argmax(score, axis=1)
