"""Pairwise distance computations used by the kNN substrate.

The functions here are exact (no approximate nearest-neighbor search) but
block the computation so that a large query-by-corpus distance matrix is
never materialized at once.  Both metrics used in the paper (euclidean
and cosine dissimilarity) are provided behind one dispatch function.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import DataValidationError

VALID_METRICS = ("euclidean", "cosine")

_EPS = 1e-12


def _validate_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise DataValidationError(
            f"expected 2-D arrays, got shapes {a.shape} and {b.shape}"
        )
    if a.shape[1] != b.shape[1]:
        raise DataValidationError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    return a, b


def euclidean_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact euclidean distance matrix of shape ``(len(a), len(b))``."""
    a, b = _validate_pair(a, b)
    sq_a = np.sum(a * a, axis=1)[:, None]
    sq_b = np.sum(b * b, axis=1)[None, :]
    sq = sq_a + sq_b - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def cosine_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine dissimilarity matrix, ``1 - cos(a_i, b_j)``.

    Zero vectors are treated as maximally dissimilar to everything
    (distance 1), matching the convention of treating an all-zero
    embedding as uninformative.
    """
    a, b = _validate_pair(a, b)
    norm_a = np.linalg.norm(a, axis=1)
    norm_b = np.linalg.norm(b, axis=1)
    safe_a = a / np.maximum(norm_a, _EPS)[:, None]
    safe_b = b / np.maximum(norm_b, _EPS)[:, None]
    sim = safe_a @ safe_b.T
    np.clip(sim, -1.0, 1.0, out=sim)
    sim[norm_a < _EPS, :] = 0.0
    sim[:, norm_b < _EPS] = 0.0
    return 1.0 - sim


_METRIC_FUNCS = {
    "euclidean": euclidean_distances,
    "cosine": cosine_distances,
}


def pairwise_distances(
    a: np.ndarray, b: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Dispatch to the requested metric ("euclidean" or "cosine")."""
    try:
        func = _METRIC_FUNCS[metric]
    except KeyError:
        raise DataValidationError(
            f"unknown metric {metric!r}; expected one of {VALID_METRICS}"
        ) from None
    return func(a, b)


def iter_blocks(total: int, block_size: int) -> Iterator[slice]:
    """Yield contiguous slices covering ``range(total)`` in blocks."""
    if block_size <= 0:
        raise DataValidationError(f"block_size must be positive, got {block_size}")
    for start in range(0, total, block_size):
        yield slice(start, min(start + block_size, total))


def blocked_topk(
    queries: np.ndarray,
    corpus: np.ndarray,
    k: int,
    metric: str = "euclidean",
    block_size: int = 2048,
    exclude_self: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-k search, blocked over query rows; returns ``(dist, idx)``.

    The query-by-corpus distance matrix is materialized ``block_size``
    query rows at a time, top-k selected with ``argpartition`` and the
    k winners sorted.  With ``exclude_self=True`` the queries must BE
    the corpus (same rows, same order): query ``i``'s match against
    corpus column ``i`` is masked out (leave-one-out mode).  Passing a
    different query set in that mode would mask arbitrary columns, so
    the caller is expected to validate ``len(queries) == len(corpus)``.
    """
    queries = np.asarray(queries, dtype=np.float64)
    corpus = np.asarray(corpus, dtype=np.float64)
    effective_k = k + 1 if exclude_self else k
    if k < 1:
        raise DataValidationError(f"k must be >= 1, got {k}")
    if effective_k > len(corpus):
        raise DataValidationError(
            f"k={k} (effective {effective_k}) exceeds corpus size {len(corpus)}"
        )
    n = len(queries)
    all_dist = np.empty((n, k))
    all_idx = np.empty((n, k), dtype=np.int64)
    for block in iter_blocks(n, block_size):
        dist = pairwise_distances(queries[block], corpus, metric=metric)
        if exclude_self:
            dist[
                np.arange(block.stop - block.start),
                np.arange(block.start, block.stop),
            ] = np.inf
        part = np.argpartition(dist, kth=k - 1, axis=1)[:, :k]
        part_dist = np.take_along_axis(dist, part, axis=1)
        order = np.argsort(part_dist, axis=1)
        all_idx[block] = np.take_along_axis(part, order, axis=1)
        all_dist[block] = np.take_along_axis(part_dist, order, axis=1)
    return all_dist, all_idx


def blocked_argmin_distance(
    queries: np.ndarray,
    corpus: np.ndarray,
    metric: str = "euclidean",
    block_size: int = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest corpus index and distance for each query, block by block.

    Returns ``(indices, distances)`` with one entry per query row.  The
    corpus is scanned in blocks of ``block_size`` rows so memory stays
    bounded by ``len(queries) * block_size`` floats.
    """
    queries = np.asarray(queries, dtype=np.float64)
    corpus = np.asarray(corpus, dtype=np.float64)
    if len(corpus) == 0:
        raise DataValidationError("corpus must contain at least one point")
    n_queries = len(queries)
    best_dist = np.full(n_queries, np.inf)
    best_idx = np.zeros(n_queries, dtype=np.int64)
    for block in iter_blocks(len(corpus), block_size):
        dist = pairwise_distances(queries, corpus[block], metric=metric)
        local = np.argmin(dist, axis=1)
        local_dist = dist[np.arange(n_queries), local]
        improved = local_dist < best_dist
        best_dist[improved] = local_dist[improved]
        best_idx[improved] = local[improved] + block.start
    return best_idx, best_dist
