"""Pairwise distance computations used by the kNN substrate.

The functions here are exact (no approximate nearest-neighbor search) but
block the computation so that a large query-by-corpus distance matrix is
never materialized at once.  Both metrics used in the paper (euclidean
and cosine dissimilarity) are provided behind one dispatch function.

The dense matrix functions (:func:`euclidean_distances`,
:func:`cosine_distances`, :func:`pairwise_distances`) are the strict
``float64`` reference implementations.  The fused search entry points
(:func:`blocked_topk`, :func:`blocked_argmin_distance`) are thin
wrappers over :mod:`repro.knn.kernels`: they accept a ``dtype`` to run
the arithmetic in single precision, and default to ``float64`` so their
historical results are unchanged.  Callers that reuse one query or
corpus set across many calls should hold a
:class:`repro.knn.kernels.DistanceKernel` directly — these wrappers
rebuild the bound-side norm cache on every call.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.kernels import iter_blocks, make_kernel

__all__ = [
    "VALID_METRICS",
    "blocked_argmin_distance",
    "blocked_topk",
    "cosine_distances",
    "euclidean_distances",
    "iter_blocks",
    "pairwise_distances",
]

VALID_METRICS = ("euclidean", "cosine")

_EPS = 1e-12


def _validate_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise DataValidationError(
            f"expected 2-D arrays, got shapes {a.shape} and {b.shape}"
        )
    if a.shape[1] != b.shape[1]:
        raise DataValidationError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    return a, b


def euclidean_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact euclidean distance matrix of shape ``(len(a), len(b))``."""
    a, b = _validate_pair(a, b)
    sq_a = np.sum(a * a, axis=1)[:, None]
    sq_b = np.sum(b * b, axis=1)[None, :]
    sq = sq_a + sq_b - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def cosine_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine dissimilarity matrix, ``1 - cos(a_i, b_j)``.

    Zero vectors are treated as maximally dissimilar to everything
    (distance 1), matching the convention of treating an all-zero
    embedding as uninformative.
    """
    a, b = _validate_pair(a, b)
    norm_a = np.linalg.norm(a, axis=1)
    norm_b = np.linalg.norm(b, axis=1)
    safe_a = a / np.maximum(norm_a, _EPS)[:, None]
    safe_b = b / np.maximum(norm_b, _EPS)[:, None]
    sim = safe_a @ safe_b.T
    np.clip(sim, -1.0, 1.0, out=sim)
    sim[norm_a < _EPS, :] = 0.0
    sim[:, norm_b < _EPS] = 0.0
    return 1.0 - sim


_METRIC_FUNCS = {
    "euclidean": euclidean_distances,
    "cosine": cosine_distances,
}


def pairwise_distances(
    a: np.ndarray, b: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Dispatch to the requested metric ("euclidean" or "cosine")."""
    try:
        func = _METRIC_FUNCS[metric]
    except KeyError:
        raise DataValidationError(
            f"unknown metric {metric!r}; expected one of {VALID_METRICS}"
        ) from None
    return func(a, b)


def blocked_topk(
    queries: np.ndarray,
    corpus: np.ndarray,
    k: int,
    metric: str = "euclidean",
    block_size: int = 2048,
    exclude_self: bool = False,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-k search, blocked over query rows; returns ``(dist, idx)``.

    The query-by-corpus comparable-distance matrix is materialized
    ``block_size`` query rows at a time, top-k selected with
    ``argpartition`` and the k winners sorted and converted to true
    distances.  With ``exclude_self=True`` the queries must BE the
    corpus (same rows, same order): query ``i``'s match against corpus
    column ``i`` is masked out (leave-one-out mode).  Passing a
    different query set in that mode would mask arbitrary columns, so
    the caller is expected to validate ``len(queries) == len(corpus)``.
    ``dtype`` selects the compute precision (``None`` = ``float64``).
    """
    return make_kernel(metric, corpus, dtype=dtype).topk(
        queries, k, block_size=block_size, exclude_self=exclude_self
    )


def blocked_argmin_distance(
    queries: np.ndarray,
    corpus: np.ndarray,
    metric: str = "euclidean",
    block_size: int = 1024,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest corpus index and distance for each query, block by block.

    Returns ``(indices, distances)`` with one entry per query row.  The
    corpus is scanned in blocks of ``block_size`` rows so memory stays
    bounded by ``len(queries) * block_size`` values.  ``dtype`` selects
    the compute precision (``None`` = ``float64``).
    """
    corpus = np.asarray(corpus)
    if len(corpus) == 0:
        raise DataValidationError("corpus must contain at least one point")
    kernel = make_kernel(metric, queries, dtype=dtype)
    best_idx, best_cmp = kernel.nearest_among(corpus, block_size=block_size)
    return best_idx, kernel.to_distance(best_cmp)
