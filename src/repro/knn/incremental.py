"""Incremental kNN machinery: append-only index and post-cleaning cache.

Two pieces live here:

- :class:`IncrementalKNNIndex` — an exact :class:`repro.knn.base.KNNIndex`
  backend ("incremental") whose corpus grows in place via
  :meth:`IncrementalKNNIndex.partial_fit` with amortized-doubling
  storage, matching the paper's streaming ingestion pattern without
  re-copying the corpus on every batch.
- :class:`NeighborCache` — after one full 1NN evaluation the cache
  stores, for every test point, the index of its nearest training
  neighbor.  Cleaning labels (of training or test samples) never
  changes *which* point is the nearest neighbor — only feature changes
  could do that — so the 1NN error after any label update is recomputed
  with a single O(test) pass and zero distance computations.  This is
  the optimization of Section V that yields the several-orders-of-
  magnitude incremental speedups in Figure 13.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import ExactSearchMixin, KNNIndex, register_backend
from repro.knn.kernels import resolve_dtype
from repro.knn.progressive import ProgressiveOneNN


@register_backend("incremental")
class IncrementalKNNIndex(ExactSearchMixin, KNNIndex):
    """Exact kNN over an append-only corpus with amortized growth.

    ``fit`` starts the corpus and :meth:`partial_fit` appends further
    batches; storage doubles geometrically so ``n`` appended rows cost
    O(n) copying in total.  Search is exact (shared blocked top-k with
    the brute-force backend), so swapping this in for
    :class:`~repro.knn.brute_force.BruteForceKNN` changes no results —
    only the ingestion cost profile.

    Parameters
    ----------
    metric:
        "euclidean" or "cosine".
    block_size:
        Query rows per distance block; bounds search memory.
    dtype:
        Compute dtype for the distance arithmetic ("float32" or
        "float64"); ``None`` (default) keeps the strict ``float64``
        path.  The corpus-bound kernel (cached norms) is invalidated on
        every append and rebuilt lazily at the next search, so a burst
        of appends followed by many searches pays for one rebuild.
    """

    def __init__(
        self, metric: str = "euclidean", block_size: int = 2048, dtype=None
    ):
        self.metric = metric
        self.block_size = block_size
        resolve_dtype(dtype)  # fail fast, not at the first search
        self.dtype = dtype
        self._buf_x: np.ndarray | None = None
        self._buf_y: np.ndarray | None = None
        self._size = 0
        self._kernel_cache = None

    @property
    def num_fitted(self) -> int:
        return self._size

    @property
    def _x(self) -> np.ndarray | None:
        return None if self._buf_x is None else self._buf_x[: self._size]

    @property
    def _y(self) -> np.ndarray | None:
        return None if self._buf_y is None else self._buf_y[: self._size]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "IncrementalKNNIndex":
        """Reset the corpus to ``(x, y)``; append more via partial_fit."""
        self._buf_x = None
        self._buf_y = None
        self._size = 0
        x, y = self._validate_batch(x, y)
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        return self.partial_fit(x, y)

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> "IncrementalKNNIndex":
        """Append a batch of corpus rows; geometric buffer growth."""
        x, y = self._validate_batch(x, y)
        if len(x) == 0:
            return self
        self._kernel_cache = None
        if self._buf_x is None:
            self._buf_x = x.copy()
            self._buf_y = y.copy()
            self._size = len(x)
            return self
        if x.shape[1] != self._buf_x.shape[1]:
            raise DataValidationError(
                f"dimension mismatch: corpus has {self._buf_x.shape[1]} "
                f"features, batch has {x.shape[1]}"
            )
        needed = self._size + len(x)
        if needed > len(self._buf_x):
            capacity = max(needed, 2 * len(self._buf_x))
            grown_x = np.empty((capacity, self._buf_x.shape[1]))
            grown_y = np.empty(capacity, dtype=np.int64)
            grown_x[: self._size] = self._buf_x[: self._size]
            grown_y[: self._size] = self._buf_y[: self._size]
            self._buf_x, self._buf_y = grown_x, grown_y
        self._buf_x[self._size : needed] = x
        self._buf_y[self._size : needed] = y
        self._size = needed
        return self

    def _validate_batch(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise DataValidationError(
                f"x and y length mismatch: {len(x)} vs {len(y)}"
            )
        return x, y.astype(np.int64)

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._size == 0:
            raise DataValidationError("index is not fitted; call fit() first")
        return self._x, self._y

    # kneighbors / loo_error come from ExactSearchMixin; predict/error
    # from KNNIndex.


class NeighborCache:
    """Label-update-aware 1NN error cache for a fixed feature geometry.

    Parameters
    ----------
    nn_indices:
        For each test point, the train index of its nearest neighbor.
    train_labels, test_labels:
        Current (possibly noisy) integer labels; copies are taken.
    """

    def __init__(
        self,
        nn_indices: np.ndarray,
        train_labels: np.ndarray,
        test_labels: np.ndarray,
    ):
        nn_indices = np.asarray(nn_indices, dtype=np.int64)
        train_labels = np.asarray(train_labels, dtype=np.int64).copy()
        test_labels = np.asarray(test_labels, dtype=np.int64).copy()
        if len(nn_indices) != len(test_labels):
            raise DataValidationError(
                "nn_indices and test_labels must have one entry per test point"
            )
        if len(train_labels) == 0:
            raise DataValidationError("train_labels must not be empty")
        if nn_indices.min(initial=0) < 0 or nn_indices.max(initial=0) >= len(
            train_labels
        ):
            raise DataValidationError("nn_indices out of range of train_labels")
        self._nn_indices = nn_indices
        self._train_labels = train_labels
        self._test_labels = test_labels

    @classmethod
    def from_progressive(
        cls, evaluator: ProgressiveOneNN, train_labels: np.ndarray
    ) -> "NeighborCache":
        """Build a cache from a fully-fed :class:`ProgressiveOneNN`."""
        return cls(
            evaluator.nearest_indices,
            train_labels,
            evaluator.test_labels,
        )

    @property
    def test_size(self) -> int:
        return len(self._test_labels)

    @property
    def train_size(self) -> int:
        return len(self._train_labels)

    def error(self) -> float:
        """Exact 1NN test error under the current labels; O(test)."""
        predicted = self._train_labels[self._nn_indices]
        return float(np.mean(predicted != self._test_labels))

    def update_train_labels(
        self, indices: np.ndarray, new_labels: np.ndarray
    ) -> None:
        """Rewrite training labels in place; no distances are touched."""
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        if len(indices) and (
            indices.min() < 0 or indices.max() >= len(self._train_labels)
        ):
            raise DataValidationError("train index out of range")
        self._train_labels[indices] = new_labels

    def update_test_labels(self, indices: np.ndarray, new_labels: np.ndarray) -> None:
        """Rewrite test labels in place; no distances are touched."""
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        if len(indices) and (
            indices.min() < 0 or indices.max() >= len(self._test_labels)
        ):
            raise DataValidationError("test index out of range")
        self._test_labels[indices] = new_labels

    def snapshot_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of the current (train_labels, test_labels)."""
        return self._train_labels.copy(), self._test_labels.copy()
