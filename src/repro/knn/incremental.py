"""Neighbor cache enabling real-time Snoopy re-runs after label cleaning.

After one full 1NN evaluation the cache stores, for every test point, the
index of its nearest training neighbor.  Cleaning labels (of training or
test samples) never changes *which* point is the nearest neighbor — only
feature changes could do that — so the 1NN error after any label update
is recomputed with a single O(test) pass and zero distance computations.
This is the optimization of Section V that yields the several-orders-of-
magnitude incremental speedups in Figure 13.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.progressive import ProgressiveOneNN


class NeighborCache:
    """Label-update-aware 1NN error cache for a fixed feature geometry.

    Parameters
    ----------
    nn_indices:
        For each test point, the train index of its nearest neighbor.
    train_labels, test_labels:
        Current (possibly noisy) integer labels; copies are taken.
    """

    def __init__(
        self,
        nn_indices: np.ndarray,
        train_labels: np.ndarray,
        test_labels: np.ndarray,
    ):
        nn_indices = np.asarray(nn_indices, dtype=np.int64)
        train_labels = np.asarray(train_labels, dtype=np.int64).copy()
        test_labels = np.asarray(test_labels, dtype=np.int64).copy()
        if len(nn_indices) != len(test_labels):
            raise DataValidationError(
                "nn_indices and test_labels must have one entry per test point"
            )
        if len(train_labels) == 0:
            raise DataValidationError("train_labels must not be empty")
        if nn_indices.min(initial=0) < 0 or nn_indices.max(initial=0) >= len(
            train_labels
        ):
            raise DataValidationError("nn_indices out of range of train_labels")
        self._nn_indices = nn_indices
        self._train_labels = train_labels
        self._test_labels = test_labels

    @classmethod
    def from_progressive(
        cls, evaluator: ProgressiveOneNN, train_labels: np.ndarray
    ) -> "NeighborCache":
        """Build a cache from a fully-fed :class:`ProgressiveOneNN`."""
        return cls(
            evaluator.nearest_indices,
            train_labels,
            # ProgressiveOneNN keeps its own test labels private; rebuild
            # them from the stored nearest labels and the error structure
            # is not possible, so the caller supplies train labels and we
            # read test labels through the evaluator's public surface.
            evaluator._test_y,  # noqa: SLF001 - same-package cooperation
        )

    @property
    def test_size(self) -> int:
        return len(self._test_labels)

    @property
    def train_size(self) -> int:
        return len(self._train_labels)

    def error(self) -> float:
        """Exact 1NN test error under the current labels; O(test)."""
        predicted = self._train_labels[self._nn_indices]
        return float(np.mean(predicted != self._test_labels))

    def update_train_labels(
        self, indices: np.ndarray, new_labels: np.ndarray
    ) -> None:
        """Rewrite training labels in place; no distances are touched."""
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        if len(indices) and (
            indices.min() < 0 or indices.max() >= len(self._train_labels)
        ):
            raise DataValidationError("train index out of range")
        self._train_labels[indices] = new_labels

    def update_test_labels(self, indices: np.ndarray, new_labels: np.ndarray) -> None:
        """Rewrite test labels in place; no distances are touched."""
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        if len(indices) and (
            indices.min() < 0 or indices.max() >= len(self._test_labels)
        ):
            raise DataValidationError("test index out of range")
        self._test_labels[indices] = new_labels

    def snapshot_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of the current (train_labels, test_labels)."""
        return self._train_labels.copy(), self._test_labels.copy()
