"""Product quantization: compressed ANN search with ADC and exact re-rank.

The paper's scaling story ("millions of users", Johnson et al.'s
billion-scale systems) ends at an index whose corpus no longer fits in
memory uncompressed.  Product quantization (Jégou et al., TPAMI 2011)
is the standard answer: split each d-dimensional vector into ``m``
subvectors, vector-quantize every subspace with its own ``ksub``-word
codebook, and store each corpus point as ``m`` uint8 codes — a 16–32x
memory reduction at typical settings.

Search never decompresses.  For a query, an **asymmetric distance
computation** (ADC) table of shape ``(m, ksub)`` holds the squared
distance from each query subvector to every codeword; the distance to a
coded point is then ``m`` table lookups and adds, accumulated by fancy
indexing — no full distance matrix, no per-candidate BLAS call.

Two layers live here:

- :class:`ProductQuantizer` — the codec: per-subspace k-means codebooks
  (trained via :class:`repro.knn.kmeans.KMeans`), vectorized
  ``encode``/``decode``, per-query ADC ``lookup_tables`` and the
  table-accumulation primitive :meth:`ProductQuantizer.adc_distances`.
- :class:`IVFPQIndex` — backend ``"ivf_pq"``: a coarse inverted file
  (like :class:`repro.knn.ivf.IVFFlatIndex`) whose lists store
  *residual*-encoded codes.  Probed lists are scanned with ADC tables
  only, then the best ``rerank`` candidates per query are re-scored
  exactly through the corpus-bound
  :class:`~repro.knn.kernels.DistanceKernel`
  (:meth:`~repro.knn.kernels.DistanceKernel.pair_comparable`), so the
  reported neighbors carry true distances and recall@1 stays near
  exact.  The index is append-only (:meth:`IVFPQIndex.partial_fit`):
  new rows are encoded straight into their coarse lists, and a
  configurable refresh policy retrains the codebooks once the corpus
  has outgrown the training snapshot.

Residual ADC uses the precomputed-term decomposition of the FAISS line
of systems: with coarse centroid ``C`` and decoded residual ``r``,

``|q - (C + r)|^2 = |q - C|^2 + sum_j (|r_j|^2 + 2<C_j, r_j>) - 2 sum_j <q_j, r_j>``

The first term is the coarse probe distance (already computed), the
middle term is query-independent (folded into a per-point constant at
encode time), and only the last term — one ``(m, ksub)`` table of
query-codeword dot products per query, shared across *all* probed
lists — is paid at search time.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import KNNIndex, register_backend
from repro.knn.kernels import iter_blocks, make_kernel, resolve_dtype
from repro.knn.kmeans import KMeans
from repro.rng import SeedLike, ensure_rng

#: Per-chunk ADC working-set target, in compute-dtype entries.  The
#: accumulator of a chunk is ``chunk x max_list_size``; keeping it (plus
#: the chunk's lookup tables) around L2 size roughly doubles the gather
#: throughput versus large DRAM-resident chunks.
_SCAN_TARGET = 100_000

#: For keep-counts at or below this, per-list top selection uses
#: iterated argmin sweeps (branch-free SIMD reductions) instead of
#: argpartition — same trade-off as the IVF-Flat scan.
_ITER_ARGMIN_MAX = 8


def _effective_m(dim: int, requested: int) -> int:
    """Largest divisor of ``dim`` not exceeding the requested ``m``.

    Subspaces must tile the dimensionality exactly; clamping to a
    divisor (rather than raising) keeps the backend usable across a
    catalog whose transforms emit arbitrary output dims.
    """
    for m in range(min(requested, dim), 0, -1):
        if dim % m == 0:
            return m
    return 1


class ProductQuantizer:
    """Per-subspace k-means codec over fixed-dimension rows.

    Parameters
    ----------
    m:
        Requested number of subspaces.  ``fit`` clamps it to the largest
        divisor of the data dimensionality not exceeding the request and
        persists the effective value (codes are one uint8 per subspace).
    nbits:
        Bits per code, 1..8; the per-subspace codebook holds
        ``2**nbits`` words (clamped to the training-set size).
    seed:
        Seeds the per-subspace k-means (each subspace gets its own
        deterministic child stream).
    dtype:
        Compute dtype for all distance arithmetic ("float32"/"float64";
        ``None`` keeps strict float64).  Codebooks are stored in this
        dtype.
    max_iterations:
        Lloyd iteration cap per subspace codebook.
    points_per_codeword:
        Codebooks are trained on a deterministic subsample of at most
        ``ksub * points_per_codeword`` rows (the FAISS convention):
        k-means cost scales with the training-set size while codebook
        quality saturates quickly, so training on the full corpus buys
        nothing but wall-clock.  ``None`` trains on everything.
    """

    def __init__(
        self,
        m: int = 8,
        nbits: int = 8,
        seed: SeedLike = 0,
        dtype=None,
        max_iterations: int = 25,
        points_per_codeword: int | None = 64,
    ):
        if m < 1:
            raise DataValidationError(f"m must be >= 1, got {m}")
        if not 1 <= nbits <= 8:
            raise DataValidationError(
                f"nbits must be in [1, 8] (uint8 codes), got {nbits}"
            )
        self._requested_m = m
        self.m = m
        self.nbits = nbits
        self.ksub = 1 << nbits
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self._seed = seed
        self.max_iterations = max_iterations
        self.points_per_codeword = points_per_codeword
        self.dsub: int | None = None
        #: ``(m, ksub, dsub)`` codebooks in the compute dtype.
        self.codebooks: np.ndarray | None = None
        #: ``(m, ksub)`` squared codeword norms (compute dtype).
        self.codeword_sq: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self.codebooks is not None

    @property
    def dim(self) -> int:
        if self.dsub is None:
            raise DataValidationError("quantizer is not fitted")
        return self.m * self.dsub

    @property
    def code_bytes_per_row(self) -> int:
        """Bytes one encoded row occupies (one uint8 per subspace)."""
        return self.m

    def fit(self, x: np.ndarray) -> "ProductQuantizer":
        """Train the per-subspace codebooks on ``x`` (shape ``(n, d)``)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) == 0:
            raise DataValidationError("cannot fit a quantizer on no rows")
        # Effective geometry: m divides d, ksub fits the training set.
        self.m = _effective_m(x.shape[1], self._requested_m)
        self.dsub = x.shape[1] // self.m
        self.ksub = min(1 << self.nbits, len(x))
        rng = ensure_rng(self._seed)
        if self.points_per_codeword is not None:
            sample = min(len(x), self.ksub * self.points_per_codeword)
            if sample < len(x):
                x = x[rng.choice(len(x), size=sample, replace=False)]
        streams = rng.integers(0, 2**63 - 1, size=self.m, dtype=np.int64)
        codebooks = np.empty(
            (self.m, self.ksub, self.dsub), dtype=self._dtype
        )
        for j in range(self.m):
            sub = x[:, j * self.dsub : (j + 1) * self.dsub]
            km = KMeans(
                self.ksub,
                max_iterations=self.max_iterations,
                seed=int(streams[j]),
                dtype=self.dtype,
            ).fit(sub)
            codebooks[j] = np.asarray(km.centroids, dtype=self._dtype)
        self.codebooks = codebooks
        self.codeword_sq = np.sum(codebooks * codebooks, axis=2)
        return self

    def _check_rows(self, x: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise DataValidationError("quantizer is not fitted")
        x = np.asarray(x, dtype=self._dtype)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise DataValidationError(
                f"expected rows of shape (*, {self.dim}), got {x.shape}"
            )
        return x

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Quantize rows to a ``(n, m)`` uint8 code matrix."""
        x = self._check_rows(x)
        codes = np.empty((len(x), self.m), dtype=np.uint8)
        if len(x) == 0:
            return codes
        for j in range(self.m):
            sub = x[:, j * self.dsub : (j + 1) * self.dsub]
            kernel = make_kernel("euclidean", sub, dtype=self.dtype)
            nearest, _ = kernel.nearest_among(self.codebooks[j])
            codes[:, j] = nearest
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, d)`` rows from a uint8 code matrix."""
        if not self.fitted:
            raise DataValidationError("quantizer is not fitted")
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.m:
            raise DataValidationError(
                f"expected codes of shape (*, {self.m}), got {codes.shape}"
            )
        out = np.empty((len(codes), self.dim), dtype=self._dtype)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[
                j, codes[:, j]
            ]
        return out

    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(nq, m, ksub)`` squared sub-distances.

        ``tables[q, j, c]`` is the squared euclidean distance between
        query ``q``'s ``j``-th subvector and codeword ``c`` of subspace
        ``j``; summing one entry per subspace reproduces the squared
        distance to the decoded point exactly.
        """
        queries = self._check_rows(queries)
        sub = queries.reshape(len(queries), self.m, self.dsub)
        dots = np.einsum("nmd,mkd->nmk", sub, self.codebooks)
        sub_sq = np.sum(sub * sub, axis=2)
        two = self._dtype.type(2.0)
        tables = sub_sq[:, :, None] + self.codeword_sq[None, :, :] - two * dots
        np.maximum(tables, self._dtype.type(0.0), out=tables)
        return tables

    def adc_distances(
        self, tables: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Accumulate ADC tables over a code matrix: ``(nq, n)`` squared.

        Pure table arithmetic — one fancy-indexed gather and add per
        subspace, never touching the original vectors.
        """
        tables = np.asarray(tables)
        codes = np.asarray(codes)
        if tables.ndim != 3 or tables.shape[1] != self.m:
            raise DataValidationError(
                f"tables must have shape (nq, {self.m}, ksub), "
                f"got {tables.shape}"
            )
        if codes.ndim != 2 or codes.shape[1] != self.m:
            raise DataValidationError(
                f"codes must have shape (n, {self.m}), got {codes.shape}"
            )
        out = np.zeros((len(tables), len(codes)), dtype=tables.dtype)
        for j in range(self.m):
            out += tables[:, j, :][:, codes[:, j]]
        return out


@register_backend("ivf_pq")
class IVFPQIndex(KNNIndex):
    """IVF-PQ: inverted file over residual product-quantized codes.

    Search runs in three stages: (1) coarse probing orders the
    partitions by centroid distance, (2) the probed lists are scanned
    with per-query ADC tables over the stored uint8 codes (no
    decompression), and (3) the best ``rerank`` candidates are
    re-scored exactly through the corpus-bound
    :class:`~repro.knn.kernels.DistanceKernel`, which restores
    near-exact recall@1 and makes the reported distances true
    distances.

    Parameters
    ----------
    nlist:
        Coarse partitions; clamped to the corpus size at fit.
    nprobe:
        Partitions scanned per query (widened per query when the probed
        lists hold fewer than ``k`` candidates).
    pq_m:
        Requested PQ subspaces (clamped to a divisor of the coded dim).
    pq_nbits:
        Bits per PQ code (codebook size ``2**pq_nbits``).
    pq_dim:
        When set, residuals are first projected onto a ``pq_dim``-
        dimensional orthonormal basis (randomized range finder over a
        training sample — the PCA/OPQ-style transform production PQ
        pipelines prepend) and the codebooks quantize the *projected*
        residuals.  This keeps the per-subspace dimensionality small
        (the regime where ``2**pq_nbits`` codewords quantize well) on
        wide embeddings, without touching the scan cost: ADC still
        accumulates ``pq_m`` table lookups per candidate.  The ADC
        estimate remains the exact distance to the reconstructed point
        ``C + P r̂``; only the discarded orthogonal complement adds
        ranking noise, which the exact re-rank absorbs.  ``None``
        (default) quantizes raw residuals.
    rerank:
        Candidates re-scored exactly per query; ``0`` disables the
        re-rank stage and reports ADC-estimated distances.
    refresh_factor:
        Codebook refresh policy for :meth:`partial_fit`: once the corpus
        reaches ``refresh_factor`` times the size it was last trained
        on, coarse and PQ codebooks are retrained on the full corpus and
        every point re-encoded.  ``None`` (or ``<= 1``) disables
        refreshes.
    seed:
        Seeds the coarse quantizer and the PQ codebooks.
    block_size:
        Query rows per exact re-rank block.
    dtype:
        Compute dtype for all distance arithmetic ("float32"/"float64";
        ``None`` keeps strict float64).
    """

    #: :class:`~repro.knn.progressive.ProgressiveOneNN` keeps ONE
    #: instance of a backend advertising this and appends each training
    #: batch instead of rebuilding an index per batch.
    supports_progressive_append = True

    @property
    def exact_distances(self) -> bool:
        """Whether reported distances are exact (re-rank on) or ADC
        estimates (``rerank == 0``).  Estimates are not comparable
        across codebook refreshes, so streaming consumers must replace
        — not min-merge — cached state built from them."""
        return self.rerank > 0

    def __init__(
        self,
        nlist: int = 32,
        nprobe: int = 8,
        pq_m: int = 8,
        pq_nbits: int = 8,
        pq_dim: int | None = None,
        rerank: int = 32,
        refresh_factor: float | None = 2.0,
        seed: SeedLike = 0,
        block_size: int = 2048,
        dtype=None,
    ):
        if nlist < 1:
            raise DataValidationError("nlist must be >= 1")
        if nprobe < 1:
            raise DataValidationError("nprobe must be >= 1")
        if rerank < 0:
            raise DataValidationError("rerank must be >= 0")
        if pq_dim is not None and pq_dim < 1:
            raise DataValidationError("pq_dim must be >= 1")
        self._requested_nlist = nlist
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self._requested_nprobe = self.nprobe
        self.pq_m = pq_m
        self.pq_nbits = pq_nbits
        self.pq_dim = pq_dim
        self.rerank = rerank
        self.refresh_factor = refresh_factor
        self.block_size = block_size
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self._seed = seed
        self.pq = ProductQuantizer(pq_m, pq_nbits, seed=seed, dtype=dtype)
        self.num_refreshes = 0
        self._reset_storage()

    def _reset_storage(self) -> None:
        self._buf_x: np.ndarray | None = None  # raw corpus (re-rank/refresh)
        self._buf_y: np.ndarray | None = None
        self._buf_codes: np.ndarray | None = None  # uint8 (n, m)
        self._buf_base: np.ndarray | None = None  # ADC constant per row
        self._size = 0
        self._trained_size = 0
        self._assign: np.ndarray | None = None  # coarse list per row
        # Per-list storage uses amortized-doubling buffers (capacity >=
        # size), like the flat row buffers, so a stream of small
        # appends costs O(n) copying in total: _list_buffers[c] holds
        # member ids, _list_codes_buffers[c] the member codes
        # transposed to (m, capacity) intp — the layout that makes the
        # ADC gather one contiguous row-take per subspace, with no
        # per-element index conversion on the hot path.
        self._list_sizes_arr: np.ndarray | None = None
        self._list_buffers: list[np.ndarray] = []
        self._list_codes_buffers: list[np.ndarray] = []
        self._coarse: KMeans | None = None
        self._centroid_kernel = None
        self._corpus_kernel = None
        self._precomp: np.ndarray | None = None  # (nlist, m, ksub)
        self._projection: np.ndarray | None = None  # (d, pq_dim), orthonormal

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_fitted(self) -> int:
        return self._size

    @property
    def _x(self) -> np.ndarray | None:
        return None if self._buf_x is None else self._buf_x[: self._size]

    @property
    def _y(self) -> np.ndarray | None:
        return None if self._buf_y is None else self._buf_y[: self._size]

    @property
    def codes(self) -> np.ndarray | None:
        """The uint8 code matrix ``(num_fitted, m)`` (read-only view)."""
        if self._buf_codes is None:
            return None
        view = self._buf_codes[: self._size]
        view.flags.writeable = False
        return view

    def memory_stats(self) -> dict[str, float]:
        """Compressed-vs-raw corpus accounting, in bytes.

        ``compression_ratio`` compares the raw corpus footprint (at the
        compute dtype) against everything the compressed **scan path**
        touches per query: codes, codebooks, coarse centroids, the
        per-point ADC constants and the transposed scan index.  Note
        the raw rows themselves stay resident (``raw_bytes``): the
        exact re-rank stage and the codebook-refresh policy both read
        them, so the ratio describes per-query memory traffic and what
        must stay cache-hot — not a reduction of total process memory.
        A deployment that drops the raw rows must run with
        ``rerank=0`` and ``refresh_factor=None`` and decode from codes.
        """
        if self._size == 0:
            raise DataValidationError("index is not fitted")
        raw = float(self._x.nbytes)
        codes = float(self.codes.nbytes)
        codebooks = float(self.pq.codebooks.nbytes + self._precomp.nbytes)
        centroids = float(self._centroid_kernel.bound.nbytes)
        base = float(self._buf_base[: self._size].nbytes)
        scan = float(
            self.pq.m
            * np.dtype(np.intp).itemsize
            * int(self._list_sizes_arr.sum())
        )
        if self._projection is not None:
            codebooks += float(self._projection.nbytes)
        compressed = codes + codebooks + centroids + base + scan
        return {
            "raw_bytes": raw,
            "code_bytes": codes,
            "codebook_bytes": codebooks,
            "centroid_bytes": centroids,
            "adc_constant_bytes": base,
            "scan_index_bytes": scan,
            "compressed_bytes": compressed,
            "compression_ratio": raw / compressed,
        }

    # ------------------------------------------------------------------
    # Fit / append
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "IVFPQIndex":
        """Train coarse + PQ codebooks on ``(x, y)`` and encode it."""
        x, y = self._validate_batch(x, y)
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        self._reset_storage()
        self._append_raw(x, y)
        self._train()
        return self

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> "IVFPQIndex":
        """Append a batch: encode-on-append, refresh codebooks by policy.

        New rows are assigned to their coarse list and residual-encoded
        with the *current* codebooks.  Once the corpus reaches
        ``refresh_factor`` times its last training snapshot, everything
        is retrained and re-encoded (the refresh is what keeps recall
        from decaying as the distribution of appended rows drifts from
        the snapshot the codebooks saw).
        """
        x, y = self._validate_batch(x, y)
        if len(x) == 0:
            return self
        if self._size == 0:
            return self.fit(x, y)
        if x.shape[1] != self._buf_x.shape[1]:
            raise DataValidationError(
                f"dimension mismatch: corpus has {self._buf_x.shape[1]} "
                f"features, batch has {x.shape[1]}"
            )
        start = self._size
        self._append_raw(x, y)
        if (
            self.refresh_factor is not None
            and self.refresh_factor > 1.0
            and self._size >= self.refresh_factor * self._trained_size
        ):
            self._train()
            self.num_refreshes += 1
        else:
            self._encode_rows(start, self._size)
            if self._corpus_kernel is not None:
                # Extend the re-rank kernel in O(appended): cached
                # norms for existing rows are reused, so a stream of
                # small pulls never pays a full-corpus rebind.
                self._corpus_kernel = self._corpus_kernel.extend(self._x)
        return self

    def _validate_batch(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=self._dtype)
        y = np.asarray(y)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise DataValidationError(
                f"x and y length mismatch: {len(x)} vs {len(y)}"
            )
        return x, y.astype(np.int64)

    def _append_raw(self, x: np.ndarray, y: np.ndarray) -> None:
        """Append rows/labels into the doubling buffers (codes later)."""
        needed = self._size + len(x)
        if self._buf_x is None:
            capacity = len(x)
            self._buf_x = np.empty((capacity, x.shape[1]), dtype=self._dtype)
            self._buf_y = np.empty(capacity, dtype=np.int64)
        elif needed > len(self._buf_x):
            capacity = max(needed, 2 * len(self._buf_x))
            for name in ("_buf_x", "_buf_y", "_buf_codes", "_buf_base"):
                old = getattr(self, name)
                if old is None:
                    continue
                grown = np.empty(
                    (capacity,) + old.shape[1:], dtype=old.dtype
                )
                grown[: self._size] = old[: self._size]
                setattr(self, name, grown)
            if self._assign is not None and needed > len(self._assign):
                grown = np.empty(capacity, dtype=np.int64)
                grown[: self._size] = self._assign[: self._size]
                self._assign = grown
        self._buf_x[self._size : needed] = x
        self._buf_y[self._size : needed] = y
        self._size = needed

    def _train(self) -> None:
        """(Re)train coarse + PQ codebooks on the full corpus, re-encode."""
        corpus = self._x
        self.nlist = min(self._requested_nlist, len(corpus))
        self.nprobe = min(self._requested_nprobe, self.nlist)
        # Coarse centroids, like the PQ codebooks, are trained on a
        # bounded subsample (FAISS convention, ~256 points/centroid);
        # assignment of the full corpus is a single predict pass.
        sample = min(len(corpus), self.nlist * 256)
        coarse_train = corpus
        if sample < len(corpus):
            picks = ensure_rng(self._seed).choice(
                len(corpus), size=sample, replace=False
            )
            coarse_train = corpus[picks]
        self._coarse = KMeans(
            self.nlist, seed=self._seed, dtype=self.dtype
        ).fit(coarse_train)
        centroids = np.asarray(self._coarse.centroids, dtype=self._dtype)
        self._centroid_kernel = make_kernel(
            "euclidean", centroids, dtype=self.dtype
        )
        assignment = self._coarse.predict(corpus)
        residuals = corpus - centroids[assignment]
        self._projection = self._fit_projection(residuals)
        coded_residuals = self._to_code_space(residuals)
        self.pq = ProductQuantizer(
            self.pq_m, self.pq_nbits, seed=self._seed, dtype=self.dtype
        ).fit(coded_residuals)
        # Query-independent ADC term per (list, subspace, codeword):
        # |r|^2 + 2 <C_j, r_j>, folded per corpus point into _buf_base.
        # With a projection P the reconstruction is C + P r̂ and the
        # same decomposition holds with C and q both mapped through
        # P^T (P has orthonormal columns).
        sub_centroids = self._to_code_space(centroids).reshape(
            self.nlist, self.pq.m, self.pq.dsub
        )
        centroid_dots = np.einsum(
            "lmd,mkd->lmk", sub_centroids, self.pq.codebooks
        )
        two = self._dtype.type(2.0)
        self._precomp = self.pq.codeword_sq[None, :, :] + two * centroid_dots
        capacity = len(self._buf_x)
        self._buf_codes = np.empty((capacity, self.pq.m), dtype=np.uint8)
        self._buf_base = np.empty(capacity, dtype=self._dtype)
        self._assign = np.empty(capacity, dtype=np.int64)
        self._assign[: self._size] = assignment
        codes = self.pq.encode(coded_residuals)
        self._buf_codes[: self._size] = codes
        self._buf_base[: self._size] = self._adc_base(assignment, codes)
        members_by_list = [
            np.flatnonzero(assignment == cluster)
            for cluster in range(self.nlist)
        ]
        self._list_sizes_arr = np.array(
            [len(members) for members in members_by_list], dtype=np.int64
        )
        self._list_buffers = members_by_list
        self._list_codes_buffers = [
            np.ascontiguousarray(codes[members].T, dtype=np.intp)
            for members in members_by_list
        ]
        self._trained_size = self._size
        self._corpus_kernel = None

    def _fit_projection(self, residuals: np.ndarray) -> np.ndarray | None:
        """Orthonormal ``(d, pq_dim)`` basis via a randomized range finder.

        One power iteration over a bounded sample approximates the top
        right-singular subspace of the residual matrix — the PCA-style
        rotation production PQ pipelines prepend — at GEMM cost.
        """
        if self.pq_dim is None or self.pq_dim >= residuals.shape[1]:
            return None
        rng = ensure_rng(self._seed)
        sample = residuals
        cap = max(4 * self.pq_dim, 16_384)
        if len(sample) > cap:
            sample = sample[rng.choice(len(sample), size=cap, replace=False)]
        probe = rng.normal(size=(residuals.shape[1], self.pq_dim)).astype(
            self._dtype
        )
        span = sample.T @ (sample @ probe)
        basis, _ = np.linalg.qr(span.astype(np.float64))
        return np.ascontiguousarray(basis, dtype=self._dtype)

    def _to_code_space(self, rows: np.ndarray) -> np.ndarray:
        """Map full-space rows into the space the codebooks quantize."""
        if self._projection is None:
            return rows
        return rows @ self._projection

    def _adc_base(
        self, assignment: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Per-row query-independent ADC constant (see module docstring)."""
        rows = np.arange(self.pq.m)
        return self._precomp[assignment[:, None], rows[None, :], codes].sum(
            axis=1, dtype=self._dtype
        )

    def _encode_rows(self, start: int, stop: int) -> None:
        """Residual-encode appended rows into their coarse lists."""
        rows = self._buf_x[start:stop]
        centroids = self._centroid_kernel.bound
        assignment, _ = make_kernel(
            "euclidean", rows, dtype=self.dtype
        ).nearest_among(centroids)
        residuals = rows - centroids[assignment]
        codes = self.pq.encode(self._to_code_space(residuals))
        self._assign[start:stop] = assignment
        self._buf_codes[start:stop] = codes
        self._buf_base[start:stop] = self._adc_base(assignment, codes)
        new_ids = np.arange(start, stop)
        for cluster in np.unique(assignment):
            picked = assignment == cluster
            self._append_to_list(
                int(cluster),
                new_ids[picked],
                np.ascontiguousarray(codes[picked].T, dtype=np.intp),
            )

    def _append_to_list(
        self, cluster: int, member_ids: np.ndarray, codes_t: np.ndarray
    ) -> None:
        """Amortized-doubling append into one inverted list's buffers."""
        size = int(self._list_sizes_arr[cluster])
        needed = size + len(member_ids)
        members = self._list_buffers[cluster]
        if needed > len(members):
            capacity = max(needed, 2 * len(members))
            grown = np.empty(capacity, dtype=np.int64)
            grown[:size] = members[:size]
            self._list_buffers[cluster] = members = grown
            grown_codes = np.empty((self.pq.m, capacity), dtype=np.intp)
            grown_codes[:, :size] = self._list_codes_buffers[cluster][
                :, :size
            ]
            self._list_codes_buffers[cluster] = grown_codes
        members[size:needed] = member_ids
        self._list_codes_buffers[cluster][:, size:needed] = codes_t
        self._list_sizes_arr[cluster] = needed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _rerank_kernel(self):
        if self._corpus_kernel is None:
            self._corpus_kernel = make_kernel(
                "euclidean", self._x, dtype=self.dtype
            )
        return self._corpus_kernel

    def kneighbors(
        self, queries: np.ndarray, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate ``(distances, indices)`` of the k nearest points.

        Probing is widened per query until the probed lists hold at
        least ``k`` candidates, so the result always contains ``k``
        valid entries.  With ``rerank > 0`` the reported distances are
        exact (:class:`DistanceKernel` arithmetic) for the returned
        neighbors; with ``rerank == 0`` they are ADC estimates.
        """
        if self._size == 0:
            raise DataValidationError("index is not fitted")
        queries = np.asarray(queries, dtype=self._dtype)
        if queries.ndim != 2:
            raise DataValidationError("queries must be 2-D")
        if k < 1:
            raise DataValidationError(f"k must be >= 1, got {k}")
        if k > self._size:
            raise DataValidationError(
                f"k={k} exceeds corpus size {self._size}"
            )
        n = len(queries)
        out_dist = np.empty((n, k))
        out_idx = np.empty((n, k), dtype=np.int64)
        if n == 0:
            return out_dist, out_idx
        centroid_cmp = self._centroid_kernel.comparable_from(queries)
        probe_order = np.argsort(centroid_cmp, axis=1)
        list_sizes = self._list_sizes_arr
        counts = np.cumsum(list_sizes[probe_order], axis=1)
        depth = np.maximum(self.nprobe, 1 + np.argmax(counts >= k, axis=1))
        # Queries mapped into code space once; the per-query ADC tables
        # (query-codeword dot products, shared across every probed list
        # by the residual decomposition) are built chunk-by-chunk inside
        # the scan so they stay cache-resident.
        sub = self._to_code_space(queries).reshape(
            n, self.pq.m, self.pq.dsub
        )
        for probes in np.unique(depth):
            rows = np.flatnonzero(depth == probes)
            dist, idx = self._adc_probed(
                queries[rows],
                sub[rows],
                centroid_cmp[rows],
                probe_order[rows, :probes],
                k,
                list_sizes,
            )
            out_dist[rows] = dist
            out_idx[rows] = idx
        return out_dist, out_idx

    def _adc_probed(
        self,
        queries: np.ndarray,
        sub: np.ndarray,
        centroid_cmp: np.ndarray,
        probe_clusters: np.ndarray,
        k: int,
        list_sizes: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """ADC scan of the probed lists + exact re-rank of the survivors.

        Cluster-major like the IVF-Flat scan: (query, probed-cluster)
        pairs are regrouped by cluster so each list's code matrix is
        scanned with the chunk's cache-resident lookup tables, its ADC
        distances accumulated by fancy-indexing, and each list's best
        ``t = max(k, rerank)`` entries land in an inf-padded semifinal
        pool per query.
        """
        g = len(queries)
        p = probe_clusters.shape[1]
        t = max(k, min(self.rerank, self._size)) if self.rerank else k
        out_dist = np.empty((g, k))
        out_idx = np.empty((g, k), dtype=np.int64)
        two = self._dtype.type(2.0)
        max_size = int(list_sizes.max()) if len(list_sizes) else 1
        chunk = max(16, min(g, _SCAN_TARGET // max(1, max_size, p * t)))
        for block in iter_blocks(g, chunk):
            b = block.stop - block.start
            clusters = probe_clusters[block]
            # ADC tables for this chunk only: b x m x ksub stays within
            # cache next to the accumulator below.
            qdot = np.einsum(
                "nmd,mkd->nmk", sub[block], self.pq.codebooks
            )
            pool_est = np.full((b, p * t), np.inf, dtype=self._dtype)
            pool_idx = np.full((b, p * t), -1, dtype=np.int64)
            flat_clusters = clusters.ravel()
            flat_rows = np.repeat(np.arange(b), p)
            flat_slots = np.tile(np.arange(p) * t, b)
            by_cluster = np.argsort(flat_clusters, kind="stable")
            boundaries = np.flatnonzero(
                np.diff(flat_clusters[by_cluster])
            ) + 1
            for segment in np.split(by_cluster, boundaries):
                cluster = int(flat_clusters[segment[0]])
                size = int(list_sizes[cluster])
                if size == 0:
                    continue
                members = self._list_buffers[cluster][:size]
                local_rows = flat_rows[segment]
                r = len(local_rows)
                codes_t = self._list_codes_buffers[cluster][:, :size]
                # est = |q - C|^2 + base - 2 sum_j qdot[q, j, code_j].
                # Accumulated transposed — (size, r) — so each subspace
                # is ONE contiguous row-take from a (ksub, r) table:
                # the per-candidate cost is m row copies, independent
                # of the vector dimensionality.
                seg_qdot = qdot[local_rows]  # (r, m, ksub) row gather
                acc = np.empty((size, r), dtype=self._dtype)
                tmp = np.empty((size, r), dtype=self._dtype)
                for j in range(self.pq.m):
                    table = np.ascontiguousarray(seg_qdot[:, j, :].T)
                    if j == 0:
                        np.take(table, codes_t[0], axis=0, out=acc)
                    else:
                        np.take(table, codes_t[j], axis=0, out=tmp)
                        acc += tmp
                np.multiply(acc, -two, out=acc)
                acc += self._buf_base[members][:, None]
                est = np.ascontiguousarray(acc.T)
                est += centroid_cmp[block][
                    local_rows, cluster
                ][:, None]
                keep = min(t, size)
                if keep == size:
                    local = np.broadcast_to(np.arange(size), est.shape)
                    local_est = est
                elif keep <= _ITER_ARGMIN_MAX:
                    rr = np.arange(r)
                    local = np.empty((r, keep), dtype=np.int64)
                    local_est = np.empty((r, keep), dtype=self._dtype)
                    for i in range(keep):
                        best = np.argmin(est, axis=1)
                        local[:, i] = best
                        local_est[:, i] = est[rr, best]
                        if i + 1 < keep:
                            est[rr, best] = np.inf
                else:
                    local = np.argpartition(est, kth=keep - 1, axis=1)[
                        :, :keep
                    ]
                    local_est = np.take_along_axis(est, local, axis=1)
                slots = flat_slots[segment][:, None] + np.arange(keep)
                pool_est[local_rows[:, None], slots] = local_est
                pool_idx[local_rows[:, None], slots] = members[local]
            keep_t = min(t, pool_est.shape[1])
            part = np.argpartition(pool_est, kth=keep_t - 1, axis=1)[
                :, :keep_t
            ]
            part_est = np.take_along_axis(pool_est, part, axis=1)
            part_idx = np.take_along_axis(pool_idx, part, axis=1)
            if self.rerank:
                dist, idx = self._exact_rerank(
                    queries[block], part_idx, k
                )
            else:
                order = np.argsort(part_est, axis=1)[:, :k]
                est_k = np.take_along_axis(part_est, order, axis=1)
                np.maximum(est_k, self._dtype.type(0.0), out=est_k)
                dist = np.sqrt(est_k, dtype=np.float64)
                idx = np.take_along_axis(part_idx, order, axis=1)
            out_dist[block] = dist
            out_idx[block] = idx
        return out_dist, out_idx

    def _exact_rerank(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-score candidates through the exact corpus kernel, take k.

        Padding slots (index -1) are forced to inf so they can never be
        selected; the probe-widening rule guarantees at least ``k``
        valid candidates per query.
        """
        kernel = self._rerank_kernel()
        out_dist = np.empty((len(queries), k))
        out_idx = np.empty((len(queries), k), dtype=np.int64)
        # Blocked over queries so the gathered candidate rows stay
        # bounded by block_size * t * d values.  Per-pair arithmetic is
        # one matvec per query row, so blocking cannot change the
        # reported values.
        for block in iter_blocks(len(queries), self.block_size):
            cand = candidates[block]
            valid = cand >= 0
            safe = np.where(valid, cand, 0)
            cmp = kernel.pair_comparable(queries[block], safe)
            cmp[~valid] = np.inf
            part = np.argpartition(cmp, kth=k - 1, axis=1)[:, :k]
            part_cmp = np.take_along_axis(cmp, part, axis=1)
            order = np.argsort(part_cmp, axis=1)
            top = np.take_along_axis(part, order, axis=1)
            idx = np.take_along_axis(cand, top, axis=1)
            # Reported distances come from a fresh k-wide kernel call:
            # BLAS summation order depends on the matvec width, so
            # re-evaluating at the final width makes the outputs
            # bit-identical to what any caller gets from
            # ``kernel.pair_distances(queries, idx)``.  The
            # re-evaluated values can disagree with the selection pass
            # by an ulp, so rows are re-sorted on them to keep the
            # output ordered.
            dist = kernel.pair_distances(queries[block], idx)
            resort = np.argsort(dist, axis=1, kind="stable")
            out_dist[block] = np.take_along_axis(dist, resort, axis=1)
            out_idx[block] = np.take_along_axis(idx, resort, axis=1)
        return out_dist, out_idx

    def recall_against_exact(
        self, queries: np.ndarray, exact_indices: np.ndarray, k: int = 1
    ) -> float:
        """Fraction of exact k-nearest neighbors recovered by this index."""
        _, approx = self.kneighbors(queries, k=k)
        exact_indices = np.asarray(exact_indices)
        if exact_indices.ndim == 1:
            exact_indices = exact_indices[:, None]
        hits = np.sum(approx[:, :, None] == exact_indices[:, None, :])
        return float(hits) / (len(queries) * k)
