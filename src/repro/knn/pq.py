"""Product quantization: compressed ANN search with ADC and exact re-rank.

The paper's scaling story ("millions of users", Johnson et al.'s
billion-scale systems) ends at an index whose corpus no longer fits in
memory uncompressed.  Product quantization (Jégou et al., TPAMI 2011)
is the standard answer: split each d-dimensional vector into ``m``
subvectors, vector-quantize every subspace with its own ``ksub``-word
codebook, and store each corpus point as ``m`` uint8 codes — a 16–32x
memory reduction at typical settings.

Search never decompresses.  For a query, an **asymmetric distance
computation** (ADC) table of shape ``(m, ksub)`` holds the squared
distance from each query subvector to every codeword; the distance to a
coded point is then ``m`` table lookups and adds, accumulated by fancy
indexing — no full distance matrix, no per-candidate BLAS call.

Two layers live here:

- :class:`ProductQuantizer` — the codec: per-subspace k-means codebooks
  (trained via :class:`repro.knn.kmeans.KMeans`), vectorized
  ``encode``/``decode``, per-query ADC ``lookup_tables`` and the
  table-accumulation primitive :meth:`ProductQuantizer.adc_distances`.
- :class:`IVFPQIndex` — backend ``"ivf_pq"``: a coarse inverted file
  (like :class:`repro.knn.ivf.IVFFlatIndex`) whose lists store
  *residual*-encoded codes.  Probed lists are scanned with ADC tables
  only, then the best ``rerank`` candidates per query are re-scored
  exactly through the corpus-bound
  :class:`~repro.knn.kernels.DistanceKernel`
  (:meth:`~repro.knn.kernels.DistanceKernel.pair_comparable`), so the
  reported neighbors carry true distances and recall@1 stays near
  exact.  The index is append-only (:meth:`IVFPQIndex.partial_fit`):
  new rows are encoded straight into their coarse lists, and a
  configurable refresh policy retrains the codebooks once the corpus
  has outgrown the training snapshot.

Residual ADC uses the precomputed-term decomposition of the FAISS line
of systems: with coarse centroid ``C`` and decoded residual ``r``,

``|q - (C + r)|^2 = |q - C|^2 + sum_j (|r_j|^2 + 2<C_j, r_j>) - 2 sum_j <q_j, r_j>``

The first term is the coarse probe distance (already computed), the
middle term is query-independent (folded into a per-point constant at
encode time), and only the last term — one ``(m, ksub)`` table of
query-codeword dot products per query, shared across *all* probed
lists — is paid at search time.

Two further tiers ride on top of that scan (the FAISS fast-scan idea,
Johnson et al. 2019, adapted to numpy's gather primitives):

- **Packed fast-scan** (``pq_packed=True``, requires ``pq_nbits=4``):
  codes are stored two per byte in a ``((m+1)//2, capacity)`` layout,
  and per-(query, list) lookup tables are quantized to uint8 with a
  per-query scale/bias.  Adjacent subspace tables are combined into one
  256-entry uint16 table indexed directly by the packed byte, so each
  *pair* of subspaces costs a single contiguous row-take — half the
  gathers of the float path on a table that is 8x smaller, with a
  uint16 accumulator instead of a float one.  Selection is pruned,
  not partitioned: each query carries a sorted running top-``t`` pool
  whose worst estimate maps (exactly, per list — estimates are affine
  in the accumulator) to an integer bound, so a scanned list costs one
  vectorized uint16 compare and only the few survivors are converted
  back to float estimates and merged under the (estimate, index)
  total order.  The exact re-rank stage then restores true distances,
  which is why the packed scan requires ``rerank > 0`` (with
  ``rerank == 0`` the index falls back bit-compatibly to the float
  ADC scan, whose estimates are reportable).
- **Sharded scanning** (``shards > 1`` or a
  :class:`~repro.core.engine.ShardedScanExecutor`): inverted lists are
  partitioned round-robin (list ``c`` belongs to shard ``c % shards``)
  and each query batch becomes one scan task per shard, with list
  payloads published as shared-memory blocks through the
  :class:`~repro.transforms.store.EmbeddingStore` so process workers
  scan them zero-copy.  See :mod:`repro.knn.sharding` for why results
  are bit-identical for any shard count, including 1.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import KNNIndex, register_backend
from repro.knn.kernels import iter_blocks, make_kernel, resolve_dtype
from repro.knn.kmeans import KMeans
from repro.knn.sharding import (
    SCAN_ROW_BLOCK,
    merge_shard_pools,
    owned_clusters,
    pair_slots,
    probe_pairs,
    publish_payload,
    resolve_payload,
    select_pool_topk,
    unpublish_owner,
)
from repro.rng import SeedLike, ensure_rng

#: Per-chunk ADC working-set target, in compute-dtype entries.  The
#: accumulator of a chunk is ``chunk x max_list_size``; keeping it (plus
#: the chunk's lookup tables) around L2 size roughly doubles the gather
#: throughput versus large DRAM-resident chunks.
_SCAN_TARGET = 100_000

#: For keep-counts at or below this, per-list top selection uses
#: iterated argmin sweeps (branch-free SIMD reductions) instead of
#: argpartition — same trade-off as the IVF-Flat scan.
_ITER_ARGMIN_MAX = 8

#: Per-chunk working-set target for the packed fast-scan, in uint16
#: accumulator entries.  The packed tier prefers much larger chunks
#: than the float scan: its selection is a threshold compare instead of
#: a per-list argpartition, so per-segment Python dispatch — not cache
#: residency — is the marginal cost, and wide chunks amortize it while
#: the uint16 accumulator keeps the traffic half the float scan's.
_FASTSCAN_TARGET = 1_600_000


def pack_codes_t(codes_t: np.ndarray) -> np.ndarray:
    """Pack a transposed 4-bit code matrix two codes per byte.

    ``codes_t`` has shape ``(m, n)`` (subspace-major, the inverted-list
    scan layout); the result has shape ``((m + 1) // 2, n)`` uint8 with
    byte ``t`` holding ``codes_t[2t] | codes_t[2t+1] << 4``.  An odd
    trailing subspace occupies the low nibble with a zero high nibble.
    Every code must be < 16.
    """
    codes_t = np.asarray(codes_t)
    m, n = codes_t.shape
    lo = codes_t[0::2].astype(np.uint8)
    packed = lo.copy()
    hi = codes_t[1::2].astype(np.uint8)
    packed[: len(hi)] |= hi << 4
    return np.ascontiguousarray(packed)


def unpack_codes_t(packed: np.ndarray, m: int) -> np.ndarray:
    """Inverse of :func:`pack_codes_t`: ``(m, n)`` intp codes.

    intp output feeds ``np.take`` directly — the float ADC fallback of
    a packed index unpacks each probed list on the fly through this.
    """
    packed = np.asarray(packed)
    out = np.empty((m, packed.shape[1]), dtype=np.intp)
    out[0::2] = packed & np.uint8(0x0F)
    out[1::2] = packed[: m // 2] >> 4
    return out


def _quantize_tables(
    tables: np.ndarray, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize per-(query, list) ADC tables to uint8 for the fast scan.

    ``tables`` is ``(r, m, ksub)`` float; returns ``(qt, scale, bias)``
    where ``qt`` is ``(r, m, 16)`` uint8 (zero-padded past ``ksub``),
    and for every query row ``est ≈ scale * sum_j qt[j, code_j] +
    bias`` with ``bias = sum_j min_c tables[j, c]`` and a per-row scale
    spanning the largest shifted entry over 255 quantization steps.
    The approximation only *ranks* candidates — survivors are re-scored
    exactly — so 8 bits of per-entry resolution suffice.
    """
    r, m, ksub = tables.shape
    mins = tables.min(axis=2)
    bias = mins.sum(axis=1)
    shifted = tables - mins[:, :, None]
    scale = shifted.max(axis=(1, 2)) / dtype.type(255.0)
    zero = scale <= 0
    if np.any(zero):
        scale = np.where(zero, dtype.type(1.0), scale)
    qt = np.zeros((r, m, 16), dtype=np.uint8)
    np.floor_divide(
        shifted, scale[:, None, None], out=shifted
    )
    qt[:, :, :ksub] = np.minimum(shifted, dtype.type(255.0)).astype(np.uint8)
    return qt, scale, bias


def _packed_accumulate(qt: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """Accumulate quantized tables over packed codes: ``(r, size)`` uint16.

    The fast-scan inner loop: adjacent subspace tables are combined
    into one 256-entry uint16 table indexed by the raw packed byte
    (``hi * 16 + lo``), so each byte row of the code matrix costs a
    single contiguous ``np.take`` — two subspaces per gather.  All pair
    tables are built in one broadcast (rather than per byte row) and
    transposed together into gather layout.  With entries <= 255 and
    ``m <= 256`` subspaces the uint16 accumulator cannot overflow
    (bound ``255 * m``).
    """
    r, m, _ = qt.shape
    size = packed.shape[1]
    qt16 = qt.astype(np.uint16)
    half = m // 2
    if half:
        pairs = (
            qt16[:, 1 : 2 * half : 2, :, None]
            + qt16[:, 0 : 2 * half : 2, None, :]
        ).reshape(r, half, 256)
        tables = np.ascontiguousarray(pairs.transpose(1, 2, 0))
    acc = np.empty((size, r), dtype=np.uint16)
    tmp = np.empty((size, r), dtype=np.uint16)
    for byte_row in range(packed.shape[0]):
        if byte_row < half:
            table = tables[byte_row]
        else:  # odd trailing subspace: low nibble only
            table = np.ascontiguousarray(qt16[:, m - 1, :].T)
        if byte_row == 0:
            np.take(table, packed[0], axis=0, out=acc)
        else:
            np.take(table, packed[byte_row], axis=0, out=tmp)
            acc += tmp
    return np.ascontiguousarray(acc.T)


def _keep_smallest(
    est: np.ndarray, keep: int, sentinel
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row smallest-``keep`` selection (may overwrite ``est``).

    Same strategy ladder as the flat scan: full lists pass through,
    tiny keeps use iterated argmin sweeps, the rest argpartition.
    Selection is deterministic for identical inputs, which is all the
    sharded tier needs — per-list inputs never depend on shard count.
    """
    r, size = est.shape
    if keep >= size:
        return np.broadcast_to(np.arange(size), est.shape), est
    if keep <= _ITER_ARGMIN_MAX:
        rr = np.arange(r)
        local = np.empty((r, keep), dtype=np.int64)
        local_est = np.empty((r, keep), dtype=est.dtype)
        for i in range(keep):
            best = np.argmin(est, axis=1)
            local[:, i] = best
            local_est[:, i] = est[rr, best]
            if i + 1 < keep:
                est[rr, best] = sentinel
        return local, local_est
    local = np.argpartition(est, kth=keep - 1, axis=1)[:, :keep]
    return local, np.take_along_axis(est, local, axis=1)


def _packed_scan_update(
    qdot_rows: np.ndarray,
    precomp_list: np.ndarray,
    centroid_col: np.ndarray,
    packed: np.ndarray,
    members: np.ndarray,
    local_rows: np.ndarray,
    top_est: np.ndarray,
    top_idx: np.ndarray,
    t: int,
    dtype: np.dtype,
) -> None:
    """Fast-scan one (query rows, list) segment into the running pools.

    The packed tier's replacement for pool-scatter-then-select: each
    query keeps a sorted running top-``t`` ``(estimate, index)`` pool
    (``top_est``/``top_idx``, updated in place), and every list scan
    prunes against the pool's current worst estimate *before* any
    selection work.  Because estimates are an exact affine function of
    the uint16 accumulator for a given (query, list) — ``est = acc *
    scale + offset`` with ``scale > 0`` — the float threshold maps to
    an integer accumulator bound, so pruning is a single vectorized
    uint16 compare over the list.  Survivors are folded in under the
    (estimate, index) total order via :func:`select_pool_topk`.

    Every reduction here is *exact* with respect to that total order:
    pruned entries have estimates strictly above the pool's t-th best
    (the bound carries a +1 slack so float rounding can only keep
    extra candidates, never drop a winner), and merges are full
    lexicographic selections.  The final pools therefore do not depend
    on list visit order, query chunking, or how lists are partitioned
    across shards — the bit-identity argument of
    :mod:`repro.knn.sharding` for the packed tier.
    """
    two = dtype.type(2.0)
    r = len(local_rows)
    size = packed.shape[1]
    keep = min(t, size)
    tables = precomp_list[None, :, :] - two * qdot_rows
    qt, scale, bias = _quantize_tables(tables, dtype)
    acc16 = _packed_accumulate(qt, packed)  # (r, size)
    offset = bias + centroid_col
    tau = top_est[local_rows, t - 1]
    # Accumulator-domain threshold (+1 slack for float rounding; inf
    # tau — pool not yet full — keeps everything).
    with np.errstate(invalid="ignore"):
        a_lim = np.floor(
            (tau.astype(np.float64) - offset) / scale
        ) + 1.0
    hi = np.iinfo(np.uint16).max
    lim = np.where(
        np.isfinite(a_lim), np.clip(a_lim, 0, hi), hi
    ).astype(np.uint16)
    mask = acc16 <= lim[:, None]
    counts = np.count_nonzero(mask, axis=1)
    # Rows whose threshold is still loose (early lists) fall back to a
    # value-partition bound at the keep-th smallest accumulator: ties
    # at the bound are kept, so the reduction stays exact.
    big = counts > max(4 * keep, 64)
    if np.any(big):
        bound = np.partition(acc16[big], keep - 1, axis=1)[:, keep - 1]
        mask[big] = acc16[big] <= np.minimum(lim[big], bound)[:, None]
    flat = np.flatnonzero(mask.ravel())
    if len(flat) == 0:
        return
    rows_c = flat // size
    cols_c = flat - rows_c * size
    accv = acc16[rows_c, cols_c]
    estv = accv.astype(dtype) * scale[rows_c] + offset[rows_c]
    counts = np.bincount(rows_c, minlength=r)
    width = int(counts.max())
    starts = np.searchsorted(rows_c, np.arange(r))
    rank = np.arange(len(rows_c)) - starts[rows_c]
    comb_est = np.full((r, t + width), np.inf, dtype=dtype)
    comb_idx = np.full((r, t + width), -1, dtype=np.int64)
    comb_est[:, :t] = top_est[local_rows]
    comb_idx[:, :t] = top_idx[local_rows]
    comb_est[rows_c, t + rank] = estv
    comb_idx[rows_c, t + rank] = members[cols_c]
    new_est, new_idx = select_pool_topk(comb_est, comb_idx, t)
    top_est[local_rows] = new_est
    top_idx[local_rows] = new_idx


def _effective_m(dim: int, requested: int) -> int:
    """Largest divisor of ``dim`` not exceeding the requested ``m``.

    Subspaces must tile the dimensionality exactly; clamping to a
    divisor (rather than raising) keeps the backend usable across a
    catalog whose transforms emit arbitrary output dims.
    """
    for m in range(min(requested, dim), 0, -1):
        if dim % m == 0:
            return m
    return 1


class ProductQuantizer:
    """Per-subspace k-means codec over fixed-dimension rows.

    Parameters
    ----------
    m:
        Requested number of subspaces.  ``fit`` clamps it to the largest
        divisor of the data dimensionality not exceeding the request and
        persists the effective value (codes are one uint8 per subspace).
    nbits:
        Bits per code, 4 or 8; the per-subspace codebook holds
        ``2**nbits`` words (clamped to the training-set size).  Only 4
        admits the packed fast-scan layout (two codes per byte); 8
        maximizes codebook resolution on the unpacked float ADC path.
    seed:
        Seeds the per-subspace k-means (each subspace gets its own
        deterministic child stream).
    dtype:
        Compute dtype for all distance arithmetic ("float32"/"float64";
        ``None`` keeps strict float64).  Codebooks are stored in this
        dtype.
    max_iterations:
        Lloyd iteration cap per subspace codebook.
    points_per_codeword:
        Codebooks are trained on a deterministic subsample of at most
        ``ksub * points_per_codeword`` rows (the FAISS convention):
        k-means cost scales with the training-set size while codebook
        quality saturates quickly, so training on the full corpus buys
        nothing but wall-clock.  ``None`` trains on everything.
    """

    def __init__(
        self,
        m: int = 8,
        nbits: int = 8,
        seed: SeedLike = 0,
        dtype=None,
        max_iterations: int = 25,
        points_per_codeword: int | None = 64,
    ):
        if m < 1:
            raise DataValidationError(f"m must be >= 1, got {m}")
        if nbits not in (4, 8):
            raise DataValidationError(
                f"nbits must be 4 (16-word codebooks; two codes pack per "
                f"byte, enabling the packed fast-scan) or 8 (256-word "
                f"codebooks, one code per byte, unpacked float ADC only), "
                f"got {nbits}"
            )
        self._requested_m = m
        self.m = m
        self.nbits = nbits
        self.ksub = 1 << nbits
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self._seed = seed
        self.max_iterations = max_iterations
        self.points_per_codeword = points_per_codeword
        self.dsub: int | None = None
        #: ``(m, ksub, dsub)`` codebooks in the compute dtype.
        self.codebooks: np.ndarray | None = None
        #: ``(m, ksub)`` squared codeword norms (compute dtype).
        self.codeword_sq: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self.codebooks is not None

    @property
    def dim(self) -> int:
        if self.dsub is None:
            raise DataValidationError("quantizer is not fitted")
        return self.m * self.dsub

    @property
    def code_bytes_per_row(self) -> int:
        """Bytes one encoded row occupies (one uint8 per subspace)."""
        return self.m

    def fit(self, x: np.ndarray) -> "ProductQuantizer":
        """Train the per-subspace codebooks on ``x`` (shape ``(n, d)``)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) == 0:
            raise DataValidationError("cannot fit a quantizer on no rows")
        # Effective geometry: m divides d, ksub fits the training set.
        self.m = _effective_m(x.shape[1], self._requested_m)
        self.dsub = x.shape[1] // self.m
        self.ksub = min(1 << self.nbits, len(x))
        rng = ensure_rng(self._seed)
        if self.points_per_codeword is not None:
            sample = min(len(x), self.ksub * self.points_per_codeword)
            if sample < len(x):
                x = x[rng.choice(len(x), size=sample, replace=False)]
        streams = rng.integers(0, 2**63 - 1, size=self.m, dtype=np.int64)
        codebooks = np.empty(
            (self.m, self.ksub, self.dsub), dtype=self._dtype
        )
        for j in range(self.m):
            sub = x[:, j * self.dsub : (j + 1) * self.dsub]
            km = KMeans(
                self.ksub,
                max_iterations=self.max_iterations,
                seed=int(streams[j]),
                dtype=self.dtype,
            ).fit(sub)
            codebooks[j] = np.asarray(km.centroids, dtype=self._dtype)
        self.codebooks = codebooks
        self.codeword_sq = np.sum(codebooks * codebooks, axis=2)
        return self

    def _check_rows(self, x: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise DataValidationError("quantizer is not fitted")
        x = np.asarray(x, dtype=self._dtype)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise DataValidationError(
                f"expected rows of shape (*, {self.dim}), got {x.shape}"
            )
        return x

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Quantize rows to a ``(n, m)`` uint8 code matrix."""
        x = self._check_rows(x)
        codes = np.empty((len(x), self.m), dtype=np.uint8)
        if len(x) == 0:
            return codes
        for j in range(self.m):
            sub = x[:, j * self.dsub : (j + 1) * self.dsub]
            kernel = make_kernel("euclidean", sub, dtype=self.dtype)
            nearest, _ = kernel.nearest_among(self.codebooks[j])
            codes[:, j] = nearest
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, d)`` rows from a uint8 code matrix."""
        if not self.fitted:
            raise DataValidationError("quantizer is not fitted")
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.m:
            raise DataValidationError(
                f"expected codes of shape (*, {self.m}), got {codes.shape}"
            )
        out = np.empty((len(codes), self.dim), dtype=self._dtype)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[
                j, codes[:, j]
            ]
        return out

    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(nq, m, ksub)`` squared sub-distances.

        ``tables[q, j, c]`` is the squared euclidean distance between
        query ``q``'s ``j``-th subvector and codeword ``c`` of subspace
        ``j``; summing one entry per subspace reproduces the squared
        distance to the decoded point exactly.
        """
        queries = self._check_rows(queries)
        sub = queries.reshape(len(queries), self.m, self.dsub)
        dots = np.einsum("nmd,mkd->nmk", sub, self.codebooks)
        sub_sq = np.sum(sub * sub, axis=2)
        two = self._dtype.type(2.0)
        tables = sub_sq[:, :, None] + self.codeword_sq[None, :, :] - two * dots
        np.maximum(tables, self._dtype.type(0.0), out=tables)
        return tables

    def adc_distances(
        self, tables: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Accumulate ADC tables over a code matrix: ``(nq, n)`` squared.

        Pure table arithmetic — one fancy-indexed gather and add per
        subspace, never touching the original vectors.
        """
        tables = np.asarray(tables)
        codes = np.asarray(codes)
        if tables.ndim != 3 or tables.shape[1] != self.m:
            raise DataValidationError(
                f"tables must have shape (nq, {self.m}, ksub), "
                f"got {tables.shape}"
            )
        if codes.ndim != 2 or codes.shape[1] != self.m:
            raise DataValidationError(
                f"codes must have shape (n, {self.m}), got {codes.shape}"
            )
        out = np.zeros((len(tables), len(codes)), dtype=tables.dtype)
        for j in range(self.m):
            out += tables[:, j, :][:, codes[:, j]]
        return out


@register_backend("ivf_pq")
class IVFPQIndex(KNNIndex):
    """IVF-PQ: inverted file over residual product-quantized codes.

    Search runs in three stages: (1) coarse probing orders the
    partitions by centroid distance, (2) the probed lists are scanned
    with per-query ADC tables over the stored uint8 codes (no
    decompression), and (3) the best ``rerank`` candidates are
    re-scored exactly through the corpus-bound
    :class:`~repro.knn.kernels.DistanceKernel`, which restores
    near-exact recall@1 and makes the reported distances true
    distances.

    Parameters
    ----------
    nlist:
        Coarse partitions; clamped to the corpus size at fit.
    nprobe:
        Partitions scanned per query (widened per query when the probed
        lists hold fewer than ``k`` candidates).
    pq_m:
        Requested PQ subspaces (clamped to a divisor of the coded dim).
    pq_nbits:
        Bits per PQ code (codebook size ``2**pq_nbits``).
    pq_dim:
        When set, residuals are first projected onto a ``pq_dim``-
        dimensional orthonormal basis (randomized range finder over a
        training sample — the PCA/OPQ-style transform production PQ
        pipelines prepend) and the codebooks quantize the *projected*
        residuals.  This keeps the per-subspace dimensionality small
        (the regime where ``2**pq_nbits`` codewords quantize well) on
        wide embeddings, without touching the scan cost: ADC still
        accumulates ``pq_m`` table lookups per candidate.  The ADC
        estimate remains the exact distance to the reconstructed point
        ``C + P r̂``; only the discarded orthogonal complement adds
        ranking noise, which the exact re-rank absorbs.  ``None``
        (default) quantizes raw residuals.
    rerank:
        Candidates re-scored exactly per query; ``0`` disables the
        re-rank stage and reports ADC-estimated distances.
    pq_packed:
        Store codes packed two per byte and scan with quantized uint8
        lookup tables (the fast-scan path; see the module docstring).
        Requires ``pq_nbits=4``.  The packed scan only *ranks* — it
        needs the exact re-rank stage to report distances, so with
        ``rerank=0`` the index transparently falls back to the float
        ADC scan (unpacking lists on the fly), bit-compatible with an
        unpacked index.
    shards:
        Inverted-list shards.  List ``c`` belongs to shard
        ``c % shards``; each query batch scans shards independently
        (through ``scan_executor`` when given, inline otherwise) and
        merges the per-shard pools under the deterministic
        ``(estimate, index)`` order — results are bit-identical for
        any shard count, including 1.
    scan_executor:
        Optional :class:`~repro.core.engine.ShardedScanExecutor`
        running shard tasks on worker processes.  Without one, shard
        tasks run inline (useful for determinism tests; no speedup).
    store:
        Optional sharing-enabled
        :class:`~repro.transforms.store.EmbeddingStore`; shard payloads
        are published into its hot tier as
        :class:`~repro.transforms.store.SharedArrayRef` blocks so
        executor workers scan them zero-copy.  Without one, payloads
        ship by pickle (correct, slower).
    refresh_factor:
        Codebook refresh policy for :meth:`partial_fit`: once the corpus
        reaches ``refresh_factor`` times the size it was last trained
        on, coarse and PQ codebooks are retrained on the full corpus and
        every point re-encoded.  ``None`` (or ``<= 1``) disables
        refreshes.
    seed:
        Seeds the coarse quantizer and the PQ codebooks.
    block_size:
        Query rows per exact re-rank block.
    dtype:
        Compute dtype for all distance arithmetic ("float32"/"float64";
        ``None`` keeps strict float64).
    """

    #: :class:`~repro.knn.progressive.ProgressiveOneNN` keeps ONE
    #: instance of a backend advertising this and appends each training
    #: batch instead of rebuilding an index per batch.
    supports_progressive_append = True

    @property
    def exact_distances(self) -> bool:
        """Whether reported distances are exact (re-rank on) or ADC
        estimates (``rerank == 0``).  Estimates are not comparable
        across codebook refreshes, so streaming consumers must replace
        — not min-merge — cached state built from them."""
        return self.rerank > 0

    def __init__(
        self,
        nlist: int = 32,
        nprobe: int = 8,
        pq_m: int = 8,
        pq_nbits: int = 8,
        pq_dim: int | None = None,
        rerank: int = 32,
        pq_packed: bool = False,
        shards: int = 1,
        scan_executor=None,
        store=None,
        refresh_factor: float | None = 2.0,
        seed: SeedLike = 0,
        block_size: int = 2048,
        dtype=None,
    ):
        if nlist < 1:
            raise DataValidationError("nlist must be >= 1")
        if nprobe < 1:
            raise DataValidationError("nprobe must be >= 1")
        if rerank < 0:
            raise DataValidationError("rerank must be >= 0")
        if pq_dim is not None and pq_dim < 1:
            raise DataValidationError("pq_dim must be >= 1")
        if shards < 1:
            raise DataValidationError(f"shards must be >= 1, got {shards}")
        if pq_packed and pq_nbits != 4:
            raise DataValidationError(
                f"pq_packed requires pq_nbits=4 (two 4-bit codes per "
                f"byte); pq_nbits={pq_nbits} stores one code per byte "
                f"and only supports the unpacked float ADC scan"
            )
        self._requested_nlist = nlist
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self._requested_nprobe = self.nprobe
        self.pq_m = pq_m
        self.pq_nbits = pq_nbits
        self.pq_dim = pq_dim
        self.rerank = rerank
        self.pq_packed = bool(pq_packed)
        self.shards = int(shards)
        self.refresh_factor = refresh_factor
        self.block_size = block_size
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self._seed = seed
        self.pq = ProductQuantizer(pq_m, pq_nbits, seed=seed, dtype=dtype)
        self.num_refreshes = 0
        self._scan_executor = scan_executor
        self._store = store
        # Publication identity: one owner string per index instance, so
        # concurrent indexes sharing one store never collide, plus a
        # finalizer releasing the publications when the index dies.
        self._share_owner = f"listshard-{os.urandom(6).hex()}"
        self._unpublish_finalizer = None
        self._reset_storage()

    def _reset_storage(self) -> None:
        self._buf_x: np.ndarray | None = None  # raw corpus (re-rank/refresh)
        self._buf_y: np.ndarray | None = None
        self._buf_codes: np.ndarray | None = None  # uint8 (n, m)
        self._buf_base: np.ndarray | None = None  # ADC constant per row
        self._size = 0
        self._trained_size = 0
        self._assign: np.ndarray | None = None  # coarse list per row
        # Per-list storage uses amortized-doubling buffers (capacity >=
        # size), like the flat row buffers, so a stream of small
        # appends costs O(n) copying in total: _list_buffers[c] holds
        # member ids, _list_codes_buffers[c] the member codes
        # transposed to (m, capacity) intp — the layout that makes the
        # ADC gather one contiguous row-take per subspace, with no
        # per-element index conversion on the hot path.
        self._list_sizes_arr: np.ndarray | None = None
        self._list_buffers: list[np.ndarray] = []
        self._list_codes_buffers: list[np.ndarray] = []
        # Packed layout replaces the intp buffers entirely: 16x smaller
        # ((m+1)//2 uint8 bytes per point vs m intp words).
        self._list_packed_buffers: list[np.ndarray] = []
        # Shard content versions: a shard republishes its payload only
        # when an append or retrain touched one of its lists.
        self._version_counter = 0
        self._shard_versions = np.zeros(max(1, self.shards), dtype=np.int64)
        self._payload_cache: dict[int, tuple[int, dict]] = {}
        self._coarse: KMeans | None = None
        self._centroid_kernel = None
        self._corpus_kernel = None
        self._precomp: np.ndarray | None = None  # (nlist, m, ksub)
        self._projection: np.ndarray | None = None  # (d, pq_dim), orthonormal

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_fitted(self) -> int:
        return self._size

    @property
    def _x(self) -> np.ndarray | None:
        return None if self._buf_x is None else self._buf_x[: self._size]

    @property
    def _y(self) -> np.ndarray | None:
        return None if self._buf_y is None else self._buf_y[: self._size]

    @property
    def codes(self) -> np.ndarray | None:
        """The uint8 code matrix ``(num_fitted, m)`` (read-only view)."""
        if self._buf_codes is None:
            return None
        view = self._buf_codes[: self._size]
        view.flags.writeable = False
        return view

    def memory_stats(self) -> dict[str, float]:
        """Compressed-vs-raw corpus accounting, in bytes.

        ``compression_ratio`` compares the raw corpus footprint (at the
        compute dtype) against everything the compressed **scan path**
        touches per query: codes, codebooks, coarse centroids, the
        per-point ADC constants and the transposed scan index.  Note
        the raw rows themselves stay resident (``raw_bytes``): the
        exact re-rank stage and the codebook-refresh policy both read
        them, so the ratio describes per-query memory traffic and what
        must stay cache-hot — not a reduction of total process memory.
        A deployment that drops the raw rows must run with
        ``rerank=0`` and ``refresh_factor=None`` and decode from codes.
        """
        if self._size == 0:
            raise DataValidationError("index is not fitted")
        raw = float(self._x.nbytes)
        codes = float(self.codes.nbytes)
        codebooks = float(self.pq.codebooks.nbytes + self._precomp.nbytes)
        centroids = float(self._centroid_kernel.bound.nbytes)
        base = float(self._buf_base[: self._size].nbytes)
        bytes_per_point = (
            (self.pq.m + 1) // 2  # packed: two 4-bit codes per byte
            if self.pq_packed
            else self.pq.m * np.dtype(np.intp).itemsize
        )
        scan = float(bytes_per_point * int(self._list_sizes_arr.sum()))
        if self._projection is not None:
            codebooks += float(self._projection.nbytes)
        compressed = codes + codebooks + centroids + base + scan
        return {
            "raw_bytes": raw,
            "code_bytes": codes,
            "codebook_bytes": codebooks,
            "centroid_bytes": centroids,
            "adc_constant_bytes": base,
            "scan_index_bytes": scan,
            "compressed_bytes": compressed,
            "compression_ratio": raw / compressed,
        }

    # ------------------------------------------------------------------
    # Fit / append
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "IVFPQIndex":
        """Train coarse + PQ codebooks on ``(x, y)`` and encode it."""
        x, y = self._validate_batch(x, y)
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        self._reset_storage()
        self._append_raw(x, y)
        self._train()
        return self

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> "IVFPQIndex":
        """Append a batch: encode-on-append, refresh codebooks by policy.

        New rows are assigned to their coarse list and residual-encoded
        with the *current* codebooks.  Once the corpus reaches
        ``refresh_factor`` times its last training snapshot, everything
        is retrained and re-encoded (the refresh is what keeps recall
        from decaying as the distribution of appended rows drifts from
        the snapshot the codebooks saw).
        """
        x, y = self._validate_batch(x, y)
        if len(x) == 0:
            return self
        if self._size == 0:
            return self.fit(x, y)
        if x.shape[1] != self._buf_x.shape[1]:
            raise DataValidationError(
                f"dimension mismatch: corpus has {self._buf_x.shape[1]} "
                f"features, batch has {x.shape[1]}"
            )
        start = self._size
        self._append_raw(x, y)
        if (
            self.refresh_factor is not None
            and self.refresh_factor > 1.0
            and self._size >= self.refresh_factor * self._trained_size
        ):
            self._train()
            self.num_refreshes += 1
        else:
            self._encode_rows(start, self._size)
            if self._corpus_kernel is not None:
                # Extend the re-rank kernel in O(appended): cached
                # norms for existing rows are reused, so a stream of
                # small pulls never pays a full-corpus rebind.
                self._corpus_kernel = self._corpus_kernel.extend(self._x)
        return self

    def _validate_batch(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=self._dtype)
        y = np.asarray(y)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise DataValidationError(
                f"x and y length mismatch: {len(x)} vs {len(y)}"
            )
        return x, y.astype(np.int64)

    def _append_raw(self, x: np.ndarray, y: np.ndarray) -> None:
        """Append rows/labels into the doubling buffers (codes later)."""
        needed = self._size + len(x)
        if self._buf_x is None:
            capacity = len(x)
            self._buf_x = np.empty((capacity, x.shape[1]), dtype=self._dtype)
            self._buf_y = np.empty(capacity, dtype=np.int64)
        elif needed > len(self._buf_x):
            capacity = max(needed, 2 * len(self._buf_x))
            for name in ("_buf_x", "_buf_y", "_buf_codes", "_buf_base"):
                old = getattr(self, name)
                if old is None:
                    continue
                grown = np.empty(
                    (capacity,) + old.shape[1:], dtype=old.dtype
                )
                grown[: self._size] = old[: self._size]
                setattr(self, name, grown)
            if self._assign is not None and needed > len(self._assign):
                grown = np.empty(capacity, dtype=np.int64)
                grown[: self._size] = self._assign[: self._size]
                self._assign = grown
        self._buf_x[self._size : needed] = x
        self._buf_y[self._size : needed] = y
        self._size = needed

    def _train(self) -> None:
        """(Re)train coarse + PQ codebooks on the full corpus, re-encode."""
        corpus = self._x
        self.nlist = min(self._requested_nlist, len(corpus))
        self.nprobe = min(self._requested_nprobe, self.nlist)
        # Coarse centroids, like the PQ codebooks, are trained on a
        # bounded subsample (FAISS convention, ~256 points/centroid);
        # assignment of the full corpus is a single predict pass.
        sample = min(len(corpus), self.nlist * 256)
        coarse_train = corpus
        if sample < len(corpus):
            picks = ensure_rng(self._seed).choice(
                len(corpus), size=sample, replace=False
            )
            coarse_train = corpus[picks]
        self._coarse = KMeans(
            self.nlist, seed=self._seed, dtype=self.dtype
        ).fit(coarse_train)
        centroids = np.asarray(self._coarse.centroids, dtype=self._dtype)
        self._centroid_kernel = make_kernel(
            "euclidean", centroids, dtype=self.dtype
        )
        assignment = self._coarse.predict(corpus)
        residuals = corpus - centroids[assignment]
        self._projection = self._fit_projection(residuals)
        coded_residuals = self._to_code_space(residuals)
        self.pq = ProductQuantizer(
            self.pq_m, self.pq_nbits, seed=self._seed, dtype=self.dtype
        ).fit(coded_residuals)
        # Query-independent ADC term per (list, subspace, codeword):
        # |r|^2 + 2 <C_j, r_j>, folded per corpus point into _buf_base.
        # With a projection P the reconstruction is C + P r̂ and the
        # same decomposition holds with C and q both mapped through
        # P^T (P has orthonormal columns).
        sub_centroids = self._to_code_space(centroids).reshape(
            self.nlist, self.pq.m, self.pq.dsub
        )
        centroid_dots = np.einsum(
            "lmd,mkd->lmk", sub_centroids, self.pq.codebooks
        )
        two = self._dtype.type(2.0)
        self._precomp = self.pq.codeword_sq[None, :, :] + two * centroid_dots
        capacity = len(self._buf_x)
        self._buf_codes = np.empty((capacity, self.pq.m), dtype=np.uint8)
        self._buf_base = np.empty(capacity, dtype=self._dtype)
        self._assign = np.empty(capacity, dtype=np.int64)
        self._assign[: self._size] = assignment
        codes = self.pq.encode(coded_residuals)
        self._buf_codes[: self._size] = codes
        self._buf_base[: self._size] = self._adc_base(assignment, codes)
        members_by_list = [
            np.flatnonzero(assignment == cluster)
            for cluster in range(self.nlist)
        ]
        self._list_sizes_arr = np.array(
            [len(members) for members in members_by_list], dtype=np.int64
        )
        self._list_buffers = members_by_list
        if self.pq_packed:
            self._list_codes_buffers = []
            self._list_packed_buffers = [
                pack_codes_t(codes[members].T)
                for members in members_by_list
            ]
        else:
            self._list_codes_buffers = [
                np.ascontiguousarray(codes[members].T, dtype=np.intp)
                for members in members_by_list
            ]
            self._list_packed_buffers = []
        self._trained_size = self._size
        self._corpus_kernel = None
        self._invalidate_shards()

    def _fit_projection(self, residuals: np.ndarray) -> np.ndarray | None:
        """Orthonormal ``(d, pq_dim)`` basis via a randomized range finder.

        One power iteration over a bounded sample approximates the top
        right-singular subspace of the residual matrix — the PCA-style
        rotation production PQ pipelines prepend — at GEMM cost.
        """
        if self.pq_dim is None or self.pq_dim >= residuals.shape[1]:
            return None
        rng = ensure_rng(self._seed)
        sample = residuals
        cap = max(4 * self.pq_dim, 16_384)
        if len(sample) > cap:
            sample = sample[rng.choice(len(sample), size=cap, replace=False)]
        probe = rng.normal(size=(residuals.shape[1], self.pq_dim)).astype(
            self._dtype
        )
        span = sample.T @ (sample @ probe)
        basis, _ = np.linalg.qr(span.astype(np.float64))
        return np.ascontiguousarray(basis, dtype=self._dtype)

    def _to_code_space(self, rows: np.ndarray) -> np.ndarray:
        """Map full-space rows into the space the codebooks quantize."""
        if self._projection is None:
            return rows
        return rows @ self._projection

    def _adc_base(
        self, assignment: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Per-row query-independent ADC constant (see module docstring)."""
        rows = np.arange(self.pq.m)
        return self._precomp[assignment[:, None], rows[None, :], codes].sum(
            axis=1, dtype=self._dtype
        )

    def _encode_rows(self, start: int, stop: int) -> None:
        """Residual-encode appended rows into their coarse lists."""
        rows = self._buf_x[start:stop]
        centroids = self._centroid_kernel.bound
        assignment, _ = make_kernel(
            "euclidean", rows, dtype=self.dtype
        ).nearest_among(centroids)
        residuals = rows - centroids[assignment]
        codes = self.pq.encode(self._to_code_space(residuals))
        self._assign[start:stop] = assignment
        self._buf_codes[start:stop] = codes
        self._buf_base[start:stop] = self._adc_base(assignment, codes)
        new_ids = np.arange(start, stop)
        touched = np.unique(assignment)
        for cluster in touched:
            picked = assignment == cluster
            self._append_to_list(
                int(cluster),
                new_ids[picked],
                np.ascontiguousarray(codes[picked].T, dtype=np.intp),
            )
        # Appends route to the owning shard: only the shards whose
        # lists grew bump their version (and so republish their
        # payload); untouched shards keep serving the published blocks.
        self._invalidate_shards(touched)

    def _append_to_list(
        self, cluster: int, member_ids: np.ndarray, codes_t: np.ndarray
    ) -> None:
        """Amortized-doubling append into one inverted list's buffers."""
        size = int(self._list_sizes_arr[cluster])
        needed = size + len(member_ids)
        members = self._list_buffers[cluster]
        code_rows = (
            (self.pq.m + 1) // 2 if self.pq_packed else self.pq.m
        )
        code_buffers = (
            self._list_packed_buffers
            if self.pq_packed
            else self._list_codes_buffers
        )
        if needed > len(members):
            capacity = max(needed, 2 * len(members))
            grown = np.empty(capacity, dtype=np.int64)
            grown[:size] = members[:size]
            self._list_buffers[cluster] = members = grown
            grown_codes = np.empty(
                (code_rows, capacity), dtype=code_buffers[cluster].dtype
            )
            grown_codes[:, :size] = code_buffers[cluster][:, :size]
            code_buffers[cluster] = grown_codes
        members[size:needed] = member_ids
        if self.pq_packed:
            code_buffers[cluster][:, size:needed] = pack_codes_t(codes_t)
        else:
            code_buffers[cluster][:, size:needed] = codes_t
        self._list_sizes_arr[cluster] = needed

    def _invalidate_shards(self, clusters: np.ndarray | None = None) -> None:
        """Bump shard versions after content changed (all, or owners of
        ``clusters``); a full invalidation also drops stale publications
        eagerly (shard geometry may have changed across a retrain)."""
        self._version_counter += 1
        if clusters is None:
            self._shard_versions = np.full(
                max(1, self.shards), self._version_counter, dtype=np.int64
            )
            self._payload_cache.clear()
            if self._store is not None:
                self._store.unpublish(self._share_owner)
        else:
            shards = np.unique(np.asarray(clusters) % max(1, self.shards))
            self._shard_versions[shards] = self._version_counter
            for shard in shards:
                self._payload_cache.pop(int(shard), None)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _rerank_kernel(self):
        if self._corpus_kernel is None:
            self._corpus_kernel = make_kernel(
                "euclidean", self._x, dtype=self.dtype
            )
        return self._corpus_kernel

    def kneighbors(
        self, queries: np.ndarray, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate ``(distances, indices)`` of the k nearest points.

        Probing is widened per query until the probed lists hold at
        least ``k`` candidates, so the result always contains ``k``
        valid entries.  With ``rerank > 0`` the reported distances are
        exact (:class:`DistanceKernel` arithmetic) for the returned
        neighbors; with ``rerank == 0`` they are ADC estimates.
        """
        if self._size == 0:
            raise DataValidationError("index is not fitted")
        queries = np.asarray(queries, dtype=self._dtype)
        if queries.ndim != 2:
            raise DataValidationError("queries must be 2-D")
        if k < 1:
            raise DataValidationError(f"k must be >= 1, got {k}")
        if k > self._size:
            raise DataValidationError(
                f"k={k} exceeds corpus size {self._size}"
            )
        n = len(queries)
        out_dist = np.empty((n, k))
        out_idx = np.empty((n, k), dtype=np.int64)
        if n == 0:
            return out_dist, out_idx
        centroid_cmp = self._centroid_kernel.comparable_from(queries)
        probe_order = np.argsort(centroid_cmp, axis=1)
        list_sizes = self._list_sizes_arr
        counts = np.cumsum(list_sizes[probe_order], axis=1)
        depth = np.maximum(self.nprobe, 1 + np.argmax(counts >= k, axis=1))
        # Queries mapped into code space once; the per-query ADC tables
        # (query-codeword dot products, shared across every probed list
        # by the residual decomposition) are built chunk-by-chunk inside
        # the scan so they stay cache-resident.
        sub = self._to_code_space(queries).reshape(
            n, self.pq.m, self.pq.dsub
        )
        if self._sharded:
            return self._sharded_search(
                queries, sub, centroid_cmp, probe_order, depth, k
            )
        for probes in np.unique(depth):
            rows = np.flatnonzero(depth == probes)
            dist, idx = self._adc_probed(
                queries[rows],
                sub[rows],
                centroid_cmp[rows],
                probe_order[rows, :probes],
                k,
                list_sizes,
            )
            out_dist[rows] = dist
            out_idx[rows] = idx
        return out_dist, out_idx

    def _adc_probed(
        self,
        queries: np.ndarray,
        sub: np.ndarray,
        centroid_cmp: np.ndarray,
        probe_clusters: np.ndarray,
        k: int,
        list_sizes: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """ADC scan of the probed lists + exact re-rank of the survivors.

        Cluster-major like the IVF-Flat scan: (query, probed-cluster)
        pairs are regrouped by cluster so each list's code matrix is
        scanned with the chunk's cache-resident lookup tables, its ADC
        distances accumulated by fancy-indexing, and each list's best
        ``t = max(k, rerank)`` entries land in an inf-padded semifinal
        pool per query.
        """
        if self._use_packed_scan:
            return self._packed_probed(
                queries, sub, centroid_cmp, probe_clusters, k, list_sizes
            )
        g = len(queries)
        p = probe_clusters.shape[1]
        t = max(k, min(self.rerank, self._size)) if self.rerank else k
        out_dist = np.empty((g, k))
        out_idx = np.empty((g, k), dtype=np.int64)
        two = self._dtype.type(2.0)
        max_size = int(list_sizes.max()) if len(list_sizes) else 1
        chunk = max(16, min(g, _SCAN_TARGET // max(1, max_size, p * t)))
        for block in iter_blocks(g, chunk):
            b = block.stop - block.start
            clusters = probe_clusters[block]
            # ADC tables for this chunk only: b x m x ksub stays within
            # cache next to the accumulator below.
            qdot = np.einsum(
                "nmd,mkd->nmk", sub[block], self.pq.codebooks
            )
            pool_est = np.full((b, p * t), np.inf, dtype=self._dtype)
            pool_idx = np.full((b, p * t), -1, dtype=np.int64)
            flat_clusters = clusters.ravel()
            flat_rows = np.repeat(np.arange(b), p)
            flat_slots = np.tile(np.arange(p) * t, b)
            by_cluster = np.argsort(flat_clusters, kind="stable")
            boundaries = np.flatnonzero(
                np.diff(flat_clusters[by_cluster])
            ) + 1
            for segment in np.split(by_cluster, boundaries):
                cluster = int(flat_clusters[segment[0]])
                size = int(list_sizes[cluster])
                if size == 0:
                    continue
                members = self._list_buffers[cluster][:size]
                local_rows = flat_rows[segment]
                r = len(local_rows)
                keep = min(t, size)
                if self.pq_packed:
                    codes_t = unpack_codes_t(
                        self._list_packed_buffers[cluster][:, :size],
                        self.pq.m,
                    )
                else:
                    codes_t = self._list_codes_buffers[cluster][:, :size]
                # est = |q - C|^2 + base - 2 sum_j qdot[q, j, code].
                # Accumulated transposed — (size, r) — so each
                # subspace is ONE contiguous row-take from a
                # (ksub, r) table: the per-candidate cost is m row
                # copies, independent of the vector dimensionality.
                seg_qdot = qdot[local_rows]  # (r, m, ksub) gather
                acc = np.empty((size, r), dtype=self._dtype)
                tmp = np.empty((size, r), dtype=self._dtype)
                for j in range(self.pq.m):
                    table = np.ascontiguousarray(seg_qdot[:, j, :].T)
                    if j == 0:
                        np.take(table, codes_t[0], axis=0, out=acc)
                    else:
                        np.take(table, codes_t[j], axis=0, out=tmp)
                        acc += tmp
                np.multiply(acc, -two, out=acc)
                acc += self._buf_base[members][:, None]
                est = np.ascontiguousarray(acc.T)
                est += centroid_cmp[block][
                    local_rows, cluster
                ][:, None]
                local, local_est = _keep_smallest(est, keep, np.inf)
                slots = flat_slots[segment][:, None] + np.arange(keep)
                pool_est[local_rows[:, None], slots] = local_est
                pool_idx[local_rows[:, None], slots] = members[local]
            # Semifinal selection under the sharded tier's (estimate,
            # index) total order — the same rule `select_pool_topk`
            # applies in shard pools and the coordinator merge, so the
            # single-process path stays bit-identical to any shard
            # count even when duplicate points tie exactly.
            part_est, part_idx = select_pool_topk(pool_est, pool_idx, t)
            if self.rerank:
                dist, idx = self._exact_rerank(
                    queries[block], part_idx, k
                )
            else:
                est_k = part_est[:, :k]
                idx = part_idx[:, :k]
                np.maximum(est_k, self._dtype.type(0.0), out=est_k)
                dist = np.sqrt(est_k, dtype=np.float64)
            out_dist[block] = dist
            out_idx[block] = idx
        return out_dist, out_idx

    def _packed_probed(
        self,
        queries: np.ndarray,
        sub: np.ndarray,
        centroid_cmp: np.ndarray,
        probe_clusters: np.ndarray,
        k: int,
        list_sizes: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pruned packed fast-scan of the probed lists + exact re-rank.

        Same cluster-major regrouping as the float scan, but instead of
        scattering per-list top selections into an inf-padded pool,
        every query carries a sorted running top-``t`` pool and each
        list is pruned against it (:func:`_packed_scan_update`): after
        the first couple of lists the threshold is tight and a list
        costs its uint16 accumulation plus one vectorized compare —
        no per-list argpartition.  Chunks are much wider than the
        float scan's (:data:`_FASTSCAN_TARGET`) since per-segment
        dispatch, not cache residency, dominates here.

        Only called with ``_use_packed_scan`` (which implies
        ``rerank > 0``), so the survivors always go through the exact
        re-rank and the quantized estimates are never reported.
        """
        g = len(queries)
        p = probe_clusters.shape[1]
        t = max(k, min(self.rerank, self._size))
        out_dist = np.empty((g, k))
        out_idx = np.empty((g, k), dtype=np.int64)
        max_size = int(list_sizes.max()) if len(list_sizes) else 1
        chunk = max(16, min(g, _FASTSCAN_TARGET // max(1, max_size)))
        for block in iter_blocks(g, chunk):
            b = block.stop - block.start
            clusters = probe_clusters[block]
            qdot = np.einsum(
                "nmd,mkd->nmk", sub[block], self.pq.codebooks
            )
            top_est = np.full((b, t), np.inf, dtype=self._dtype)
            top_idx = np.full((b, t), -1, dtype=np.int64)
            flat_clusters = clusters.ravel()
            flat_rows = np.repeat(np.arange(b), p)
            by_cluster = np.argsort(flat_clusters, kind="stable")
            boundaries = np.flatnonzero(
                np.diff(flat_clusters[by_cluster])
            ) + 1
            cmp_block = centroid_cmp[block]
            for segment in np.split(by_cluster, boundaries):
                cluster = int(flat_clusters[segment[0]])
                size = int(list_sizes[cluster])
                if size == 0:
                    continue
                local_rows = flat_rows[segment]
                _packed_scan_update(
                    qdot[local_rows],
                    self._precomp[cluster],
                    cmp_block[local_rows, cluster],
                    self._list_packed_buffers[cluster][:, :size],
                    self._list_buffers[cluster][:size],
                    local_rows,
                    top_est,
                    top_idx,
                    t,
                    self._dtype,
                )
            dist, idx = self._exact_rerank(queries[block], top_idx, k)
            out_dist[block] = dist
            out_idx[block] = idx
        return out_dist, out_idx

    # ------------------------------------------------------------------
    # Sharded scanning
    # ------------------------------------------------------------------

    @property
    def _sharded(self) -> bool:
        """Route through the shard scan (even for 1 shard with an
        executor, so executor transport is exercised identically)."""
        return self.shards > 1 or self._scan_executor is not None

    @property
    def _use_packed_scan(self) -> bool:
        """Packed fast-scan applies: packed storage, a re-rank stage to
        absorb quantization (``rerank=0`` must report float ADC
        estimates), and the uint16 accumulator's ``m <= 256`` bound."""
        return self.pq_packed and self.rerank > 0 and self.pq.m <= 256

    def _sharded_search(
        self,
        queries: np.ndarray,
        sub: np.ndarray,
        centroid_cmp: np.ndarray,
        probe_order: np.ndarray,
        depth: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fan the probed lists out per owning shard and merge.

        Each task scans whole lists over the *same* (query, list) row
        sets any shard count would produce, returns its local top-``t``
        pool under the (estimate, index) total order, and the merge
        applies the same order — hence bit-identical results for any
        shard count (see :mod:`repro.knn.sharding`).
        """
        t = max(k, min(self.rerank, self._size)) if self.rerank else k
        rows, clusters = probe_pairs(probe_order, depth)
        tasks = []
        for shard in range(self.shards):
            mask = clusters % self.shards == shard
            if not mask.any():
                continue
            # Query-side arrays are sliced to the shard's owned columns
            # — pure copies of shard-count-independent values, so the
            # arithmetic downstream is unaffected.
            owned = owned_clusters(self.nlist, shard, self.shards)
            tasks.append({
                "payload": self._shard_payload(shard),
                "store": self._store,
                "owner": self._share_owner,
                "sub": sub,
                "centroid_cmp": np.ascontiguousarray(
                    centroid_cmp[:, owned]
                ),
                "rows": rows[mask],
                "clusters": clusters[mask],
                "params": {
                    "n": len(queries),
                    "m": self.pq.m,
                    "t": t,
                    "dtype": self.dtype,
                    "packed": self._use_packed_scan,
                    "codebooks": self.pq.codebooks,
                    "precomp": np.ascontiguousarray(self._precomp[owned]),
                },
            })
        if self._scan_executor is not None:
            pools = self._scan_executor.map(_pq_shard_scan, tasks)
        else:
            pools = [_pq_shard_scan(task) for task in tasks]
        est, idx = merge_shard_pools(pools, t)
        if self.rerank:
            return self._exact_rerank(queries, idx, k)
        est_k, idx_k = select_pool_topk(est, idx, k)
        np.maximum(est_k, self._dtype.type(0.0), out=est_k)
        return np.sqrt(est_k, dtype=np.float64), idx_k

    def _shard_payload(self, shard: int) -> dict:
        """List payload of one shard (owned-list-major concatenation).

        Cached per shard version, published through the store when one
        is attached — so repeated query batches reuse both the arrays
        and the shared segments, and appends republish only the shards
        they touched.
        """
        version = int(self._shard_versions[shard])
        cached = self._payload_cache.get(shard)
        if cached is not None and cached[0] == version:
            return cached[1]
        owned = owned_clusters(self.nlist, shard, self.shards)
        sizes = self._list_sizes_arr[owned]
        starts = np.zeros(len(owned), dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        total = int(sizes.sum())
        members = np.empty(total, dtype=np.int64)
        base = np.empty(total, dtype=self._dtype)
        code_rows = (
            (self.pq.m + 1) // 2 if self.pq_packed else self.pq.m
        )
        code_dtype = np.uint8 if self.pq_packed else np.intp
        codes = np.empty((code_rows, total), dtype=code_dtype)
        buffers = (
            self._list_packed_buffers
            if self.pq_packed
            else self._list_codes_buffers
        )
        for i, cluster in enumerate(owned):
            size = int(sizes[i])
            if size == 0:
                continue
            start = int(starts[i])
            ids = self._list_buffers[cluster][:size]
            members[start : start + size] = ids
            base[start : start + size] = self._buf_base[ids]
            codes[:, start : start + size] = buffers[cluster][:, :size]
        mapping = publish_payload(
            self._store,
            self._share_owner,
            shard,
            version,
            {"members": members, "codes": codes, "base": base},
        )
        if self._store is not None and self._unpublish_finalizer is None:
            self._unpublish_finalizer = weakref.finalize(
                self, unpublish_owner, weakref.ref(self._store),
                self._share_owner,
            )
        mapping = {
            **mapping, "owned": owned, "sizes": sizes, "starts": starts,
        }
        self._payload_cache[shard] = (version, mapping)
        return mapping

    def release_shards(self) -> None:
        """Drop published shard payloads (store segments) eagerly."""
        self._payload_cache.clear()
        if self._store is not None:
            self._store.unpublish(self._share_owner)

    def _exact_rerank(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-score candidates through the exact corpus kernel, take k.

        Padding slots (index -1) are forced to inf so they can never be
        selected; the probe-widening rule guarantees at least ``k``
        valid candidates per query.
        """
        kernel = self._rerank_kernel()
        out_dist = np.empty((len(queries), k))
        out_idx = np.empty((len(queries), k), dtype=np.int64)
        # Blocked over queries so the gathered candidate rows stay
        # bounded by block_size * t * d values.  Per-pair arithmetic is
        # one matvec per query row, so blocking cannot change the
        # reported values.
        for block in iter_blocks(len(queries), self.block_size):
            cand = candidates[block]
            valid = cand >= 0
            safe = np.where(valid, cand, 0)
            cmp = kernel.pair_comparable(queries[block], safe)
            cmp[~valid] = np.inf
            part = np.argpartition(cmp, kth=k - 1, axis=1)[:, :k]
            part_cmp = np.take_along_axis(cmp, part, axis=1)
            order = np.argsort(part_cmp, axis=1)
            top = np.take_along_axis(part, order, axis=1)
            idx = np.take_along_axis(cand, top, axis=1)
            # Reported distances come from a fresh k-wide kernel call:
            # BLAS summation order depends on the matvec width, so
            # re-evaluating at the final width makes the outputs
            # bit-identical to what any caller gets from
            # ``kernel.pair_distances(queries, idx)``.  The
            # re-evaluated values can disagree with the selection pass
            # by an ulp, so rows are re-sorted on them to keep the
            # output ordered.
            dist = kernel.pair_distances(queries[block], idx)
            resort = np.argsort(dist, axis=1, kind="stable")
            out_dist[block] = np.take_along_axis(dist, resort, axis=1)
            out_idx[block] = np.take_along_axis(idx, resort, axis=1)
        return out_dist, out_idx

    def recall_against_exact(
        self, queries: np.ndarray, exact_indices: np.ndarray, k: int = 1
    ) -> float:
        """Fraction of exact k-nearest neighbors recovered by this index."""
        _, approx = self.kneighbors(queries, k=k)
        exact_indices = np.asarray(exact_indices)
        if exact_indices.ndim == 1:
            exact_indices = exact_indices[:, None]
        hits = np.sum(approx[:, :, None] == exact_indices[:, None, :])
        return float(hits) / (len(queries) * k)


def _pq_shard_scan(task: dict) -> tuple[np.ndarray, np.ndarray]:
    """Top-level (picklable) shard task: ADC-scan the owned probed lists.

    Returns the shard's per-query top-``t`` pool ``(est, idx)`` under
    the (estimate, index) total order.  Every float op here depends
    only on (query set, list) — the full-batch ``qdot`` einsum, the
    whole-list accumulations, the fixed :data:`SCAN_ROW_BLOCK` query
    chunking — never on the shard count, which is what makes the merged
    result bit-identical for any sharding.
    """
    payload = resolve_payload(task["payload"], task["store"], task["owner"])
    params = task["params"]
    sub = task["sub"]
    # Query-side tables arrive sliced to the shard's owned clusters and
    # are indexed by owned-list position ``li`` below.
    centroid_cmp = task["centroid_cmp"]
    rows = task["rows"]
    clusters = task["clusters"]
    n = int(params["n"])
    m = int(params["m"])
    t = int(params["t"])
    packed = bool(params["packed"])
    codebooks = params["codebooks"]
    precomp = params["precomp"]
    dtype = resolve_dtype(params["dtype"])
    owned = payload["owned"]
    sizes = payload["sizes"]
    starts = payload["starts"]
    members = payload["members"]
    base = payload["base"]
    codes = payload["codes"]
    two = dtype.type(2.0)
    # The ADC tables are built over the full query batch — identical in
    # every shard (einsum's per-entry reduction order is row-count
    # independent), so per-list arithmetic cannot drift across shards.
    qdot = np.einsum("nmd,mkd->nmk", sub, codebooks)
    order = np.argsort(clusters, kind="stable")
    boundaries = np.flatnonzero(np.diff(clusters[order])) + 1
    if packed:
        # Running per-query pools, exactly as the single-process packed
        # scan: every reduction in _packed_scan_update is exact under
        # the (estimate, index) order, so the shard's final pool is the
        # (estimate, index) top-t of its owned probed lists no matter
        # how the scan is chunked.
        top_est = np.full((n, t), np.inf, dtype=dtype)
        top_idx = np.full((n, t), -1, dtype=np.int64)
        for segment in np.split(order, boundaries):
            cluster = int(clusters[segment[0]])
            li = int(np.searchsorted(owned, cluster))
            size = int(sizes[li])
            if size == 0:
                continue
            start = int(starts[li])
            for lo in range(0, len(segment), SCAN_ROW_BLOCK):
                block = segment[lo : lo + SCAN_ROW_BLOCK]
                local_rows = rows[block]
                _packed_scan_update(
                    qdot[local_rows],
                    precomp[li],
                    centroid_cmp[local_rows, li],
                    codes[:, start : start + size],
                    members[start : start + size],
                    local_rows,
                    top_est,
                    top_idx,
                    t,
                    dtype,
                )
        return top_est, top_idx
    slot_base, width = pair_slots(rows, n, t)
    pool_est = np.full((n, width), np.inf, dtype=dtype)
    pool_idx = np.full((n, width), -1, dtype=np.int64)
    for segment in np.split(order, boundaries):
        cluster = int(clusters[segment[0]])
        li = int(np.searchsorted(owned, cluster))
        size = int(sizes[li])
        if size == 0:
            continue
        start = int(starts[li])
        seg_members = members[start : start + size]
        seg_base = base[start : start + size]
        seg_codes = codes[:, start : start + size]
        for lo in range(0, len(segment), SCAN_ROW_BLOCK):
            block = segment[lo : lo + SCAN_ROW_BLOCK]
            local_rows = rows[block]
            r = len(local_rows)
            keep = min(t, size)
            if seg_codes.dtype == np.uint8:
                codes_t = unpack_codes_t(seg_codes, m)
            else:
                codes_t = seg_codes
            seg_qdot = qdot[local_rows]
            acc = np.empty((size, r), dtype=dtype)
            tmp = np.empty((size, r), dtype=dtype)
            for j in range(m):
                table = np.ascontiguousarray(seg_qdot[:, j, :].T)
                if j == 0:
                    np.take(table, codes_t[0], axis=0, out=acc)
                else:
                    np.take(table, codes_t[j], axis=0, out=tmp)
                    acc += tmp
            np.multiply(acc, -two, out=acc)
            acc += seg_base[:, None]
            est = np.ascontiguousarray(acc.T)
            est += centroid_cmp[local_rows, li][:, None]
            local, local_est = _keep_smallest(est, keep, np.inf)
            slots = slot_base[block][:, None] + np.arange(keep)
            pool_est[local_rows[:, None], slots] = local_est
            pool_idx[local_rows[:, None], slots] = seg_members[local]
    return select_pool_topk(pool_est, pool_idx, t)
