"""IVF-Flat: inverted-file approximate nearest neighbor search.

The paper's streaming formulation is "inspired by ideas for efficient
implementation of the nearest-neighbor search on hardware accelerators"
(Johnson et al., billion-scale similarity search).  The workhorse of
that line of systems is the IVF-Flat index: partition the corpus with a
coarse k-means quantizer, then search only the ``nprobe`` closest
partitions for each query.

Exactness degrades gracefully with ``nprobe``; at ``nprobe == nlist``
the index is exactly brute force.  The library's default estimators use
exact search (the datasets are small); this index exists for the
scalability path and is validated against brute force in the tests and
benchmarked for the recall/speed trade-off.

Search is fully vectorized: queries are grouped by probe depth, then
batched by probe-cluster group — every partition is scanned with one
dense BLAS distance block against its contiguous (list-major) vector
slice, scattered into a padded per-query candidate matrix, and top-k
selection uses ``argpartition``.  There is no per-query Python loop
anywhere on the hot path (see ``benchmarks/test_knn_hot_paths.py`` for
the measured speedup over the historical per-query implementation).
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import KNNIndex, register_backend
from repro.knn.kernels import iter_blocks, make_kernel, resolve_dtype
from repro.knn.kmeans import KMeans
from repro.knn.sharding import (
    merge_shard_pools,
    owned_clusters,
    pair_slots,
    probe_pairs,
    publish_payload,
    resolve_payload,
    select_pool_topk,
    unpublish_owner,
)
from repro.rng import SeedLike

#: Upper bound on the number of compute-dtype entries a per-cluster
#: distance block may hold; query groups are chunked to stay under it
#: (~64 MiB at float64, ~32 MiB at float32).
_GATHER_BUDGET = 8_000_000

#: For k at or below this, per-cluster top-k uses iterated argmin sweeps
#: (branch-free SIMD reductions) instead of argpartition.
_ITER_ARGMIN_MAX = 8


def _keep_smallest_sq(
    sq: np.ndarray, keep: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``keep`` smallest of a squared-distance block.

    The one per-list selection ladder, shared by the single-process
    scan and the shard workers so both make identical picks (including
    tie picks) from identical blocks: full pass-through when the list
    is no larger than ``keep``, iterated argmin sweeps (branch-free
    SIMD reductions, no index-array allocation) for tiny keeps, one
    argpartition otherwise.  May fill ``sq`` with inf in place.
    """
    size = sq.shape[1]
    if keep >= size:
        return np.broadcast_to(np.arange(size), sq.shape), sq
    if keep <= _ITER_ARGMIN_MAX:
        rr = np.arange(len(sq))
        local = np.empty((len(sq), keep), dtype=np.int64)
        local_sq = np.empty((len(sq), keep), dtype=sq.dtype)
        for j in range(keep):
            best = np.argmin(sq, axis=1)
            local[:, j] = best
            local_sq[:, j] = sq[rr, best]
            if j + 1 < keep:
                sq[rr, best] = np.inf
        return local, local_sq
    local = np.argpartition(sq, kth=keep - 1, axis=1)[:, :keep]
    return local, np.take_along_axis(sq, local, axis=1)


@register_backend("ivf")
class IVFFlatIndex(KNNIndex):
    """Approximate kNN via an inverted file over a k-means quantizer.

    Parameters
    ----------
    nlist:
        Number of coarse partitions (k-means clusters).  ``fit`` clamps
        it to the corpus size and persists the effective value.
    nprobe:
        Number of closest partitions scanned per query.
    seed:
        Seeds the quantizer training.
    block_size:
        Number of query rows per distance block on the full-scan path
        (``nprobe == nlist``); bounds memory exactly like the
        brute-force index.
    dtype:
        Compute dtype for all distance arithmetic ("float32" or
        "float64"); ``None`` (default) keeps the strict ``float64``
        path.  The corpus, its list-major copy and the cached
        per-cluster squared norms are all held in this dtype, so the
        float32 mode also halves the index's memory footprint.
    shards:
        Number of inverted-list shards (cluster ``c`` belongs to shard
        ``c % shards``).  Each probed query batch is scanned one task
        per shard and the shard pools are merged under the
        (distance, index) total order, so results are bit-identical
        for any shard count — see :mod:`repro.knn.sharding`.
    scan_executor:
        Optional :class:`~repro.core.engine.ShardedScanExecutor`; shard
        tasks run through its process pool instead of inline.  Setting
        it routes the scan through the sharded path even for one shard.
    store:
        Optional :class:`~repro.transforms.store.EmbeddingStore` used
        to publish shard payloads as shared-memory blocks, so executor
        workers scan the lists zero-copy.
    """

    def __init__(
        self,
        nlist: int = 16,
        nprobe: int = 4,
        seed: SeedLike = 0,
        block_size: int = 2048,
        dtype=None,
        shards: int = 1,
        scan_executor=None,
        store=None,
    ):
        if nlist < 1:
            raise DataValidationError("nlist must be >= 1")
        if nprobe < 1:
            raise DataValidationError("nprobe must be >= 1")
        if shards < 1:
            raise DataValidationError("shards must be >= 1")
        self._requested_nlist = nlist
        self._requested_nprobe = min(nprobe, nlist)
        self.nlist = nlist
        self.nprobe = self._requested_nprobe
        self.block_size = block_size
        self.dtype = dtype
        self._dtype = resolve_dtype(dtype)
        self._seed = seed
        self._quantizer: KMeans | None = None
        self._lists: list[np.ndarray] | None = None  # member indices
        self._members: np.ndarray | None = None  # corpus ids, list-major
        self._list_sizes: np.ndarray | None = None
        self._list_starts: np.ndarray | None = None  # offsets into _members
        self._x_by_list: np.ndarray | None = None  # corpus rows, list-major
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._corpus_kernel = None  # full-scan path, corpus norms cached
        self._centroid_kernel = None  # probe ordering, centroid norms cached
        self.shards = int(shards)
        self._scan_executor = scan_executor
        self._store = store
        self._share_owner = f"listshard-{os.urandom(6).hex()}"
        self._unpublish_finalizer = None
        self._shard_version = 0
        self._payload_cache: dict[int, tuple[int, dict]] = {}

    @property
    def num_fitted(self) -> int:
        return 0 if self._x is None else len(self._x)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "IVFFlatIndex":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2:
            raise DataValidationError("x must be 2-D")
        if len(x) != len(y):
            raise DataValidationError("x and y length mismatch")
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        # Persist the effective partition count: post-fit introspection
        # and the probe-widening bound must agree with the lists that
        # actually exist, not the requested ones.  Clamping starts from
        # the *configured* values so a refit on a larger corpus regains
        # the full requested partition count.
        self.nlist = min(self._requested_nlist, len(x))
        self.nprobe = min(self._requested_nprobe, self.nlist)
        self._quantizer = KMeans(
            self.nlist, seed=self._seed, dtype=self.dtype
        ).fit(x)
        assignment = self._quantizer.predict(x)
        self._lists = [
            np.flatnonzero(assignment == cluster)
            for cluster in range(self.nlist)
        ]
        self._list_sizes = np.array(
            [len(members) for members in self._lists], dtype=np.int64
        )
        self._members = np.concatenate(self._lists)
        self._list_starts = np.concatenate(
            ([0], np.cumsum(self._list_sizes[:-1]))
        )
        # The corpus and all derived state live in the compute dtype.
        # The corpus kernel (full-scan path) caches the corpus norms
        # once; the list-major copy reuses them, permuted, so each
        # partition's vectors AND norms are contiguous slices and
        # per-cluster distance blocks need no gather.
        self._x = np.asarray(x, dtype=self._dtype)
        self._corpus_kernel = make_kernel(
            "euclidean", self._x, dtype=self.dtype
        )
        self._x_by_list = self._x[self._members]
        self._sq_by_list = self._corpus_kernel.bound_norms_sq[self._members]
        self._centroid_kernel = make_kernel(
            "euclidean", self._quantizer.centroids, dtype=self.dtype
        )
        self._y = y
        # A refit replaces every list wholesale: retire cached shard
        # payloads and any published segments of the previous corpus.
        self._shard_version += 1
        self._payload_cache.clear()
        if self._store is not None:
            self._store.unpublish(self._share_owner)
        return self

    def kneighbors(
        self, queries: np.ndarray, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate ``(distances, indices)`` of the k nearest points.

        When fewer than ``k`` candidates fall in the probed partitions,
        the probe set is widened for those queries, so the result always
        contains ``k`` valid entries.
        """
        if self._quantizer is None or self._x is None:
            raise DataValidationError("index is not fitted")
        queries = np.asarray(queries, dtype=self._dtype)
        if queries.ndim != 2:
            raise DataValidationError("queries must be 2-D")
        if k > len(self._x):
            raise DataValidationError(
                f"k={k} exceeds corpus size {len(self._x)}"
            )
        n = len(queries)
        out_dist = np.empty((n, k))
        out_idx = np.empty((n, k), dtype=np.int64)
        if n == 0:
            return out_dist, out_idx
        # Query-side squared norms, computed once and reused by every
        # probe-depth group below (the centroid kernel holds the
        # centroid-side norms across calls).
        query_sq = np.sum(queries * queries, axis=1)
        centroid_cmp = self._centroid_kernel.comparable_from(
            queries, state=query_sq
        )
        probe_order = np.argsort(centroid_cmp, axis=1)
        # Cumulative candidate counts along each query's probe order give
        # the vectorized probe-widening rule: probe the configured
        # nprobe partitions, or as many more as it takes to reach k
        # candidates (the total over all partitions is the corpus, so a
        # sufficient depth always exists).
        counts = np.cumsum(self._list_sizes[probe_order], axis=1)
        depth = np.maximum(self.nprobe, 1 + np.argmax(counts >= k, axis=1))
        for probes in np.unique(depth):
            rows = np.flatnonzero(depth == probes)
            if probes == self.nlist:
                # Full scan: every partition probed — identical to brute
                # force, including tie behavior (same kernel computation
                # as the brute-force backend).
                dist, idx = self._corpus_kernel.topk(
                    queries[rows], k, block_size=self.block_size
                )
            elif self._sharded:
                dist, idx = self._sharded_search(
                    queries[rows],
                    query_sq[rows],
                    probe_order[rows, :probes],
                    k,
                )
            else:
                dist, idx = self._search_probed(
                    queries[rows],
                    query_sq[rows],
                    probe_order[rows, :probes],
                    k,
                )
            out_dist[rows] = dist
            out_idx[rows] = idx
        return out_dist, out_idx

    def _search_probed(
        self,
        queries: np.ndarray,
        query_sq: np.ndarray,
        probe_clusters: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k among each query's probed partitions, no Python per query.

        ``probe_clusters`` is ``(g, p)`` cluster ids; the caller's depth
        rule guarantees each query's probed partitions hold at least
        ``k`` candidates.  Queries are chunked so a per-cluster distance
        block stays within the memory budget; within a chunk every
        partition is scanned with one dense distance block and its k
        best entries land in that query's slots of a ``(b, p * k)``
        semifinal pool.
        """
        g, _ = queries.shape
        p = probe_clusters.shape[1]
        out_dist = np.empty((g, k))
        out_idx = np.empty((g, k), dtype=np.int64)
        two = self._dtype.type(2.0)
        # Both the per-cluster distance blocks (chunk x max_size) and the
        # semifinal pools (chunk x p*k) must fit the budget.
        max_size = int(self._list_sizes.max())
        chunk = max(1, min(g, _GATHER_BUDGET // max(1, max_size, p * k)))
        for block in iter_blocks(g, chunk):
            b = block.stop - block.start
            clusters = probe_clusters[block]  # (b, p)
            q = queries[block]
            q_sq = query_sq[block]
            # Per-query semifinal pools: the k best of each probed
            # partition (p * k slots, inf-padded) are enough to contain
            # the global top k.  Squared distances throughout; the
            # monotone sqrt is applied to the k winners only.
            pool_dist = np.full((b, p * k), np.inf, dtype=self._dtype)
            pool_idx = np.full((b, p * k), -1, dtype=np.int64)
            # Cluster-major batching: every (query, probed-cluster) pair,
            # regrouped by cluster, so each partition is scanned with ONE
            # dense distance block against its contiguous vector slice.
            flat_clusters = clusters.ravel()
            flat_rows = np.repeat(np.arange(b), p)
            flat_slots = np.tile(np.arange(p) * k, b)
            by_cluster = np.argsort(flat_clusters, kind="stable")
            boundaries = np.flatnonzero(
                np.diff(flat_clusters[by_cluster])
            ) + 1
            for segment in np.split(by_cluster, boundaries):
                cluster = int(flat_clusters[segment[0]])
                size = int(self._list_sizes[cluster])
                if size == 0:
                    continue
                start = int(self._list_starts[cluster])
                rows = flat_rows[segment]
                sq = (
                    q_sq[rows][:, None]
                    + self._sq_by_list[None, start : start + size]
                    - two * (q[rows] @ self._x_by_list[start : start + size].T)
                )
                keep = min(k, size)
                local, local_sq = _keep_smallest_sq(sq, keep)
                slots = flat_slots[segment][:, None] + np.arange(keep)
                pool_dist[rows[:, None], slots] = local_sq
                pool_idx[rows[:, None], slots] = self._members[start + local]
            # Final selection under the sharded tier's (distance, index)
            # total order — the same rule the shard pools and the
            # coordinator merge apply, so the single-process path stays
            # bit-identical to any shard count even when duplicate
            # points tie exactly.
            top_sq, top_idx = select_pool_topk(pool_dist, pool_idx, k)
            np.maximum(top_sq, self._dtype.type(0.0), out=top_sq)
            out_dist[block] = np.sqrt(top_sq, dtype=np.float64)
            out_idx[block] = top_idx
        return out_dist, out_idx

    # ------------------------------------------------------------------
    # Sharded scanning
    # ------------------------------------------------------------------

    @property
    def _sharded(self) -> bool:
        """Route through the shard scan (even for 1 shard with an
        executor, so executor transport is exercised identically)."""
        return self.shards > 1 or self._scan_executor is not None

    def _sharded_search(
        self,
        queries: np.ndarray,
        query_sq: np.ndarray,
        probe_clusters: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fan the probed lists out per owning shard and merge.

        Each task scans whole lists with the *same* query chunking and
        per-list selection ladder the single-process scan uses (the
        chunk size is computed here from shard-count-independent
        quantities and shipped with the task), so every squared
        distance — and every tie pick — is numerically identical to
        the unsharded scan; the merge applies the (distance, index)
        total order shared with :meth:`_search_probed`.
        """
        g = len(queries)
        p = probe_clusters.shape[1]
        rows, clusters = probe_pairs(
            probe_clusters, np.full(g, p, dtype=np.int64)
        )
        max_size = int(self._list_sizes.max())
        chunk = max(1, min(g, _GATHER_BUDGET // max(1, max_size, p * k)))
        tasks = []
        for shard in range(self.shards):
            mask = clusters % self.shards == shard
            if not mask.any():
                continue
            tasks.append({
                "payload": self._shard_payload(shard),
                "store": self._store,
                "owner": self._share_owner,
                "queries": queries,
                "query_sq": query_sq,
                "rows": rows[mask],
                "clusters": clusters[mask],
                "params": {"k": k, "chunk": chunk, "dtype": self.dtype},
            })
        if self._scan_executor is not None:
            pools = self._scan_executor.map(_flat_shard_scan, tasks)
        else:
            pools = [_flat_shard_scan(task) for task in tasks]
        top_sq, top_idx = merge_shard_pools(pools, k)
        np.maximum(top_sq, self._dtype.type(0.0), out=top_sq)
        return np.sqrt(top_sq, dtype=np.float64), top_idx

    def _shard_payload(self, shard: int) -> dict:
        """List payload of one shard (owned-list-major concatenation).

        Cached per fit version and published through the store when one
        is attached, so repeated query batches reuse both the arrays
        and the shared segments.
        """
        version = self._shard_version
        cached = self._payload_cache.get(shard)
        if cached is not None and cached[0] == version:
            return cached[1]
        owned = owned_clusters(self.nlist, shard, self.shards)
        sizes = self._list_sizes[owned]
        starts = np.zeros(len(owned), dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        total = int(sizes.sum())
        members = np.empty(total, dtype=np.int64)
        x = np.empty((total, self._x.shape[1]), dtype=self._dtype)
        sq = np.empty(total, dtype=self._sq_by_list.dtype)
        for i, cluster in enumerate(owned):
            size = int(sizes[i])
            if size == 0:
                continue
            dst = int(starts[i])
            src = int(self._list_starts[cluster])
            members[dst : dst + size] = self._members[src : src + size]
            x[dst : dst + size] = self._x_by_list[src : src + size]
            sq[dst : dst + size] = self._sq_by_list[src : src + size]
        mapping = publish_payload(
            self._store,
            self._share_owner,
            shard,
            version,
            {"members": members, "x": x, "sq": sq},
        )
        if self._store is not None and self._unpublish_finalizer is None:
            self._unpublish_finalizer = weakref.finalize(
                self, unpublish_owner, weakref.ref(self._store),
                self._share_owner,
            )
        mapping = {
            **mapping, "owned": owned, "sizes": sizes, "starts": starts,
        }
        self._payload_cache[shard] = (version, mapping)
        return mapping

    def release_shards(self) -> None:
        """Drop published shard payloads (store segments) eagerly."""
        self._payload_cache.clear()
        if self._store is not None:
            self._store.unpublish(self._share_owner)

    def recall_against_exact(
        self, queries: np.ndarray, exact_indices: np.ndarray, k: int = 1
    ) -> float:
        """Fraction of exact k-nearest neighbors recovered by this index."""
        _, approx = self.kneighbors(queries, k=k)
        exact_indices = np.asarray(exact_indices)
        if exact_indices.ndim == 1:
            exact_indices = exact_indices[:, None]
        hits = np.sum(approx[:, :, None] == exact_indices[:, None, :])
        return float(hits) / (len(queries) * k)


def _flat_shard_scan(task: dict) -> tuple[np.ndarray, np.ndarray]:
    """Scan one shard's probed lists; return its local top-k pool.

    Runs either inline or in an executor worker (the task's ``store``
    pickles into an attach handle, so shared payload blocks resolve
    zero-copy).  Query chunking uses the coordinator-supplied ``chunk``
    and the per-list ladder is :func:`_keep_smallest_sq` — both shared
    with the single-process scan, so every squared-distance block and
    every selection is computed on bit-identical inputs.
    """
    payload = resolve_payload(task["payload"], task["store"], task["owner"])
    queries = task["queries"]
    query_sq = task["query_sq"]
    rows = task["rows"]
    clusters = task["clusters"]
    params = task["params"]
    k = int(params["k"])
    chunk = int(params["chunk"])
    dtype = resolve_dtype(params["dtype"])
    two = dtype.type(2.0)
    owned = payload["owned"]
    sizes = payload["sizes"]
    starts = payload["starts"]
    members = payload["members"]
    x_by_list = payload["x"]
    sq_by_list = payload["sq"]
    g = len(queries)
    slot_base, width = pair_slots(rows, g, k)
    pool_dist = np.full((g, width), np.inf, dtype=dtype)
    pool_idx = np.full((g, width), -1, dtype=np.int64)
    for block in iter_blocks(g, chunk):
        # rows is ascending (probe pairs grouped by query), so each
        # query chunk is one contiguous pair span.
        lo = int(np.searchsorted(rows, block.start))
        hi = int(np.searchsorted(rows, block.stop))
        if lo == hi:
            continue
        brows = rows[lo:hi]
        bclusters = clusters[lo:hi]
        bbase = slot_base[lo:hi]
        by_cluster = np.argsort(bclusters, kind="stable")
        boundaries = np.flatnonzero(
            np.diff(bclusters[by_cluster])
        ) + 1
        for segment in np.split(by_cluster, boundaries):
            cluster = int(bclusters[segment[0]])
            li = int(np.searchsorted(owned, cluster))
            size = int(sizes[li])
            if size == 0:
                continue
            start = int(starts[li])
            seg_rows = brows[segment]
            sq = (
                query_sq[seg_rows][:, None]
                + sq_by_list[None, start : start + size]
                - two * (
                    queries[seg_rows] @ x_by_list[start : start + size].T
                )
            )
            keep = min(k, size)
            local, local_sq = _keep_smallest_sq(sq, keep)
            slots = bbase[segment][:, None] + np.arange(keep)
            pool_dist[seg_rows[:, None], slots] = local_sq
            pool_idx[seg_rows[:, None], slots] = members[start + local]
    return select_pool_topk(pool_dist, pool_idx, k)
