"""IVF-Flat: inverted-file approximate nearest neighbor search.

The paper's streaming formulation is "inspired by ideas for efficient
implementation of the nearest-neighbor search on hardware accelerators"
(Johnson et al., billion-scale similarity search).  The workhorse of
that line of systems is the IVF-Flat index: partition the corpus with a
coarse k-means quantizer, then search only the ``nprobe`` closest
partitions for each query.

Exactness degrades gracefully with ``nprobe``; at ``nprobe == nlist``
the index is exactly brute force.  The library's default estimators use
exact search (the datasets are small); this index exists for the
scalability path and is validated against brute force in the tests and
benchmarked for the recall/speed trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.kmeans import KMeans
from repro.knn.metrics import euclidean_distances
from repro.rng import SeedLike


class IVFFlatIndex:
    """Approximate kNN via an inverted file over a k-means quantizer.

    Parameters
    ----------
    nlist:
        Number of coarse partitions (k-means clusters).
    nprobe:
        Number of closest partitions scanned per query.
    seed:
        Seeds the quantizer training.
    """

    def __init__(self, nlist: int = 16, nprobe: int = 4, seed: SeedLike = 0):
        if nlist < 1:
            raise DataValidationError("nlist must be >= 1")
        if nprobe < 1:
            raise DataValidationError("nprobe must be >= 1")
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self._seed = seed
        self._quantizer: KMeans | None = None
        self._lists: list[np.ndarray] | None = None  # member indices
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    @property
    def num_fitted(self) -> int:
        return 0 if self._x is None else len(self._x)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "IVFFlatIndex":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2:
            raise DataValidationError("x must be 2-D")
        if len(x) != len(y):
            raise DataValidationError("x and y length mismatch")
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        nlist = min(self.nlist, len(x))
        self._quantizer = KMeans(nlist, seed=self._seed).fit(x)
        assignment = self._quantizer.predict(x)
        self._lists = [
            np.flatnonzero(assignment == cluster) for cluster in range(nlist)
        ]
        self._x, self._y = x, y
        return self

    def kneighbors(
        self, queries: np.ndarray, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate ``(distances, indices)`` of the k nearest points.

        When fewer than ``k`` candidates fall in the probed partitions,
        the probe set is widened for those queries, so the result always
        contains ``k`` valid entries.
        """
        if self._quantizer is None or self._x is None:
            raise DataValidationError("index is not fitted")
        queries = np.asarray(queries, dtype=np.float64)
        if k > len(self._x):
            raise DataValidationError(
                f"k={k} exceeds corpus size {len(self._x)}"
            )
        centroid_dist = euclidean_distances(
            queries, self._quantizer.centroids
        )
        probe_order = np.argsort(centroid_dist, axis=1)
        out_dist = np.empty((len(queries), k))
        out_idx = np.empty((len(queries), k), dtype=np.int64)
        for row, query in enumerate(queries):
            probes = self.nprobe
            while True:
                candidates = np.concatenate(
                    [self._lists[c] for c in probe_order[row, :probes]]
                )
                if len(candidates) >= k or probes >= len(self._lists):
                    break
                probes += 1
            dist = euclidean_distances(
                query[None, :], self._x[candidates]
            )[0]
            top = np.argsort(dist)[:k]
            out_dist[row] = dist[top]
            out_idx[row] = candidates[top]
        return out_dist, out_idx

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Approximate 1NN label prediction."""
        if self._y is None:
            raise DataValidationError("index is not fitted")
        _, idx = self.kneighbors(queries, k=1)
        return self._y[idx[:, 0]]

    def error(self, queries: np.ndarray, true_labels: np.ndarray) -> float:
        """Approximate 1NN misclassification rate."""
        true_labels = np.asarray(true_labels)
        return float(np.mean(self.predict(queries) != true_labels))

    def recall_against_exact(
        self, queries: np.ndarray, exact_indices: np.ndarray, k: int = 1
    ) -> float:
        """Fraction of exact k-nearest neighbors recovered by this index."""
        _, approx = self.kneighbors(queries, k=k)
        exact_indices = np.asarray(exact_indices)
        if exact_indices.ndim == 1:
            exact_indices = exact_indices[:, None]
        hits = 0
        for row in range(len(queries)):
            hits += len(
                set(approx[row].tolist()) & set(exact_indices[row].tolist())
            )
        return hits / (len(queries) * k)
