"""Exact brute-force kNN index.

Used directly by the estimator zoo (kNN-LOO, DE-kNN) and by the baseline
model zoo's kNN classifier.  For the streaming 1NN evaluation that Snoopy
itself performs, see :mod:`repro.knn.progressive`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.metrics import iter_blocks, pairwise_distances


class BruteForceKNN:
    """Exact kNN search over an in-memory corpus.

    Parameters
    ----------
    metric:
        "euclidean" or "cosine".
    block_size:
        Number of query rows processed per distance block; bounds memory.
    """

    def __init__(self, metric: str = "euclidean", block_size: int = 2048):
        self.metric = metric
        self.block_size = block_size
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    @property
    def num_fitted(self) -> int:
        """Number of corpus points currently indexed."""
        return 0 if self._x is None else len(self._x)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BruteForceKNN":
        """Index the corpus ``x`` with integer labels ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise DataValidationError(
                f"x and y length mismatch: {len(x)} vs {len(y)}"
            )
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        self._x = x
        self._y = y.astype(np.int64)
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._x is None or self._y is None:
            raise DataValidationError("index is not fitted; call fit() first")
        return self._x, self._y

    def kneighbors(
        self, queries: np.ndarray, k: int = 1, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the k nearest corpus points.

        With ``exclude_self=True`` the queries are assumed to be the
        fitted corpus itself and each point's zero-distance self match is
        removed (leave-one-out mode).
        """
        corpus, _ = self._require_fitted()
        queries = np.asarray(queries, dtype=np.float64)
        effective_k = k + 1 if exclude_self else k
        if effective_k > len(corpus):
            raise DataValidationError(
                f"k={k} (effective {effective_k}) exceeds corpus size {len(corpus)}"
            )
        n = len(queries)
        all_dist = np.empty((n, effective_k))
        all_idx = np.empty((n, effective_k), dtype=np.int64)
        for block in iter_blocks(n, self.block_size):
            dist = pairwise_distances(queries[block], corpus, metric=self.metric)
            if exclude_self:
                rows = np.arange(block.start, block.stop) - block.start
                dist[rows, np.arange(block.start, block.stop)] = np.inf
                part = np.argpartition(dist, kth=k - 1, axis=1)[:, :k]
            else:
                part = np.argpartition(dist, kth=effective_k - 1, axis=1)[
                    :, :effective_k
                ]
            part_dist = np.take_along_axis(dist, part, axis=1)
            order = np.argsort(part_dist, axis=1)
            sorted_idx = np.take_along_axis(part, order, axis=1)
            sorted_dist = np.take_along_axis(part_dist, order, axis=1)
            if exclude_self:
                all_dist[block, :k] = sorted_dist
                all_idx[block, :k] = sorted_idx
            else:
                all_dist[block] = sorted_dist
                all_idx[block] = sorted_idx
        if exclude_self:
            return all_dist[:, :k], all_idx[:, :k]
        return all_dist, all_idx

    def predict(self, queries: np.ndarray, k: int = 1) -> np.ndarray:
        """Majority-vote kNN prediction; ties go to the closest neighbor."""
        _, labels = self._require_fitted()
        dist, idx = self.kneighbors(queries, k=k)
        return _majority_vote(labels[idx], dist)

    def error(self, queries: np.ndarray, true_labels: np.ndarray, k: int = 1) -> float:
        """Misclassification rate of the kNN classifier on the queries."""
        true_labels = np.asarray(true_labels)
        if len(queries) != len(true_labels):
            raise DataValidationError(
                f"queries and labels length mismatch: "
                f"{len(queries)} vs {len(true_labels)}"
            )
        predictions = self.predict(queries, k=k)
        return float(np.mean(predictions != true_labels))

    def loo_error(self, k: int = 1) -> float:
        """Leave-one-out kNN error on the fitted corpus itself."""
        corpus, labels = self._require_fitted()
        dist, idx = self.kneighbors(corpus, k=k, exclude_self=True)
        predictions = _majority_vote(labels[idx], dist)
        return float(np.mean(predictions != labels))


def _majority_vote(neighbor_labels: np.ndarray, distances: np.ndarray) -> np.ndarray:
    """Vectorized majority vote; ties broken by the nearest neighbor's label.

    ``neighbor_labels`` has shape ``(n, k)`` ordered by increasing
    distance, so using ``np.argmax`` on the count matrix plus a
    nearest-first scan gives a deterministic, distance-aware tie-break.
    """
    n, k = neighbor_labels.shape
    if k == 1:
        return neighbor_labels[:, 0].copy()
    num_classes = int(neighbor_labels.max()) + 1
    counts = np.zeros((n, num_classes), dtype=np.int64)
    rows = np.repeat(np.arange(n), k)
    np.add.at(counts, (rows, neighbor_labels.ravel()), 1)
    max_count = counts.max(axis=1)
    predictions = np.empty(n, dtype=np.int64)
    for i in range(n):
        # Among tied classes, pick the one whose representative appears
        # earliest in the distance-sorted neighbor list.
        tied = np.flatnonzero(counts[i] == max_count[i])
        if len(tied) == 1:
            predictions[i] = tied[0]
        else:
            tied_set = set(tied.tolist())
            for label in neighbor_labels[i]:
                if label in tied_set:
                    predictions[i] = label
                    break
    return predictions
