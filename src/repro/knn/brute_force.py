"""Exact brute-force kNN index.

Used directly by the estimator zoo (kNN-LOO, DE-kNN) and by the baseline
model zoo's kNN classifier.  For the streaming 1NN evaluation that Snoopy
itself performs, see :mod:`repro.knn.progressive`.

Implements the :class:`repro.knn.base.KNNIndex` protocol and is the
default backend of :func:`repro.knn.base.make_index`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import (
    ExactSearchMixin,
    KNNIndex,
    majority_vote,
    register_backend,
)
from repro.knn.kernels import resolve_dtype


@register_backend("brute_force")
class BruteForceKNN(ExactSearchMixin, KNNIndex):
    """Exact kNN search over an in-memory corpus.

    Parameters
    ----------
    metric:
        "euclidean" or "cosine".
    block_size:
        Number of query rows processed per distance block; bounds memory.
    dtype:
        Compute dtype for the distance arithmetic ("float32" or
        "float64"); ``None`` (default) keeps the strict ``float64``
        path.  The corpus-side norms are cached at ``fit`` and reused
        across every ``kneighbors`` call.
    """

    def __init__(
        self, metric: str = "euclidean", block_size: int = 2048, dtype=None
    ):
        self.metric = metric
        self.block_size = block_size
        resolve_dtype(dtype)  # fail fast, not at the first search
        self.dtype = dtype
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._kernel_cache = None

    @property
    def num_fitted(self) -> int:
        """Number of corpus points currently indexed."""
        return 0 if self._x is None else len(self._x)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BruteForceKNN":
        """Index the corpus ``x`` with integer labels ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise DataValidationError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise DataValidationError(
                f"x and y length mismatch: {len(x)} vs {len(y)}"
            )
        if len(x) == 0:
            raise DataValidationError("cannot fit an empty corpus")
        self._x = x
        self._y = y.astype(np.int64)
        self._kernel_cache = None
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._x is None or self._y is None:
            raise DataValidationError("index is not fitted; call fit() first")
        return self._x, self._y

    # kneighbors / loo_error come from ExactSearchMixin; predict/error
    # from KNNIndex.


def _majority_vote(neighbor_labels: np.ndarray, distances: np.ndarray) -> np.ndarray:
    """Backward-compatible alias for :func:`repro.knn.base.majority_vote`.

    The ``distances`` argument is unused: the labels arrive sorted by
    distance, which is the only ordering information the vote needs.
    """
    del distances
    return majority_vote(neighbor_labels)
