"""Streaming 1NN evaluation over a growing training set.

This is the engine behind Snoopy's convergence curves and the bandit
arms of Section V.  A :class:`ProgressiveOneNN` is bound to a fixed test
set; training data arrives in batches via :meth:`partial_fit`, and after
every batch the exact 1NN test error is available in O(1) because the
evaluator maintains, per test point, the distance and label of its
current nearest neighbor.

Feeding batch after batch therefore costs O(batch x test) per step and
reproduces exactly the error the full brute-force computation would give
on the union of all batches seen so far.

The distance evaluation itself runs through a
:class:`repro.knn.kernels.DistanceKernel` bound to the test set at
construction: the test-side squared norms (euclidean) or normalized rows
(cosine) are computed exactly once, so the thousands of ``partial_fit``
calls of a feasibility study pay only for the batch side, and the
comparison state is kept in *comparable* units (squared euclidean
distance), deferring the ``sqrt`` to the rare callers that ask for true
distances.  ``dtype`` selects the compute precision; the default
``float64`` reproduces the historical results bit-for-bit, while
``float32`` roughly doubles throughput (see
``benchmarks/test_progressive_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import make_index
from repro.knn.kernels import make_kernel


@dataclass(frozen=True)
class CurvePoint:
    """One point of a 1NN convergence curve: error after ``n`` train samples."""

    train_size: int
    error: float


class ProgressiveOneNN:
    """Exact 1NN test error maintained incrementally over training batches.

    Parameters
    ----------
    test_x, test_y:
        The fixed test set (features and integer labels).
    metric:
        Distance metric, "euclidean" or "cosine".
    record_curve:
        When True (default), every :meth:`partial_fit` appends a
        :class:`CurvePoint` to :attr:`curve`.
    knn_backend:
        ``None`` (default) uses the built-in bound distance kernel per
        batch.  Otherwise a backend name for
        :func:`repro.knn.base.make_index` ("brute_force", "ivf",
        "ivf_pq", ...): the per-test nearest neighbor comes from 1NN
        queries against that backend, making the search substrate
        swappable.  Backends advertising ``supports_progressive_append``
        (the compressed "ivf_pq" index) are built **once** and fed each
        batch via ``partial_fit`` — encode-on-append into the coarse
        lists, codebooks refreshed by the index's own policy — so the
        corpus stays compressed across the whole stream; other backends
        are rebuilt per batch (exact per-batch search, which at typical
        bandit pull sizes is the fastest option).
    knn_backend_options:
        Extra constructor kwargs for the backend (e.g. ``pq_m``,
        ``pq_nbits``, ``nprobe``, ``rerank``, ``pq_packed``,
        ``shards`` for "ivf_pq").
    dtype:
        Compute dtype for the distance arithmetic ("float32" or
        "float64"); ``None`` (default) keeps the strict ``float64``
        path.
    scan_executor:
        Optional :class:`~repro.core.engine.ShardedScanExecutor`
        forwarded to sharded inverted-list backends ("ivf"/"ivf_pq")
        so their probe scans run on its process pool.  Passed as a
        separate parameter — not inside ``knn_backend_options`` —
        because the executor is process-local (never pickled with the
        options).  ``partial_fit`` appends interact cleanly with the
        executor: the index routes each appended point to the owning
        shard and republishes only the touched shard payloads.
    """

    def __init__(
        self,
        test_x: np.ndarray,
        test_y: np.ndarray,
        metric: str = "euclidean",
        record_curve: bool = True,
        knn_backend: str | None = None,
        knn_backend_options: dict | None = None,
        dtype=None,
        scan_executor=None,
    ):
        # np.array (not asarray): the evaluator owns private copies, so
        # relabel_test can never write through to the caller's arrays.
        # (A float32 kernel also copies on cast; float64 relies on this.)
        test_x = np.array(test_x, dtype=np.float64)
        test_y = np.array(test_y, dtype=np.int64)
        if test_x.ndim != 2:
            raise DataValidationError(f"test_x must be 2-D, got {test_x.shape}")
        if len(test_x) != len(test_y):
            raise DataValidationError(
                f"test_x and test_y length mismatch: {len(test_x)} vs {len(test_y)}"
            )
        if len(test_x) == 0:
            raise DataValidationError("test set must not be empty")
        self.metric = metric
        self.record_curve = record_curve
        self.knn_backend = knn_backend
        self.knn_backend_options = dict(knn_backend_options or {})
        self.dtype = dtype
        self._scan_executor = scan_executor
        self._kernel = make_kernel(metric, test_x, dtype=dtype)
        self._index = None
        self._index_y: np.ndarray | None = None
        if knn_backend is not None:
            # Built eagerly so an unknown backend, an unsupported
            # backend/metric pair or a bad option fails here, not
            # mid-stream at the first partial_fit.  Append-capable ANN
            # backends keep this one instance for the whole stream.
            index = make_index(
                knn_backend,
                metric=metric,
                dtype=dtype,
                **self._index_options(),
            )
            if index.supports_progressive_append:
                self._index = index
                self._index_y = np.empty(0, dtype=np.int64)
        self._test_x = self._kernel.bound
        self._test_y = test_y
        # Nearest-neighbor state in *comparable* units (squared
        # distances for euclidean); true distances are derived on demand.
        self._nn_cmp = np.full(
            len(test_x), np.inf, dtype=self._kernel.compute_dtype
        )
        self._nn_label = np.full(len(test_x), -1, dtype=np.int64)
        self._nn_index = np.full(len(test_x), -1, dtype=np.int64)
        self._train_seen = 0
        self.curve: list[CurvePoint] = []

    def _index_options(self) -> dict:
        """Backend constructor kwargs, with the scan executor injected.

        The executor (and its bound store, for zero-copy shard
        payloads) rides outside ``knn_backend_options`` so the options
        mapping stays picklable for process-mode arm specs.
        """
        options = dict(self.knn_backend_options)
        if self._scan_executor is not None:
            options["scan_executor"] = self._scan_executor
            if self._scan_executor.store is not None:
                options.setdefault("store", self._scan_executor.store)
        return options

    @property
    def test_size(self) -> int:
        return len(self._test_x)

    @property
    def train_seen(self) -> int:
        """Total number of training samples ingested so far."""
        return self._train_seen

    @property
    def test_labels(self) -> np.ndarray:
        """Current test labels — the error's ground truth (copy)."""
        return self._test_y.copy()

    @property
    def nearest_labels(self) -> np.ndarray:
        """Current nearest-neighbor label per test point (copy)."""
        return self._nn_label.copy()

    @property
    def nearest_indices(self) -> np.ndarray:
        """Global train index of each test point's nearest neighbor (copy)."""
        return self._nn_index.copy()

    @property
    def nearest_distances(self) -> np.ndarray:
        """Current nearest-neighbor distance per test point (float64)."""
        return self._kernel.to_distance(self._nn_cmp)

    def partial_fit(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        """Ingest one training batch and return the updated 1NN test error."""
        batch_x = np.asarray(batch_x, dtype=np.float64)
        batch_y = np.asarray(batch_y, dtype=np.int64)
        if len(batch_x) != len(batch_y):
            raise DataValidationError(
                f"batch_x and batch_y length mismatch: "
                f"{len(batch_x)} vs {len(batch_y)}"
            )
        if len(batch_x) > 0:
            if self.knn_backend is None:
                local, local_cmp = self._kernel.nearest_among(batch_x)
                labels = batch_y[local]
                global_idx = local + self._train_seen
            elif self._index is not None:
                # Persistent ANN backend: append the batch (encode-on-
                # append for ivf_pq) and re-query the whole compressed
                # corpus — sublinear in the corpus, and indices come
                # back in global train positions already.
                if self._index.num_fitted == 0:
                    self._index.fit(batch_x, batch_y)
                else:
                    self._index.partial_fit(batch_x, batch_y)
                self._index_y = np.concatenate((self._index_y, batch_y))
                nn_dist, nn_idx = self._index.kneighbors(self._test_x, k=1)
                global_idx = nn_idx[:, 0]
                local_cmp = self._kernel.from_distance(nn_dist[:, 0])
                labels = self._index_y[global_idx]
            else:
                index = make_index(
                    self.knn_backend,
                    metric=self.metric,
                    dtype=self.dtype,
                    **self._index_options(),
                )
                index.fit(batch_x, batch_y)
                nn_dist, nn_idx = index.kneighbors(self._test_x, k=1)
                local = nn_idx[:, 0]
                local_cmp = self._kernel.from_distance(nn_dist[:, 0])
                labels = batch_y[local]
                global_idx = local + self._train_seen
            if self._index is not None and not getattr(
                self._index, "exact_distances", True
            ):
                # Estimated distances (ivf_pq with rerank=0) are not
                # comparable across codebook refreshes — min-merging
                # against a stale underestimate would pin a neighbor
                # the index no longer returns.  Each persistent-path
                # query is already corpus-wide, so replace wholesale.
                improved = np.ones(len(local_cmp), dtype=bool)
            else:
                improved = local_cmp < self._nn_cmp
            self._nn_cmp[improved] = local_cmp[improved]
            self._nn_label[improved] = labels[improved]
            self._nn_index[improved] = global_idx[improved]
            self._train_seen += len(batch_x)
        err = self.error()
        if self.record_curve:
            self.curve.append(CurvePoint(self._train_seen, err))
        return err

    def error(self) -> float:
        """Current exact 1NN test error over all batches seen so far."""
        if self._train_seen == 0:
            raise DataValidationError("no training data ingested yet")
        return float(np.mean(self._nn_label != self._test_y))

    def relabel_train(self, indices: np.ndarray, new_labels: np.ndarray) -> None:
        """Apply train-label corrections without recomputing any distance.

        Cleaning a label does not move any point in feature space, so the
        nearest-neighbor structure is unchanged (Section V of the paper);
        only cached labels for affected neighbors must be rewritten.
        Fully vectorized: affected test points are found with ``np.isin``
        over the cached neighbor indices and remapped through a sorted
        lookup (duplicate corrections keep the last occurrence, matching
        the historical dict-remap semantics).
        """
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        if len(indices) == 0:
            return
        if self._index_y is not None:
            # The persistent ANN path re-queries the whole corpus on
            # every batch and labels hits from _index_y, so corrections
            # must land there too or a later batch would resurrect the
            # stale label.  In-range writes in given order: among
            # duplicate corrections the last one wins, matching the
            # remap below.
            in_range = indices < len(self._index_y)
            self._index_y[indices[in_range]] = new_labels[in_range]
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        sorted_labels = new_labels[order]
        affected = np.isin(self._nn_index, sorted_idx)
        if not affected.any():
            return
        # side="right" - 1: among duplicate corrections of one train
        # index, the last one given wins (dict-remap behavior).
        positions = (
            np.searchsorted(sorted_idx, self._nn_index[affected], side="right")
            - 1
        )
        self._nn_label[affected] = sorted_labels[positions]

    def relabel_test(self, indices: np.ndarray, new_labels: np.ndarray) -> None:
        """Apply test-label corrections (the ground truth used for the error)."""
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        self._test_y[indices] = new_labels

    def curve_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the recorded convergence curve as ``(sizes, errors)`` arrays."""
        if not self.curve:
            return np.array([], dtype=np.int64), np.array([])
        sizes = np.array([p.train_size for p in self.curve], dtype=np.int64)
        errors = np.array([p.error for p in self.curve])
        return sizes, errors
