"""Streaming 1NN evaluation over a growing training set.

This is the engine behind Snoopy's convergence curves and the bandit
arms of Section V.  A :class:`ProgressiveOneNN` is bound to a fixed test
set; training data arrives in batches via :meth:`partial_fit`, and after
every batch the exact 1NN test error is available in O(1) because the
evaluator maintains, per test point, the distance and label of its
current nearest neighbor.

Feeding batch after batch therefore costs O(batch x test) per step and
reproduces exactly the error the full brute-force computation would give
on the union of all batches seen so far.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import make_index
from repro.knn.metrics import pairwise_distances


@dataclass(frozen=True)
class CurvePoint:
    """One point of a 1NN convergence curve: error after ``n`` train samples."""

    train_size: int
    error: float


class ProgressiveOneNN:
    """Exact 1NN test error maintained incrementally over training batches.

    Parameters
    ----------
    test_x, test_y:
        The fixed test set (features and integer labels).
    metric:
        Distance metric, "euclidean" or "cosine".
    record_curve:
        When True (default), every :meth:`partial_fit` appends a
        :class:`CurvePoint` to :attr:`curve`.
    knn_backend:
        ``None`` (default) uses the built-in exact pairwise scan per
        batch.  Otherwise a backend name for
        :func:`repro.knn.base.make_index` ("brute_force", "ivf", ...):
        each batch is indexed by that backend and the per-test nearest
        neighbor comes from a 1NN query against it, making the search
        substrate swappable.  A fresh index is built per batch, so an
        approximate backend (quantizer training and all) only pays off
        when batches are large; at typical bandit pull sizes the
        built-in scan is the fastest option.
    """

    def __init__(
        self,
        test_x: np.ndarray,
        test_y: np.ndarray,
        metric: str = "euclidean",
        record_curve: bool = True,
        knn_backend: str | None = None,
    ):
        # np.array (not asarray): the evaluator owns private copies, so
        # relabel_test can never write through to the caller's arrays.
        test_x = np.array(test_x, dtype=np.float64)
        test_y = np.array(test_y, dtype=np.int64)
        if test_x.ndim != 2:
            raise DataValidationError(f"test_x must be 2-D, got {test_x.shape}")
        if len(test_x) != len(test_y):
            raise DataValidationError(
                f"test_x and test_y length mismatch: {len(test_x)} vs {len(test_y)}"
            )
        if len(test_x) == 0:
            raise DataValidationError("test set must not be empty")
        self.metric = metric
        self.record_curve = record_curve
        self.knn_backend = knn_backend
        if knn_backend is not None:
            # Fail fast on an unknown backend or an unsupported
            # backend/metric pair instead of mid-stream at the first
            # partial_fit.
            make_index(knn_backend, metric=metric)
        self._test_x = test_x
        self._test_y = test_y
        self._nn_dist = np.full(len(test_x), np.inf)
        self._nn_label = np.full(len(test_x), -1, dtype=np.int64)
        self._nn_index = np.full(len(test_x), -1, dtype=np.int64)
        self._train_seen = 0
        self.curve: list[CurvePoint] = []

    @property
    def test_size(self) -> int:
        return len(self._test_x)

    @property
    def train_seen(self) -> int:
        """Total number of training samples ingested so far."""
        return self._train_seen

    @property
    def test_labels(self) -> np.ndarray:
        """Current test labels — the error's ground truth (copy)."""
        return self._test_y.copy()

    @property
    def nearest_labels(self) -> np.ndarray:
        """Current nearest-neighbor label per test point (copy)."""
        return self._nn_label.copy()

    @property
    def nearest_indices(self) -> np.ndarray:
        """Global train index of each test point's nearest neighbor (copy)."""
        return self._nn_index.copy()

    @property
    def nearest_distances(self) -> np.ndarray:
        """Current nearest-neighbor distance per test point (copy)."""
        return self._nn_dist.copy()

    def partial_fit(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        """Ingest one training batch and return the updated 1NN test error."""
        batch_x = np.asarray(batch_x, dtype=np.float64)
        batch_y = np.asarray(batch_y, dtype=np.int64)
        if len(batch_x) != len(batch_y):
            raise DataValidationError(
                f"batch_x and batch_y length mismatch: "
                f"{len(batch_x)} vs {len(batch_y)}"
            )
        if len(batch_x) > 0:
            if self.knn_backend is None:
                dist = pairwise_distances(
                    self._test_x, batch_x, metric=self.metric
                )
                local = np.argmin(dist, axis=1)
                local_dist = dist[np.arange(len(self._test_x)), local]
            else:
                index = make_index(self.knn_backend, metric=self.metric)
                index.fit(batch_x, batch_y)
                nn_dist, nn_idx = index.kneighbors(self._test_x, k=1)
                local = nn_idx[:, 0]
                local_dist = nn_dist[:, 0]
            improved = local_dist < self._nn_dist
            self._nn_dist[improved] = local_dist[improved]
            self._nn_label[improved] = batch_y[local[improved]]
            self._nn_index[improved] = local[improved] + self._train_seen
            self._train_seen += len(batch_x)
        err = self.error()
        if self.record_curve:
            self.curve.append(CurvePoint(self._train_seen, err))
        return err

    def error(self) -> float:
        """Current exact 1NN test error over all batches seen so far."""
        if self._train_seen == 0:
            raise DataValidationError("no training data ingested yet")
        return float(np.mean(self._nn_label != self._test_y))

    def relabel_train(self, indices: np.ndarray, new_labels: np.ndarray) -> None:
        """Apply train-label corrections without recomputing any distance.

        Cleaning a label does not move any point in feature space, so the
        nearest-neighbor structure is unchanged (Section V of the paper);
        only cached labels for affected neighbors must be rewritten.
        """
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        if len(indices) == 0:
            return
        remap = dict(zip(indices.tolist(), new_labels.tolist()))
        for test_i, nn_idx in enumerate(self._nn_index):
            if nn_idx in remap:
                self._nn_label[test_i] = remap[nn_idx]

    def relabel_test(self, indices: np.ndarray, new_labels: np.ndarray) -> None:
        """Apply test-label corrections (the ground truth used for the error)."""
        indices = np.asarray(indices, dtype=np.int64)
        new_labels = np.asarray(new_labels, dtype=np.int64)
        if len(indices) != len(new_labels):
            raise DataValidationError("indices and new_labels length mismatch")
        self._test_y[indices] = new_labels

    def curve_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the recorded convergence curve as ``(sizes, errors)`` arrays."""
        if not self.curve:
            return np.array([], dtype=np.int64), np.array([])
        sizes = np.array([p.train_size for p in self.curve], dtype=np.int64)
        errors = np.array([p.error for p in self.curve])
        return sizes, errors
