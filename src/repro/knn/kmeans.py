"""Lloyd's k-means with k-means++ seeding (numpy, from scratch).

Used as the coarse quantizer of the IVF index (:mod:`repro.knn.ivf`),
mirroring how accelerator kNN libraries cited by the paper structure
billion-scale search.  Kept deliberately small: fit / predict / inertia.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.metrics import euclidean_distances
from repro.rng import SeedLike, ensure_rng


class KMeans:
    """Lloyd iterations over euclidean distance with k-means++ init.

    Parameters
    ----------
    num_clusters:
        Number of centroids.
    max_iterations:
        Upper bound on Lloyd iterations; iteration stops early when the
        assignment is stable.
    seed:
        Seeds the k-means++ initialization.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 25,
        seed: SeedLike = None,
    ):
        if num_clusters < 1:
            raise DataValidationError("num_clusters must be >= 1")
        if max_iterations < 1:
            raise DataValidationError("max_iterations must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self._seed = seed
        self.centroids: np.ndarray | None = None

    def _init_centroids(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        centroids = np.empty((self.num_clusters, x.shape[1]))
        centroids[0] = x[rng.integers(len(x))]
        closest_sq = np.full(len(x), np.inf)
        for i in range(1, self.num_clusters):
            dist = euclidean_distances(x, centroids[i - 1 : i])[:, 0]
            np.minimum(closest_sq, dist**2, out=closest_sq)
            total = closest_sq.sum()
            if total <= 0:
                centroids[i] = x[rng.integers(len(x))]
            else:
                probabilities = closest_sq / total
                centroids[i] = x[rng.choice(len(x), p=probabilities)]
        return centroids

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataValidationError("x must be 2-D")
        if len(x) < self.num_clusters:
            raise DataValidationError(
                f"need at least {self.num_clusters} points, got {len(x)}"
            )
        rng = ensure_rng(self._seed)
        centroids = self._init_centroids(x, rng)
        assignment = np.full(len(x), -1, dtype=np.int64)
        for _ in range(self.max_iterations):
            dist = euclidean_distances(x, centroids)
            new_assignment = np.argmin(dist, axis=1)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
            for cluster in range(self.num_clusters):
                mask = assignment == cluster
                if mask.any():
                    centroids[cluster] = x[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = np.argmax(dist[np.arange(len(x)), assignment])
                    centroids[cluster] = x[farthest]
        self.centroids = centroids
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for new points."""
        if self.centroids is None:
            raise DataValidationError("kmeans is not fitted")
        x = np.asarray(x, dtype=np.float64)
        return np.argmin(euclidean_distances(x, self.centroids), axis=1)

    def inertia(self, x: np.ndarray) -> float:
        """Sum of squared distances to the assigned centroids."""
        if self.centroids is None:
            raise DataValidationError("kmeans is not fitted")
        x = np.asarray(x, dtype=np.float64)
        dist = euclidean_distances(x, self.centroids)
        return float(np.sum(dist.min(axis=1) ** 2))
