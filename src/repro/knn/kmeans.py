"""Lloyd's k-means with k-means++ seeding (numpy, from scratch).

Used as the coarse quantizer of the IVF index (:mod:`repro.knn.ivf`),
mirroring how accelerator kNN libraries cited by the paper structure
billion-scale search.  Kept deliberately small: fit / predict / inertia.

All distance evaluations run through a
:class:`repro.knn.kernels.EuclideanKernel` bound to the data, so the
data-side squared norms are computed once per ``fit`` (instead of once
per Lloyd iteration *and* once per k-means++ seeding step) and the
arithmetic runs in the configured compute dtype.  Centroid updates
(means) always accumulate in ``float64``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.kernels import make_kernel, resolve_dtype
from repro.rng import SeedLike, ensure_rng


class KMeans:
    """Lloyd iterations over euclidean distance with k-means++ init.

    Parameters
    ----------
    num_clusters:
        Number of centroids.
    max_iterations:
        Upper bound on Lloyd iterations; iteration stops early when the
        assignment is stable.
    seed:
        Seeds the k-means++ initialization.
    dtype:
        Compute dtype for the distance arithmetic ("float32" or
        "float64"); ``None`` (default) keeps the strict ``float64``
        path.  Centroids are stored in ``float64`` either way.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 25,
        seed: SeedLike = None,
        dtype=None,
    ):
        if num_clusters < 1:
            raise DataValidationError("num_clusters must be >= 1")
        if max_iterations < 1:
            raise DataValidationError("max_iterations must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        resolve_dtype(dtype)  # fail fast, not at fit
        self.dtype = dtype
        self._seed = seed
        self.centroids: np.ndarray | None = None

    def _init_centroids(
        self, x: np.ndarray, rng: np.random.Generator, kernel
    ) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling.

        ``kernel`` is bound to ``x``; each step asks it for the squared
        distance to the newest centroid only.  The running minimum and
        the sampling probabilities accumulate in ``float64`` so the
        float32 compute path cannot degrade ``rng.choice``'s
        normalization.
        """
        centroids = np.empty((self.num_clusters, x.shape[1]))
        centroids[0] = x[rng.integers(len(x))]
        closest_sq = np.full(len(x), np.inf)
        for i in range(1, self.num_clusters):
            _, sq = kernel.nearest_among(centroids[i - 1 : i])
            np.minimum(closest_sq, sq.astype(np.float64), out=closest_sq)
            total = closest_sq.sum()
            if total <= 0:
                centroids[i] = x[rng.integers(len(x))]
            else:
                probabilities = closest_sq / total
                centroids[i] = x[rng.choice(len(x), p=probabilities)]
        return centroids

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataValidationError("x must be 2-D")
        if len(x) < self.num_clusters:
            raise DataValidationError(
                f"need at least {self.num_clusters} points, got {len(x)}"
            )
        rng = ensure_rng(self._seed)
        # One kernel for the whole fit: x's squared norms are computed
        # exactly once, shared by the ++ seeding and every Lloyd sweep.
        kernel = make_kernel("euclidean", x, dtype=self.dtype)
        centroids = self._init_centroids(x, rng, kernel)
        assignment = np.full(len(x), -1, dtype=np.int64)
        for _ in range(self.max_iterations):
            new_assignment, assigned_sq = kernel.nearest_among(centroids)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
            for cluster in range(self.num_clusters):
                mask = assignment == cluster
                if mask.any():
                    centroids[cluster] = x[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = np.argmax(assigned_sq)
                    centroids[cluster] = x[farthest]
        self.centroids = centroids
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for new points."""
        if self.centroids is None:
            raise DataValidationError("kmeans is not fitted")
        kernel = make_kernel("euclidean", x, dtype=self.dtype)
        assignment, _ = kernel.nearest_among(self.centroids)
        return assignment

    def inertia(self, x: np.ndarray) -> float:
        """Sum of squared distances to the assigned centroids."""
        if self.centroids is None:
            raise DataValidationError("kmeans is not fitted")
        kernel = make_kernel("euclidean", x, dtype=self.dtype)
        _, sq = kernel.nearest_among(self.centroids)
        return float(np.sum(sq, dtype=np.float64))
