"""Dtype-aware distance kernels: bind-once norms, fused blocked search.

Every exact distance evaluation in the library ultimately reduces to one
of two shapes: *stream* (a fixed query set compared against batch after
batch of corpus rows — the progressive 1NN evaluator) or *search* (a
fixed corpus probed by changing query sets — the kNN indexes).  In both
shapes one side of the computation is bound for thousands of calls while
the other side changes, yet the historical code paths recomputed the
bound side's squared norms (euclidean) or row normalization (cosine)
from scratch on every call, and forced ``float64`` end to end.

A :class:`DistanceKernel` removes both costs, the two tricks production
ANN engines (FAISS-style systems cited by the paper) get most of their
throughput from:

- **Bind once.**  The kernel is constructed around the long-lived side
  ("bound" rows).  Euclidean kernels cache the bound squared norms;
  cosine kernels cache the pre-normalized bound rows.  Every subsequent
  call pays only for the changing side.
- **Configurable compute dtype.**  All distance arithmetic runs in a
  configurable dtype — ``float32`` (:data:`DEFAULT_COMPUTE_DTYPE`, the
  recommended single-precision BLAS path, ~2x arithmetic and half the
  memory traffic) or ``float64`` (strict mode, bit-compatible with the
  historical paths).  Outputs (distances) are returned as ``float64``
  regardless, so downstream reporting is dtype-stable.
- **Fused blocked primitives.**  :meth:`DistanceKernel.nearest_among`
  and :meth:`DistanceKernel.topk` block the scan and select winners per
  block, so a full query-by-corpus distance matrix is never
  materialized, and the monotone ``sqrt`` of the euclidean metric is
  applied to the winners only — never to a full block.

Internally the kernels compare *comparable* values — squared distances
for euclidean, the dissimilarity itself for cosine — which order
identically to true distances.  :meth:`DistanceKernel.to_distance` /
:meth:`DistanceKernel.from_distance` convert at the boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from repro.exceptions import DataValidationError

#: Compute dtypes a kernel accepts.
VALID_COMPUTE_DTYPES = ("float32", "float64")

#: The recommended compute dtype for throughput-critical paths.  System
#: entry points (``SnoopyConfig``, the CLI) default to this; the
#: low-level index/metric APIs default to strict ``float64`` so their
#: historical results are preserved unless a caller opts in.
DEFAULT_COMPUTE_DTYPE = "float32"

_EPS = 1e-12


def resolve_dtype(dtype) -> np.dtype:
    """Normalize a compute-dtype spec; ``None`` means strict ``float64``."""
    if dtype is None:
        return np.dtype(np.float64)
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        resolved = None
    if resolved is None or resolved.name not in VALID_COMPUTE_DTYPES:
        raise DataValidationError(
            f"unsupported compute dtype {dtype!r}; "
            f"expected one of {VALID_COMPUTE_DTYPES}"
        )
    return resolved


def iter_blocks(total: int, block_size: int) -> Iterator[slice]:
    """Yield contiguous slices covering ``range(total)`` in blocks."""
    if block_size <= 0:
        raise DataValidationError(f"block_size must be positive, got {block_size}")
    for start in range(0, total, block_size):
        yield slice(start, min(start + block_size, total))


class DistanceKernel(ABC):
    """A distance metric bound to a fixed row set, in a compute dtype.

    Parameters
    ----------
    bound:
        The long-lived side of the computation, shape ``(n, d)``.  For a
        streaming evaluator this is the query/test set; for a search
        index it is the corpus.  Cast once to the compute dtype; the
        metric-specific per-row state (squared norms, normalized rows)
        is cached for the kernel's lifetime.
    dtype:
        Compute dtype: "float32", "float64", or ``None`` for strict
        ``float64``.
    """

    #: Metric name, set by subclasses ("euclidean" / "cosine").
    metric: str = ""

    def __init__(self, bound: np.ndarray, dtype=None):
        self._dtype = resolve_dtype(dtype)
        bound = np.asarray(bound, dtype=self._dtype)
        if bound.ndim != 2:
            raise DataValidationError(
                f"bound rows must be 2-D, got shape {bound.shape}"
            )
        self._bound = bound
        self._bound_state = self._state(bound)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bound(self) -> np.ndarray:
        """The bound rows, in the compute dtype."""
        return self._bound

    @property
    def compute_dtype(self) -> np.dtype:
        return self._dtype

    @property
    def num_bound(self) -> int:
        return len(self._bound)

    @property
    def dim(self) -> int:
        return self._bound.shape[1]

    # ------------------------------------------------------------------
    # Metric-specific internals
    # ------------------------------------------------------------------

    @abstractmethod
    def _state(self, rows: np.ndarray):
        """Per-row cached state (norms / normalized rows) for ``rows``."""

    @abstractmethod
    def _cross(self, a, a_state, b, b_state) -> np.ndarray:
        """Comparable-distance matrix of shape ``(len(a), len(b))``.

        "Comparable" means monotone in the true distance: squared
        euclidean distance, or the cosine dissimilarity itself.
        """

    @abstractmethod
    def to_distance(self, comparable: np.ndarray) -> np.ndarray:
        """Map comparable values to true distances (new float64 array)."""

    @abstractmethod
    def from_distance(self, distance: np.ndarray) -> np.ndarray:
        """Map true distances to comparable values in the compute dtype."""

    def _cast_other(self, other: np.ndarray) -> np.ndarray:
        other = np.asarray(other, dtype=self._dtype)
        if other.ndim != 2:
            raise DataValidationError(
                f"expected 2-D rows, got shape {other.shape}"
            )
        if other.shape[1] != self.dim:
            raise DataValidationError(
                f"dimension mismatch: {other.shape[1]} vs {self.dim}"
            )
        return other

    # ------------------------------------------------------------------
    # Fused blocked primitives
    # ------------------------------------------------------------------

    def comparable_from(self, queries: np.ndarray, state=None) -> np.ndarray:
        """Full comparable matrix ``(len(queries), num_bound)``.

        For small bound sets only (e.g. a centroid table whose full
        ordering is needed); the blocked primitives below are the
        memory-bounded paths.  ``state`` optionally supplies the
        query-side per-row state (as produced by this kernel for the
        same rows) so a caller that already holds it skips the
        recomputation.
        """
        queries = self._cast_other(queries)
        if state is None:
            state = self._state(queries)
        return self._cross(queries, state, self._bound, self._bound_state)

    def nearest_among(
        self, other: np.ndarray, block_size: int = 2048
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per bound row, the nearest row of ``other``: ``(idx, comparable)``.

        ``other`` is scanned in blocks of ``block_size`` rows, so memory
        stays bounded by ``num_bound * block_size`` values.  Ties are
        broken toward the earliest ``other`` row (strict improvement),
        matching the historical blocked-argmin semantics.
        """
        other = self._cast_other(other)
        if len(other) == 0:
            raise DataValidationError("other must contain at least one row")
        state = self._state(other)
        best_cmp = np.full(self.num_bound, np.inf, dtype=self._dtype)
        best_idx = np.zeros(self.num_bound, dtype=np.int64)
        for block in iter_blocks(len(other), block_size):
            cmp = self._cross(
                self._bound,
                self._bound_state,
                other[block],
                _slice_state(state, block),
            )
            local = np.argmin(cmp, axis=1)
            local_cmp = np.take_along_axis(cmp, local[:, None], axis=1)[:, 0]
            improved = local_cmp < best_cmp
            best_cmp[improved] = local_cmp[improved]
            best_idx[improved] = local[improved] + block.start
        return best_idx, best_cmp

    def extend(self, bound: np.ndarray) -> "DistanceKernel":
        """A kernel over ``bound``, reusing this kernel's cached state.

        ``bound`` must contain this kernel's bound rows as its prefix
        (the append-only corpus case): per-row state is computed for
        the appended suffix only, so extending costs O(appended)
        instead of the O(total) a fresh bind would pay.  Per-row state
        is independent across rows, so the result is identical to
        binding ``bound`` from scratch.
        """
        bound = np.asarray(bound, dtype=self._dtype)
        if bound.ndim != 2 or bound.shape[1] != self.dim:
            raise DataValidationError(
                f"extended bound must be 2-D with {self.dim} columns, "
                f"got shape {bound.shape}"
            )
        if len(bound) < self.num_bound:
            raise DataValidationError(
                f"extended bound has {len(bound)} rows, fewer than the "
                f"{self.num_bound} already bound"
            )
        extended = object.__new__(type(self))
        extended._dtype = self._dtype
        extended._bound = bound
        suffix_state = self._state(bound[self.num_bound :])
        extended._bound_state = _concat_state(
            self._bound_state, suffix_state
        )
        return extended

    def pair_comparable(
        self, queries: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """Comparable distances for explicit (query, bound-row) pairs.

        ``indices`` has shape ``(len(queries), t)``; entry ``[i, j]`` is
        a bound-row index, and the result ``[i, j]`` is the comparable
        distance between query ``i`` and that bound row.  This is the
        re-ranking primitive of the approximate indexes: a candidate
        shortlist (one row set per query) is verified exactly without
        ever forming a full query-by-corpus block.  The arithmetic is
        the kernel's own (same cached bound state, same expansion), so
        the values are exactly what :meth:`topk` would report for the
        same pairs up to BLAS summation order.
        """
        queries = self._cast_other(queries)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2 or len(indices) != len(queries):
            raise DataValidationError(
                f"indices must be 2-D with one row per query, got shape "
                f"{indices.shape} for {len(queries)} queries"
            )
        if len(indices) and indices.size:
            if indices.min() < 0 or indices.max() >= self.num_bound:
                raise DataValidationError(
                    f"pair indices out of range for {self.num_bound} "
                    f"bound rows"
                )
        state = self._state(queries)
        rows = self._bound[indices]
        row_state = _slice_state(self._bound_state, indices)
        return self._pair(queries, state, rows, row_state)

    def pair_distances(
        self, queries: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """True distances for explicit pairs (float64); see pair_comparable."""
        return self.to_distance(self.pair_comparable(queries, indices))

    @abstractmethod
    def _pair(self, a, a_state, rows, row_state) -> np.ndarray:
        """Comparable distances between ``a[i]`` and each of ``rows[i]``.

        ``rows`` has shape ``(n, t, d)`` (gathered bound rows) and
        ``row_state`` is the bound state gathered the same way.
        """

    def topk(
        self,
        queries: np.ndarray,
        k: int,
        block_size: int = 2048,
        exclude_self: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k of the bound corpus per query row: ``(dist, idx)``.

        Blocked over query rows; within a block the k winners are
        selected with ``argpartition`` on comparable values and only the
        winners are converted to true distances.  With
        ``exclude_self=True`` query ``i`` is assumed to BE bound row
        ``i`` and its self-match is masked out (leave-one-out mode); the
        caller is expected to validate ``len(queries) == num_bound``.
        """
        queries = self._cast_other(queries)
        effective_k = k + 1 if exclude_self else k
        if k < 1:
            raise DataValidationError(f"k must be >= 1, got {k}")
        if effective_k > self.num_bound:
            raise DataValidationError(
                f"k={k} (effective {effective_k}) exceeds corpus size "
                f"{self.num_bound}"
            )
        n = len(queries)
        state = self._state(queries)
        all_dist = np.empty((n, k))
        all_idx = np.empty((n, k), dtype=np.int64)
        for block in iter_blocks(n, block_size):
            cmp = self._cross(
                queries[block],
                _slice_state(state, block),
                self._bound,
                self._bound_state,
            )
            if exclude_self:
                cmp[
                    np.arange(block.stop - block.start),
                    np.arange(block.start, block.stop),
                ] = np.inf
            part = np.argpartition(cmp, kth=k - 1, axis=1)[:, :k]
            part_cmp = np.take_along_axis(cmp, part, axis=1)
            order = np.argsort(part_cmp, axis=1)
            all_idx[block] = np.take_along_axis(part, order, axis=1)
            all_dist[block] = self.to_distance(
                np.take_along_axis(part_cmp, order, axis=1)
            )
        return all_dist, all_idx


class EuclideanKernel(DistanceKernel):
    """Euclidean distance; comparable values are squared distances."""

    metric = "euclidean"

    @property
    def bound_norms_sq(self) -> np.ndarray:
        """Cached squared norms of the bound rows (compute dtype)."""
        return self._bound_state

    def _state(self, rows: np.ndarray) -> np.ndarray:
        # np.sum(rows * rows) — not einsum — so the float64 path is
        # bit-identical to the historical pairwise_distances norms.
        return np.sum(rows * rows, axis=1)

    def _cross(self, a, a_state, b, b_state) -> np.ndarray:
        two = self._dtype.type(2.0)
        sq = a_state[:, None] + b_state[None, :] - two * (a @ b.T)
        np.maximum(sq, self._dtype.type(0.0), out=sq)
        return sq

    def _pair(self, a, a_state, rows, row_state) -> np.ndarray:
        two = self._dtype.type(2.0)
        # Batched matvec (BLAS) rather than einsum: one gemv per query
        # row against its gathered candidate block.
        dots = (rows @ a[:, :, None])[:, :, 0]
        sq = a_state[:, None] + row_state - two * dots
        np.maximum(sq, self._dtype.type(0.0), out=sq)
        return sq

    def to_distance(self, comparable: np.ndarray) -> np.ndarray:
        return np.sqrt(comparable, dtype=np.float64)

    def from_distance(self, distance: np.ndarray) -> np.ndarray:
        distance = np.asarray(distance, dtype=self._dtype)
        return distance * distance


class CosineKernel(DistanceKernel):
    """Cosine dissimilarity ``1 - cos``; comparable IS the distance.

    Zero vectors are maximally dissimilar to everything (distance 1),
    matching :func:`repro.knn.metrics.cosine_distances`.
    """

    metric = "cosine"

    def _state(self, rows: np.ndarray):
        norms = np.linalg.norm(rows, axis=1)
        zero = norms < _EPS
        unit = rows / np.maximum(norms, _EPS)[:, None].astype(self._dtype)
        return unit.astype(self._dtype, copy=False), zero

    def _cross(self, a, a_state, b, b_state) -> np.ndarray:
        a_unit, a_zero = a_state
        b_unit, b_zero = b_state
        sim = a_unit @ b_unit.T
        np.clip(sim, self._dtype.type(-1.0), self._dtype.type(1.0), out=sim)
        sim[a_zero, :] = 0.0
        sim[:, b_zero] = 0.0
        return self._dtype.type(1.0) - sim

    def _pair(self, a, a_state, rows, row_state) -> np.ndarray:
        a_unit, a_zero = a_state
        row_unit, row_zero = row_state
        sim = (row_unit @ a_unit[:, :, None])[:, :, 0]
        np.clip(sim, self._dtype.type(-1.0), self._dtype.type(1.0), out=sim)
        sim[a_zero, :] = 0.0
        sim[row_zero] = 0.0
        return self._dtype.type(1.0) - sim

    def to_distance(self, comparable: np.ndarray) -> np.ndarray:
        return np.asarray(comparable, dtype=np.float64).copy()

    def from_distance(self, distance: np.ndarray) -> np.ndarray:
        return np.asarray(distance, dtype=self._dtype).copy()


_KERNELS = {
    "euclidean": EuclideanKernel,
    "cosine": CosineKernel,
}


def make_kernel(
    metric: str, bound: np.ndarray, dtype=DEFAULT_COMPUTE_DTYPE
) -> DistanceKernel:
    """Bind ``bound`` rows under ``metric`` in a compute ``dtype``.

    ``dtype`` defaults to :data:`DEFAULT_COMPUTE_DTYPE` (``float32``);
    pass "float64" (or ``None``) for strict mode.
    """
    try:
        cls = _KERNELS[metric]
    except KeyError:
        raise DataValidationError(
            f"unknown metric {metric!r}; expected one of {tuple(_KERNELS)}"
        ) from None
    return cls(bound, dtype=dtype)


def _slice_state(state, block: slice):
    """Slice per-row state: a norm vector or a (unit-rows, mask) tuple."""
    if isinstance(state, tuple):
        return tuple(part[block] for part in state)
    return state[block]


def _concat_state(state, suffix):
    """Concatenate per-row state along the row axis (tuple-aware)."""
    if isinstance(state, tuple):
        return tuple(
            np.concatenate((part, more)) for part, more in zip(state, suffix)
        )
    return np.concatenate((state, suffix))
