"""Deterministic sharded scanning of inverted lists.

Shared plumbing for the parallel ANN tier: both :class:`~repro.knn.pq.
IVFPQIndex` and :class:`~repro.knn.ivf.IVFFlatIndex` split a query
batch's probed lists across shards (cluster ``c`` belongs to shard
``c % shards``) and run one scan task per shard, either inline or
through a :class:`~repro.core.engine.ShardedScanExecutor`.

Bit-identical results for any shard count — including 1 — rest on
three invariants the helpers here encode:

1. **Whole-list ownership.**  A probed list is scanned entirely by one
   shard, and the per-(query, list) candidate arithmetic is computed
   over the *same* row set regardless of how many shards exist — so
   every estimate is numerically identical across shard counts.
2. **A total order.**  Shard-local pools and the coordinator's merge
   both select by the lexicographic ``(estimate, member index)`` order
   (:func:`select_pool_topk`) — the "k-way distance heap with
   deterministic index tie-break".  Because each shard keeps its local
   top-``t`` under the same total order, the global top-``t`` is a
   subset of the union of shard pools, so the merge loses nothing.
   The packed fast-scan strengthens this from per-list determinism to
   full order-independence: its running-threshold pruning only ever
   drops entries whose estimate is *strictly* above the pool's t-th
   best (a conservative integer bound with rounding slack), and every
   merge is an exact lexicographic selection, so each shard's pool is
   exactly the (estimate, index) top-``t`` of its lists no matter how
   the scan is chunked or ordered.
3. **Zero-copy payloads.**  List payloads cross process boundaries as
   :class:`~repro.transforms.store.SharedArrayRef` blocks published
   into the PR 7 :class:`~repro.transforms.store.EmbeddingStore` hot
   tier (:func:`publish_payload` / :func:`resolve_payload`); when the
   store cannot share, the raw arrays ship through pickle instead —
   slower, same results.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.transforms.store import SharedArrayRef

#: Fixed query-row block for per-cluster scans.  Chunking by a constant
#: (never by pool/shard geometry) keeps BLAS/einsum operand shapes —
#: and therefore float summation order — independent of the shard count.
SCAN_ROW_BLOCK = 4096


def shard_of(clusters: np.ndarray, shards: int) -> np.ndarray:
    """Owning shard of each cluster id (round-robin by cluster)."""
    return np.asarray(clusters) % int(shards)


def owned_clusters(nlist: int, shard: int, shards: int) -> np.ndarray:
    """Cluster ids owned by ``shard`` (ascending)."""
    return np.arange(shard, nlist, shards, dtype=np.int64)


def probe_pairs(
    probe_order: np.ndarray, depth: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-query probe lists into aligned (row, cluster) pairs.

    ``rows`` is ascending (pairs are grouped by query); within a query
    the clusters appear in probe order.  Both indexes derive their scan
    schedule from these pairs, so the per-list row sets — and hence the
    arithmetic — are fixed before any shard split happens.
    """
    probe_order = np.asarray(probe_order)
    depth = np.asarray(depth, dtype=np.int64)
    n, width = probe_order.shape
    mask = np.arange(width)[None, :] < depth[:, None]
    rows = np.repeat(np.arange(n, dtype=np.int64), depth)
    clusters = probe_order[mask].astype(np.int64, copy=False)
    return rows, clusters


def pair_slots(
    rows: np.ndarray, n: int, stride: int
) -> tuple[np.ndarray, int]:
    """Pool slot base per (query, probe) pair, ``stride`` slots each.

    Returns ``(bases, width)`` where ``width`` is the pool column count
    (max pairs of any query times ``stride``).  ``rows`` must be
    ascending, as produced by :func:`probe_pairs` (possibly filtered by
    a shard mask, which preserves order).
    """
    if len(rows) == 0:
        return np.zeros(0, dtype=np.int64), 0
    counts = np.bincount(rows, minlength=n)
    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
    ordinal = np.arange(len(rows), dtype=np.int64) - starts[rows]
    return ordinal * stride, int(counts.max()) * stride


def select_pool_topk(
    est: np.ndarray, idx: np.ndarray, keep: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``keep`` of a candidate pool under (est, index) order.

    The one selection rule of the sharded tier: primary key estimate,
    secondary key member index — a strict total order over real
    candidates (indexes are unique within a query's pool), so the
    result is independent of how the pool columns were arranged and
    therefore of the shard count.  Unfilled slots (``est=inf``,
    ``idx=-1``) sort last and only appear when a query probed fewer
    than ``keep`` candidates.
    """
    keep = min(int(keep), est.shape[1])
    if keep <= 0:
        empty = np.zeros((est.shape[0], 0))
        return empty, empty.astype(np.int64)
    order = np.lexsort((idx, est), axis=1)[:, :keep]
    return (
        np.take_along_axis(est, order, axis=1),
        np.take_along_axis(idx, order, axis=1),
    )


def merge_shard_pools(
    pools: list[tuple[np.ndarray, np.ndarray]], keep: int
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard (est, idx) pools into the global top-``keep``."""
    est = np.concatenate([p[0] for p in pools], axis=1)
    idx = np.concatenate([p[1] for p in pools], axis=1)
    return select_pool_topk(est, idx, keep)


# ----------------------------------------------------------------------
# Payload transport: publish in the coordinator, resolve in the worker
# ----------------------------------------------------------------------


def publish_payload(store, owner: str, shard: int, version: int,
                    arrays: dict) -> dict:
    """Publish one shard's payload arrays; refs where possible.

    Returns a mapping with each array replaced by a
    :class:`SharedArrayRef` when the store accepted it, or left as the
    raw array otherwise (mixed mappings are fine — workers resolve refs
    and pass raw arrays through).  Publishing is versioned per
    ``(owner, (shard, name))`` slot, so appends republish only the
    shards they touched and stale segments are unlinked eagerly.
    """
    mapping = {}
    can_publish = (
        store is not None and store.can_share_arrays and not store.is_handle
    )
    for name, array in arrays.items():
        ref = None
        if can_publish:
            ref = store.publish_block(
                owner, (int(shard), name), array, version=int(version)
            )
        mapping[name] = ref if ref is not None else array
    return mapping


def resolve_payload(payload: dict, store, owner: str) -> dict:
    """Materialize a shard task's payload mapping into arrays.

    Tasks ship the store itself: pickling turns it into an attach
    handle (``EmbeddingStore.__reduce__``), deduped per worker process,
    while inline execution hands the owning store straight through —
    refs then resolve from its pinned entries.  Worker handles
    additionally drop cached attaches of superseded payload versions
    (:meth:`EmbeddingStore.forget_attached`), so long-lived pools don't
    pin one stale mapping per republish.
    """
    refs = {
        name: value
        for name, value in payload.items()
        if isinstance(value, SharedArrayRef)
    }
    if not refs:
        return dict(payload)
    if store is None:
        raise DataValidationError(
            "shard payload carries shared refs but no store"
        )
    resolved = dict(payload)
    for name, ref in refs.items():
        array = store.resolve_array(ref)
        if array is None:
            raise DataValidationError(
                f"shard payload block {name!r} is gone "
                "(store closed or segment unlinked)"
            )
        resolved[name] = array
    if store.is_handle:
        store.forget_attached(owner, keep=[ref.key for ref in refs.values()])
    return resolved


def unpublish_owner(store_ref, owner: str) -> None:
    """`weakref.finalize` callback: release an index's publications.

    Bound by the index at first publication with a weak store ref, so a
    garbage-collected index (e.g. the per-batch rebuilds of a
    non-appending progressive evaluator) frees its segments without
    waiting for the store's own close.
    """
    store = store_ref()
    if store is not None:
        try:
            store.unpublish(owner)
        except Exception:  # pragma: no cover - teardown best-effort
            pass
