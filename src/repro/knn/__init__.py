"""Exact k-nearest-neighbor substrate.

This subpackage is the computational core under every 1NN-based Bayes
error estimate in the paper:

- :mod:`repro.knn.base` — the :class:`KNNIndex` protocol all backends
  implement, the :func:`make_index` factory that makes them swappable,
  and the shared vectorized :func:`majority_vote` kernel.
- :mod:`repro.knn.kernels` — the dtype-aware :class:`DistanceKernel`
  subsystem every distance evaluation runs through: bind-once cached
  norms, a configurable float32/float64 compute dtype, and fused
  blocked argmin/top-k primitives.
- :mod:`repro.knn.metrics` — blocked pairwise distances (euclidean/cosine)
  and the shared blocked top-k search.
- :mod:`repro.knn.brute_force` — an exact kNN index with prediction and
  test-error helpers (backend "brute_force").
- :mod:`repro.knn.progressive` — a streaming 1NN evaluator that ingests
  training data in batches and maintains the test error after every
  batch; this powers the convergence curves and the bandit arms.
- :mod:`repro.knn.incremental` — the append-only exact index (backend
  "incremental") and the neighbor cache that makes re-running Snoopy
  after label cleaning an O(test) operation (Section V of the paper:
  cleaning labels never moves a nearest neighbor).
- :mod:`repro.knn.kmeans` / :mod:`repro.knn.ivf` — the coarse quantizer
  and inverted-file index (backend "ivf") behind the accelerator-style
  approximate search the paper cites for scaling; its search paths are
  fully vectorized.
- :mod:`repro.knn.pq` — product quantization (backend "ivf_pq"): uint8
  codes, ADC lookup tables, residual-encoded inverted lists and exact
  re-ranking through the distance kernels — the compressed search tier
  for corpora that outgrow the flat indexes.
"""

from repro.knn.base import (
    KNNIndex,
    available_backends,
    majority_vote,
    make_index,
)
from repro.knn.brute_force import BruteForceKNN
from repro.knn.incremental import IncrementalKNNIndex, NeighborCache
from repro.knn.ivf import IVFFlatIndex
from repro.knn.kernels import (
    DEFAULT_COMPUTE_DTYPE,
    VALID_COMPUTE_DTYPES,
    CosineKernel,
    DistanceKernel,
    EuclideanKernel,
    make_kernel,
    resolve_dtype,
)
from repro.knn.kmeans import KMeans
from repro.knn.metrics import (
    blocked_argmin_distance,
    blocked_topk,
    cosine_distances,
    euclidean_distances,
    pairwise_distances,
)
from repro.knn.pq import IVFPQIndex, ProductQuantizer
from repro.knn.progressive import CurvePoint, ProgressiveOneNN

__all__ = [
    "DEFAULT_COMPUTE_DTYPE",
    "VALID_COMPUTE_DTYPES",
    "BruteForceKNN",
    "CosineKernel",
    "CurvePoint",
    "DistanceKernel",
    "EuclideanKernel",
    "IVFFlatIndex",
    "IVFPQIndex",
    "IncrementalKNNIndex",
    "KMeans",
    "KNNIndex",
    "NeighborCache",
    "ProductQuantizer",
    "ProgressiveOneNN",
    "available_backends",
    "blocked_argmin_distance",
    "blocked_topk",
    "cosine_distances",
    "euclidean_distances",
    "majority_vote",
    "make_index",
    "make_kernel",
    "pairwise_distances",
    "resolve_dtype",
]
