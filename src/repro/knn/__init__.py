"""Exact k-nearest-neighbor substrate.

This subpackage is the computational core under every 1NN-based Bayes
error estimate in the paper:

- :mod:`repro.knn.metrics` — blocked pairwise distances (euclidean/cosine).
- :mod:`repro.knn.brute_force` — an exact kNN index with prediction and
  test-error helpers.
- :mod:`repro.knn.progressive` — a streaming 1NN evaluator that ingests
  training data in batches and maintains the test error after every
  batch; this powers the convergence curves and the bandit arms.
- :mod:`repro.knn.incremental` — the neighbor cache that makes re-running
  Snoopy after label cleaning an O(test) operation (Section V of the
  paper: cleaning labels never moves a nearest neighbor).
- :mod:`repro.knn.kmeans` / :mod:`repro.knn.ivf` — the coarse quantizer
  and inverted-file index behind the accelerator-style approximate
  search the paper cites for scaling.
"""

from repro.knn.brute_force import BruteForceKNN
from repro.knn.incremental import NeighborCache
from repro.knn.ivf import IVFFlatIndex
from repro.knn.kmeans import KMeans
from repro.knn.metrics import (
    cosine_distances,
    euclidean_distances,
    pairwise_distances,
)
from repro.knn.progressive import CurvePoint, ProgressiveOneNN

__all__ = [
    "BruteForceKNN",
    "CurvePoint",
    "IVFFlatIndex",
    "KMeans",
    "NeighborCache",
    "ProgressiveOneNN",
    "cosine_distances",
    "euclidean_distances",
    "pairwise_distances",
]
