"""Strawman downscaled-proxy estimators (Introduction and Figure 2 right).

A tempting shortcut for a feasibility study is to train a cheap proxy
model and scale its error down — either by a constant or by plugging the
proxy error into the Cover–Hart formula as if it were a 1NN error.  The
paper shows both quickly fall into the worst-case regime: unlike the 1NN
error, a proxy model's error carries no distributional relationship to
the BER, so the scaled value can severely over- or under-shoot.  These
helpers exist so the benchmark for Figure 2 can demonstrate exactly that.
"""

from __future__ import annotations

from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError


def constant_downscale(proxy_error: float, factor: float) -> float:
    """The ``alpha_est = c * alpha_proxy`` strawman, expressed on errors.

    ``factor`` > 1 divides the proxy error (i.e. scales the projected
    accuracy up); the challenge the paper highlights is that no single
    factor is right across datasets and proxies.
    """
    if not 0.0 <= proxy_error <= 1.0:
        raise DataValidationError(
            f"proxy_error must be in [0, 1], got {proxy_error}"
        )
    if factor < 1.0:
        raise DataValidationError(f"factor must be >= 1, got {factor}")
    return proxy_error / factor


def plug_into_cover_hart(proxy_error: float, num_classes: int) -> float:
    """Normalize a proxy error through Eq. 2 as if it were a 1NN error.

    Valid for the 1NN error (Cover–Hart); for arbitrary classifiers the
    result is only guaranteed to be within the Eq. 2 scaling factor of
    the truth — the worst-case regime of Section IV-B.
    """
    return cover_hart_lower_bound(proxy_error, num_classes)
