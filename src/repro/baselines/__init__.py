"""Baseline systems the paper compares Snoopy against (Section VI-A).

- :mod:`repro.baselines.logistic_regression` — the cheap-proxy baseline:
  a from-scratch softmax regression trained (with the paper's SGD
  settings and hyper-parameter grid) on every catalog embedding.
- :mod:`repro.baselines.mlp` — a small numpy MLP used by the AutoML
  simulator and the fine-tune analogue.
- :mod:`repro.baselines.model_zoo` — further from-scratch classifiers
  (nearest centroid, Gaussian naive Bayes, ridge, kNN) forming the
  AutoML search space.
- :mod:`repro.baselines.automl` — a budgeted AutoML simulator standing
  in for AutoKeras / auto-sklearn.
- :mod:`repro.baselines.finetune` — the expensive "fine-tune a SOTA
  model" reference baseline.
- :mod:`repro.baselines.proxy` — the strawman downscaled-proxy
  estimators of Figure 2 (right).
"""

from repro.baselines.automl import AutoMLResult, AutoMLSimulator
from repro.baselines.finetune import FineTuneBaseline, FineTuneResult
from repro.baselines.logistic_regression import (
    LogisticRegressionBaseline,
    LRBaselineResult,
    SoftmaxRegression,
)
from repro.baselines.mlp import TwoLayerMLP
from repro.baselines.model_zoo import (
    GaussianNaiveBayes,
    KNNClassifierModel,
    NearestCentroidClassifier,
    RidgeClassifier,
)
from repro.baselines.proxy import (
    constant_downscale,
    plug_into_cover_hart,
)

__all__ = [
    "AutoMLResult",
    "AutoMLSimulator",
    "FineTuneBaseline",
    "FineTuneResult",
    "GaussianNaiveBayes",
    "KNNClassifierModel",
    "LogisticRegressionBaseline",
    "LRBaselineResult",
    "NearestCentroidClassifier",
    "RidgeClassifier",
    "SoftmaxRegression",
    "TwoLayerMLP",
    "constant_downscale",
    "plug_into_cover_hart",
]
