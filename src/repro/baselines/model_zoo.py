"""From-scratch classifiers forming the AutoML simulator's search space.

Every model implements the same minimal protocol:
``fit(x, y, num_classes)``, ``predict(x)``, ``error(x, y)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.base import KNNIndex, make_index


class _ZooModel:
    """Shared validation and error helper."""

    @staticmethod
    def _validate(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2:
            raise DataValidationError("features must be 2-D")
        if len(x) != len(y):
            raise DataValidationError("x and y length mismatch")
        if len(x) == 0:
            raise DataValidationError("training set must be non-empty")
        return x, y

    def error(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) != np.asarray(y)))


class NearestCentroidClassifier(_ZooModel):
    """Classify to the closest class centroid."""

    def __init__(self) -> None:
        self._centroids: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, num_classes: int
    ) -> "NearestCentroidClassifier":
        x, y = self._validate(x, y)
        classes = np.unique(y)
        self._centroids = np.stack([x[y == cls].mean(axis=0) for cls in classes])
        self._classes = classes
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._centroids is None or self._classes is None:
            raise DataValidationError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        sq = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ self._centroids.T
            + np.sum(self._centroids**2, axis=1)[None, :]
        )
        return self._classes[np.argmin(sq, axis=1)]


class GaussianNaiveBayes(_ZooModel):
    """Diagonal-covariance Gaussian naive Bayes with empirical priors."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, num_classes: int
    ) -> "GaussianNaiveBayes":
        x, y = self._validate(x, y)
        classes = np.unique(y)
        means, variances, priors = [], [], []
        floor = self.var_smoothing * float(x.var())
        for cls in classes:
            subset = x[y == cls]
            means.append(subset.mean(axis=0))
            variances.append(subset.var(axis=0) + max(floor, 1e-12))
            priors.append(len(subset) / len(x))
        self._means = np.stack(means)
        self._variances = np.stack(variances)
        self._log_priors = np.log(np.array(priors))
        self._classes = classes
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._means is None:
            raise DataValidationError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        log_likelihood = np.empty((len(x), len(self._classes)))
        for i in range(len(self._classes)):
            diff = x - self._means[i]
            log_likelihood[:, i] = -0.5 * np.sum(
                diff**2 / self._variances[i] + np.log(2 * np.pi * self._variances[i]),
                axis=1,
            )
        return self._classes[np.argmax(log_likelihood + self._log_priors, axis=1)]


class RidgeClassifier(_ZooModel):
    """One-vs-rest least squares with L2 regularization (closed form)."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise DataValidationError("alpha must be non-negative")
        self.alpha = alpha
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray, num_classes: int) -> "RidgeClassifier":
        x, y = self._validate(x, y)
        self._mean = x.mean(axis=0)
        centered = x - self._mean
        targets = -np.ones((len(y), num_classes))
        targets[np.arange(len(y)), y] = 1.0
        gram = centered.T @ centered + self.alpha * np.eye(x.shape[1])
        self._weights = np.linalg.solve(gram, centered.T @ targets)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None or self._mean is None:
            raise DataValidationError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        return np.argmax((x - self._mean) @ self._weights, axis=1)


class KNNClassifierModel(_ZooModel):
    """kNN classifier over a pluggable index (exact by default)."""

    def __init__(
        self,
        k: int = 5,
        metric: str = "euclidean",
        backend: str = "brute_force",
    ):
        if k < 1:
            raise DataValidationError("k must be >= 1")
        self.k = k
        self.metric = metric
        self.backend = backend
        self._index: KNNIndex | None = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, num_classes: int
    ) -> "KNNClassifierModel":
        x, y = self._validate(x, y)
        self._index = make_index(self.backend, metric=self.metric).fit(x, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._index is None:
            raise DataValidationError("model is not fitted")
        k = min(self.k, self._index.num_fitted)
        return self._index.predict(np.asarray(x, dtype=np.float64), k=k)
