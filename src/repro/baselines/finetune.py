"""The expensive "fine-tune a SOTA model" baseline (Baseline 3).

The paper fine-tunes EfficientNet-B4 (vision) or BERT-Base (text) — a
reference point with strong prior knowledge and a dominating compute
cost (~10 GPU-hours per configuration on CIFAR100).  The analogue here
trains a larger MLP on the *highest-fidelity* catalog embedding over a
small learning-rate grid, and bills a simulated cost matching the
fine-tune regime: a large per-sample-per-epoch constant times the grid.

The result is an actual trained model's test error — achievable accuracy,
not an estimate — which is what the end-to-end cleaning loop consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.mlp import TwoLayerMLP
from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng
from repro.transforms.store import EmbeddingStore, embed_or_transform

#: Simulated accelerator seconds per (sample x epoch) of fine-tuning a
#: large model — orders of magnitude above embedding inference.
FINETUNE_COST_PER_SAMPLE_EPOCH = 2e-3


@dataclass
class FineTuneResult:
    """Outcome of one expensive fine-tune run."""

    test_error: float
    sim_cost_seconds: float
    wall_seconds: float
    embedding_name: str
    learning_rate: float

    @property
    def test_accuracy(self) -> float:
        return 1.0 - self.test_error


class FineTuneBaseline:
    """Fine-tune analogue: a big head on the best available embedding.

    Parameters
    ----------
    catalog:
        Transformation catalog; the entry with the highest fidelity (or,
        lacking fidelity attributes, the last entry) plays the role of
        the pre-trained backbone being fine-tuned.
    learning_rates:
        The small grid the paper sweeps (3 values for BERT).
    num_epochs:
        Head training epochs per grid point.
    """

    def __init__(
        self,
        catalog,
        learning_rates: tuple[float, ...] = (0.01, 0.03, 0.1),
        num_epochs: int = 30,
        hidden_units: int = 128,
        seed: SeedLike = None,
        store: EmbeddingStore | None = None,
    ):
        self.catalog = list(catalog)
        if not self.catalog:
            raise DataValidationError("catalog must not be empty")
        self.learning_rates = learning_rates
        self.num_epochs = num_epochs
        self.hidden_units = hidden_units
        self.store = store
        self._seed = seed

    def backbone(self):
        """The highest-fidelity transform in the catalog."""
        return max(
            self.catalog, key=lambda t: getattr(t, "fidelity", -1.0)
        )

    def run(self, dataset) -> FineTuneResult:
        started = time.perf_counter()
        rng = ensure_rng(self._seed)
        backbone = self.backbone()
        if not backbone.fitted:
            backbone.fit(dataset.train_x)
        train_f = embed_or_transform(self.store, backbone, dataset.train_x)
        test_f = embed_or_transform(self.store, backbone, dataset.test_x)
        best_error = np.inf
        best_lr = self.learning_rates[0]
        for lr in self.learning_rates:
            model = TwoLayerMLP(
                hidden_units=self.hidden_units,
                learning_rate=lr,
                num_epochs=self.num_epochs,
                seed=rng,
            ).fit(train_f, dataset.train_y, dataset.num_classes)
            error = model.error(test_f, dataset.test_y)
            if error < best_error:
                best_error, best_lr = error, lr
        sim_cost = (
            FINETUNE_COST_PER_SAMPLE_EPOCH
            * dataset.num_train
            * self.num_epochs
            * len(self.learning_rates)
        )
        return FineTuneResult(
            test_error=float(best_error),
            sim_cost_seconds=sim_cost,
            wall_seconds=time.perf_counter() - started,
            embedding_name=backbone.name,
            learning_rate=best_lr,
        )
