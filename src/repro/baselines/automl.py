"""A budgeted AutoML simulator (stand-in for AutoKeras / auto-sklearn).

Searches a configuration space of from-scratch models with a simulated
compute budget.  Like the real systems in the paper's evaluation:

- it consumes far more (simulated) compute than Snoopy, because every
  candidate is an actual training run;
- its output corresponds to a *concrete model* achieving the reported
  accuracy — exactly the property that distinguishes AutoML from a
  feasibility study (Section IV-A);
- run on raw features it mimics AutoKeras; run on an embedding it mimics
  auto-sklearn over pre-computed representations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.logistic_regression import SoftmaxRegression
from repro.baselines.mlp import TwoLayerMLP
from repro.baselines.model_zoo import (
    GaussianNaiveBayes,
    KNNClassifierModel,
    NearestCentroidClassifier,
    RidgeClassifier,
)
from repro.exceptions import BudgetError
from repro.rng import SeedLike, ensure_rng

#: Simulated accelerator seconds per (sample x epoch-equivalent) for each
#: candidate family; tree of relative costs, not absolute hardware truth.
_FAMILY_COST = {
    "nearest_centroid": 5e-7,
    "naive_bayes": 5e-7,
    "ridge": 1e-6,
    "knn": 2e-6,
    "logistic_regression": 4e-5,
    "mlp": 2e-4,
}


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the AutoML search space."""

    family: str
    params: tuple[tuple[str, float | int], ...] = ()

    def build(self, seed):
        params = dict(self.params)
        if self.family == "nearest_centroid":
            return NearestCentroidClassifier()
        if self.family == "naive_bayes":
            return GaussianNaiveBayes()
        if self.family == "ridge":
            return RidgeClassifier(**params)
        if self.family == "knn":
            return KNNClassifierModel(**params)
        if self.family == "logistic_regression":
            return SoftmaxRegression(seed=seed, **params)
        if self.family == "mlp":
            return TwoLayerMLP(seed=seed, **params)
        raise BudgetError(f"unknown candidate family {self.family!r}")

    def sim_cost(self, num_train: int) -> float:
        return _FAMILY_COST[self.family] * num_train


def default_search_space() -> list[CandidateConfig]:
    """The simulator's default configuration grid (18 candidates)."""
    space: list[CandidateConfig] = [
        CandidateConfig("nearest_centroid"),
        CandidateConfig("naive_bayes"),
    ]
    for alpha in (0.1, 1.0, 10.0):
        space.append(CandidateConfig("ridge", (("alpha", alpha),)))
    for k in (1, 5, 15):
        space.append(CandidateConfig("knn", (("k", k),)))
    for lr in (0.01, 0.1):
        space.append(
            CandidateConfig("logistic_regression", (("learning_rate", lr),))
        )
    for hidden in (32, 64, 128):
        for lr in (0.01, 0.05):
            space.append(
                CandidateConfig(
                    "mlp", (("hidden_units", hidden), ("learning_rate", lr))
                )
            )
    return space


@dataclass
class AutoMLResult:
    """Outcome of one AutoML run."""

    best_error: float
    best_config: CandidateConfig
    sim_cost_seconds: float
    wall_seconds: float
    evaluations: int
    trace: list[tuple[str, float]] = field(default_factory=list)

    @property
    def best_accuracy(self) -> float:
        return 1.0 - self.best_error


class AutoMLSimulator:
    """Budgeted model search over the default candidate space.

    Parameters
    ----------
    sim_budget_seconds:
        Simulated compute budget; candidates are evaluated in a random
        order until it is exhausted (at least one always runs).
    search_space:
        Override the candidate list.
    """

    def __init__(
        self,
        sim_budget_seconds: float = 3600.0,
        search_space: list[CandidateConfig] | None = None,
        seed: SeedLike = None,
    ):
        if sim_budget_seconds <= 0:
            raise BudgetError("sim_budget_seconds must be positive")
        self.sim_budget_seconds = sim_budget_seconds
        self.search_space = search_space or default_search_space()
        self._seed = seed

    def run(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> AutoMLResult:
        started = time.perf_counter()
        rng = ensure_rng(self._seed)
        order = rng.permutation(len(self.search_space))
        best_error = np.inf
        best_config = self.search_space[order[0]]
        spent = 0.0
        evaluations = 0
        trace: list[tuple[str, float]] = []
        for idx in order:
            config = self.search_space[idx]
            cost = config.sim_cost(len(train_x))
            if evaluations > 0 and spent + cost > self.sim_budget_seconds:
                continue
            model = config.build(seed=rng)
            model.fit(train_x, train_y, num_classes)
            error = model.error(test_x, test_y)
            spent += cost
            evaluations += 1
            trace.append((config.family, error))
            if error < best_error:
                best_error = error
                best_config = config
        return AutoMLResult(
            best_error=float(best_error),
            best_config=best_config,
            sim_cost_seconds=spent,
            wall_seconds=time.perf_counter() - started,
            evaluations=evaluations,
            trace=trace,
        )
