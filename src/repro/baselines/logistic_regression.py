"""Softmax (multinomial logistic) regression and the LR-proxy baseline.

The paper's Baseline 1 trains a logistic regression on top of every
pre-computed embedding with SGD (momentum 0.9, mini-batch 64, 20 epochs)
and selects the minimal test error over a grid of learning rates
{0.001, 0.01, 0.1} and L2 penalties {0, 0.001, 0.01}.  This module
implements both the model (pure numpy) and that exact protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng
from repro.transforms.store import EmbeddingStore, embed_or_transform

LEARNING_RATE_GRID = (0.001, 0.01, 0.1)
L2_GRID = (0.0, 0.001, 0.01)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    encoded = np.zeros((len(labels), num_classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


class SoftmaxRegression:
    """Multinomial logistic regression trained with momentum SGD."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        l2: float = 0.0,
        num_epochs: int = 20,
        batch_size: int = 64,
        momentum: float = 0.9,
        seed: SeedLike = None,
    ):
        if learning_rate <= 0:
            raise DataValidationError("learning_rate must be positive")
        if l2 < 0:
            raise DataValidationError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.momentum = momentum
        self._seed = seed
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, num_classes: int
    ) -> "SoftmaxRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise DataValidationError("x and y length mismatch")
        rng = ensure_rng(self._seed)
        dim = x.shape[1]
        weights = np.zeros((dim, num_classes))
        bias = np.zeros(num_classes)
        vel_w = np.zeros_like(weights)
        vel_b = np.zeros_like(bias)
        targets = _one_hot(y, num_classes)
        batch = min(self.batch_size, len(x))
        for _ in range(self.num_epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x), batch):
                idx = order[start : start + batch]
                logits = x[idx] @ weights + bias
                probs = _softmax(logits)
                grad_logits = (probs - targets[idx]) / len(idx)
                grad_w = x[idx].T @ grad_logits + self.l2 * weights
                grad_b = grad_logits.sum(axis=0)
                vel_w = self.momentum * vel_w - self.learning_rate * grad_w
                vel_b = self.momentum * vel_b - self.learning_rate * grad_b
                weights += vel_w
                bias += vel_b
        self._weights, self._bias = weights, bias
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None or self._bias is None:
            raise DataValidationError("model is not fitted")
        logits = np.asarray(x, dtype=np.float64) @ self._weights + self._bias
        return np.argmax(logits, axis=1)

    def error(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) != np.asarray(y)))


#: Simulated accelerator seconds per (sample x epoch) of LR training.
_LR_TRAIN_COST_PER_SAMPLE_EPOCH = 2e-6


@dataclass
class LRBaselineResult:
    """Outcome of the LR-proxy feasibility baseline."""

    best_error: float
    best_transform: str
    errors_by_transform: dict[str, float]
    sim_cost_seconds: float
    wall_seconds: float
    grid_evaluations: int = 0
    details: dict = field(default_factory=dict)

    @property
    def best_accuracy(self) -> float:
        return 1.0 - self.best_error


class LogisticRegressionBaseline:
    """Baseline 1: LR on every embedding, grid-searched, min test error.

    All embeddings are computed exactly once up front (the paper's
    assumption), so the simulated cost is full-catalog inference plus
    ``grid_size`` LR trainings per embedding.
    """

    def __init__(
        self,
        catalog,
        num_epochs: int = 20,
        batch_size: int = 64,
        seed: SeedLike = None,
        learning_rates: tuple[float, ...] = LEARNING_RATE_GRID,
        l2_values: tuple[float, ...] = L2_GRID,
        store: EmbeddingStore | None = None,
    ):
        self.catalog = list(catalog)
        if not self.catalog:
            raise DataValidationError("catalog must not be empty")
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.learning_rates = learning_rates
        self.l2_values = l2_values
        self.store = store
        self._seed = seed

    def run(self, dataset) -> LRBaselineResult:
        started = time.perf_counter()
        rng = ensure_rng(self._seed)
        sim_cost = 0.0
        errors: dict[str, float] = {}
        evaluations = 0
        num_samples = dataset.num_train + dataset.num_test
        for transform in self.catalog:
            if not transform.fitted:
                transform.fit(dataset.train_x)
            train_f = embed_or_transform(self.store, transform, dataset.train_x)
            test_f = embed_or_transform(self.store, transform, dataset.test_x)
            sim_cost += transform.inference_cost(num_samples)
            best = np.inf
            for lr in self.learning_rates:
                for l2 in self.l2_values:
                    model = SoftmaxRegression(
                        learning_rate=lr,
                        l2=l2,
                        num_epochs=self.num_epochs,
                        batch_size=self.batch_size,
                        seed=rng,
                    ).fit(train_f, dataset.train_y, dataset.num_classes)
                    best = min(best, model.error(test_f, dataset.test_y))
                    evaluations += 1
                    sim_cost += (
                        _LR_TRAIN_COST_PER_SAMPLE_EPOCH
                        * dataset.num_train
                        * self.num_epochs
                    )
            errors[transform.name] = float(best)
        best_transform = min(errors, key=errors.get)
        return LRBaselineResult(
            best_error=errors[best_transform],
            best_transform=best_transform,
            errors_by_transform=errors,
            sim_cost_seconds=sim_cost,
            wall_seconds=time.perf_counter() - started,
            grid_evaluations=evaluations,
        )
