"""A small two-layer MLP (numpy, momentum SGD, ReLU, softmax CE).

Used by the AutoML simulator's search space and by the fine-tune
baseline (where it stands in for the classification head of a large
fine-tuned model).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng


class TwoLayerMLP:
    """ReLU MLP with one hidden layer, trained by momentum SGD."""

    def __init__(
        self,
        hidden_units: int = 64,
        learning_rate: float = 0.05,
        l2: float = 1e-4,
        num_epochs: int = 30,
        batch_size: int = 64,
        momentum: float = 0.9,
        seed: SeedLike = None,
    ):
        if hidden_units < 1:
            raise DataValidationError("hidden_units must be >= 1")
        if learning_rate <= 0:
            raise DataValidationError("learning_rate must be positive")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.l2 = l2
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.momentum = momentum
        self._seed = seed
        self._params: dict[str, np.ndarray] | None = None

    def fit(self, x: np.ndarray, y: np.ndarray, num_classes: int) -> "TwoLayerMLP":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise DataValidationError("x and y length mismatch")
        rng = ensure_rng(self._seed)
        dim = x.shape[1]
        params = {
            "w1": rng.normal(scale=np.sqrt(2.0 / dim), size=(dim, self.hidden_units)),
            "b1": np.zeros(self.hidden_units),
            "w2": rng.normal(
                scale=np.sqrt(2.0 / self.hidden_units),
                size=(self.hidden_units, num_classes),
            ),
            "b2": np.zeros(num_classes),
        }
        velocity = {key: np.zeros_like(val) for key, val in params.items()}
        targets = np.zeros((len(y), num_classes))
        targets[np.arange(len(y)), y] = 1.0
        batch = min(self.batch_size, len(x))
        for _ in range(self.num_epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x), batch):
                idx = order[start : start + batch]
                grads = self._gradients(x[idx], targets[idx], params)
                for key in params:
                    velocity[key] = (
                        self.momentum * velocity[key]
                        - self.learning_rate * grads[key]
                    )
                    params[key] += velocity[key]
        self._params = params
        return self

    def _gradients(
        self, x: np.ndarray, targets: np.ndarray, params: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        hidden_pre = x @ params["w1"] + params["b1"]
        hidden = np.maximum(hidden_pre, 0.0)
        logits = hidden @ params["w2"] + params["b2"]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        grad_logits = (probs - targets) / len(x)
        grad_w2 = hidden.T @ grad_logits + self.l2 * params["w2"]
        grad_b2 = grad_logits.sum(axis=0)
        grad_hidden = grad_logits @ params["w2"].T
        grad_hidden[hidden_pre <= 0.0] = 0.0
        grad_w1 = x.T @ grad_hidden + self.l2 * params["w1"]
        grad_b1 = grad_hidden.sum(axis=0)
        return {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise DataValidationError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        hidden = np.maximum(x @ self._params["w1"] + self._params["b1"], 0.0)
        logits = hidden @ self._params["w2"] + self._params["b2"]
        return np.argmax(logits, axis=1)

    def error(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) != np.asarray(y)))
