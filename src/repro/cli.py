"""Command-line interface for the feasibility-study system.

Usage (after ``pip install -e .``)::

    python -m repro datasets
    python -m repro catalog cifar10
    python -m repro study cifar10 --target 0.95 --noise 0.2
    python -m repro study cifar10 --target 0.95 --store-dir ~/.cache/repro/store
    python -m repro clean-loop cifar100 --target 0.8 --noise 0.4 --regime cheap
    python -m repro feebee cifar10 --estimator 1nn --estimator kde
    python -m repro store stats
    python -m repro store clear

Every subcommand prints plain text; ``study --json`` emits the full
report as JSON for downstream tooling.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cleaning.costs import LABEL_REGIMES
from repro.core.engine import backend_names
from repro.core.snoopy import STRATEGIES, Snoopy, SnoopyConfig
from repro.exceptions import DataValidationError
from repro.knn.base import available_backends
from repro.knn.kernels import DEFAULT_COMPUTE_DTYPE, VALID_COMPUTE_DTYPES
from repro.datasets import dataset_names, load
from repro.datasets.catalog import DATASET_SPECS
from repro.estimators import ESTIMATOR_REGISTRY, get_estimator
from repro.reporting.tables import render_table
from repro.transforms.catalog import catalog_for


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snoopy feasibility studies on synthetic paper-dataset "
        "analogues (ICDE 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the available datasets (Table I)")

    catalog_cmd = sub.add_parser(
        "catalog", help="list the transformation catalog for a dataset"
    )
    _add_dataset_args(catalog_cmd)

    study = sub.add_parser("study", help="run a feasibility study")
    _add_dataset_args(study)
    study.add_argument(
        "--target", type=float, required=True,
        help="target accuracy in (0, 1]",
    )
    study.add_argument(
        "--noise", type=float, default=0.0,
        help="uniform label-noise level rho to inject (default 0)",
    )
    study.add_argument(
        "--strategy", choices=STRATEGIES,
        default="successive_halving_tangent",
        help="allocation strategy (default: successive_halving_tangent)",
    )
    study.add_argument(
        "--max-embeddings", type=int, default=None,
        help="truncate the pre-trained catalog for speed",
    )
    study.add_argument(
        "--knn-backend", choices=available_backends(), default=None,
        help="nearest-neighbor backend for the streamed 1NN evaluators "
        "(default: built-in exact scan; 'ivf_pq' is the compressed "
        "product-quantization index)",
    )
    study.add_argument(
        "--pq-m", type=int, default=None,
        help="ivf_pq: PQ subspaces per vector (default: backend's 8)",
    )
    study.add_argument(
        "--pq-nbits", type=int, default=None,
        help="ivf_pq: bits per PQ code (default: backend's 8)",
    )
    study.add_argument(
        "--pq-dim", type=int, default=None,
        help="ivf_pq: project residuals to this many dims before "
        "quantizing (recommended for wide embeddings; default: off)",
    )
    study.add_argument(
        "--nprobe", type=int, default=None,
        help="ivf/ivf_pq: coarse partitions probed per query "
        "(default: backend's)",
    )
    study.add_argument(
        "--rerank", type=int, default=None,
        help="ivf_pq: candidates re-scored exactly per query; "
        "0 disables re-ranking (default: backend's 32)",
    )
    study.add_argument(
        "--pq-packed", action="store_true",
        help="ivf_pq: pack two 4-bit PQ codes per byte and scan with "
        "the uint8 fast-scan kernel (requires --pq-nbits 4)",
    )
    study.add_argument(
        "--knn-shards", type=int, default=None,
        help="ivf/ivf_pq: shard the inverted lists across this many "
        "scan tasks (bit-identical results for any shard count)",
    )
    _add_engine_args(study)
    _add_store_args(study)
    study.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    loop = sub.add_parser(
        "clean-loop", help="run the end-to-end cleaning use case"
    )
    _add_dataset_args(loop)
    loop.add_argument("--target", type=float, required=True)
    loop.add_argument("--noise", type=float, default=0.4)
    loop.add_argument(
        "--regime", choices=sorted(LABEL_REGIMES), default="cheap",
        help="label-cost regime (default: cheap)",
    )
    loop.add_argument(
        "--step", type=float, default=0.01,
        help="cleaning step fraction per iteration (default 0.01)",
    )
    _add_cache_arg(loop)

    feebee = sub.add_parser(
        "feebee", help="evaluate BER estimators over a noise series"
    )
    _add_dataset_args(feebee)
    feebee.add_argument(
        "--estimator", action="append", default=None,
        choices=sorted(ESTIMATOR_REGISTRY),
        help="estimator(s) to evaluate (default: 1nn)",
    )

    store_cmd = sub.add_parser(
        "store", help="inspect or prune a persistent embedding-store dir"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    for name, text in (
        ("stats", "summarize the cached block files"),
        ("clear", "delete every cached block file"),
        ("path", "print the resolved store directory"),
    ):
        cmd = store_sub.add_parser(name, help=text)
        cmd.add_argument(
            "--store-dir", default=None,
            help="spill directory (default: $REPRO_STORE_DIR or "
            "~/.cache/repro/store)",
        )
    return parser


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--execution-backend", choices=backend_names(), default="serial",
        help="how independent arm pulls run within a round "
        "(default: serial; results are identical across backends)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="worker cap for parallel backends (default: available cores)",
    )
    _add_cache_arg(parser)


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-dir", default=None,
        help="persistent spill directory for the embedding store; a "
        "warm directory serves repeat runs with zero transform calls "
        "(default: memory-only caching)",
    )
    parser.add_argument(
        "--store-hot-mb", type=int, default=None,
        help="in-memory (hot tier) budget in MiB; alias of "
        "--embedding-cache-mb and takes precedence when both are given",
    )
    parser.add_argument(
        "--store-spill-mb", type=int, default=None,
        help="on-disk (spill tier) budget in MiB (default 1024)",
    )


def _add_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--embedding-cache-mb", type=int, default=256,
        help="shared embedding-store budget in MiB; 0 disables caching "
        "(default 256)",
    )
    parser.add_argument(
        "--dtype", choices=VALID_COMPUTE_DTYPES,
        default=DEFAULT_COMPUTE_DTYPE,
        help="compute precision for distance kernels and cached "
        "embeddings (default: float32; float64 is the strict mode)",
    )


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", choices=dataset_names())
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="fraction of the paper's split sizes (default 0.02)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _cmd_datasets() -> int:
    rows = [
        [
            spec.name, spec.modality, spec.num_classes,
            spec.paper_train, spec.paper_test,
            f"{100 * spec.sota_error:.2f}%", spec.sota_reference,
        ]
        for spec in DATASET_SPECS.values()
    ]
    print(render_table(
        ["name", "modality", "classes", "train", "test", "SOTA err",
         "reference"],
        rows,
        title="Available datasets (Table I analogues)",
    ))
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    catalog = catalog_for(dataset, seed=args.seed)
    rows = [
        [
            transform.name,
            transform.output_dim,
            getattr(transform, "paper_dim", ""),
            getattr(transform, "fidelity", ""),
            f"{transform.cost_per_sample:.1e}",
            getattr(transform, "source", "classical"),
        ]
        for transform in catalog
    ]
    print(render_table(
        ["transform", "sim dim", "paper dim", "fidelity", "cost/sample",
         "source"],
        rows,
        title=f"Transformation catalog for {dataset.name} "
              f"({dataset.modality})",
    ))
    return 0


def _prepare_dataset(args: argparse.Namespace, noise: float):
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    if noise > 0:
        from repro.cleaning.workflow import make_noisy_dataset

        dataset = make_noisy_dataset(dataset, noise, rng=args.seed)
    return dataset


def _cmd_study(args: argparse.Namespace) -> int:
    if not 0.0 < args.target <= 1.0:
        print("error: --target must be in (0, 1]", file=sys.stderr)
        return 2
    dataset = _prepare_dataset(args, args.noise)
    catalog = catalog_for(
        dataset, seed=args.seed, max_embeddings=args.max_embeddings
    )
    hot_mb = (
        args.store_hot_mb
        if args.store_hot_mb is not None
        else args.embedding_cache_mb
    )
    config_kwargs = {
        "strategy": args.strategy,
        "seed": args.seed,
        "execution_backend": args.execution_backend,
        "max_workers": args.max_workers,
        "embedding_cache_bytes": hot_mb * 2**20,
        "store_dir": args.store_dir,
        "store_spill_bytes": (
            None if args.store_spill_mb is None
            else args.store_spill_mb * 2**20
        ),
        "compute_dtype": args.dtype,
        "knn_backend": args.knn_backend,
        "pq_m": args.pq_m,
        "pq_nbits": args.pq_nbits,
        "pq_dim": args.pq_dim,
        "nprobe": args.nprobe,
        "rerank": args.rerank,
        "pq_packed": args.pq_packed,
        "knn_shards": args.knn_shards,
    }
    if args.knn_backend in ("ivf", "ivf_pq"):
        # The quantizer backends are euclidean-only; pin the metric so
        # "auto" cannot resolve to cosine on text datasets and fail
        # mid-run.
        config_kwargs["metric"] = "euclidean"
    if args.strategy == "perfect":
        print("error: strategy 'perfect' needs oracle knowledge; "
              "use it from the API", file=sys.stderr)
        return 2
    try:
        config = SnoopyConfig(**config_kwargs)
    except DataValidationError as error:
        # e.g. an ANN knob set without a backend that consumes it.
        print(f"error: {error}", file=sys.stderr)
        return 2
    with Snoopy(catalog, config) as system:
        report = system.run(dataset, target_accuracy=args.target)
    if args.json:
        from repro.reporting.serialize import report_to_json

        print(report_to_json(report))
    else:
        print(report.summary())
        print()
        rows = [
            [r.transform_name, r.samples_used, round(r.one_nn_error, 4),
             round(r.estimate.value, 4)]
            for r in sorted(
                report.per_transform, key=lambda r: r.estimate.value
            )
        ]
        print(render_table(
            ["transform", "samples", "1nn error", "estimate"], rows,
        ))
    return 0


def _cmd_clean_loop(args: argparse.Namespace) -> int:
    from repro.baselines.finetune import FineTuneBaseline
    from repro.cleaning.costs import CostModel
    from repro.cleaning.simulator import CleaningSession
    from repro.cleaning.strategies import run_with_feasibility_study
    from repro.transforms.store import EmbeddingStore

    dataset = _prepare_dataset(args, args.noise)
    if not dataset.is_noisy:
        print("error: clean-loop needs --noise > 0", file=sys.stderr)
        return 2
    catalog = catalog_for(dataset, seed=args.seed, max_embeddings=6)
    catalog.fit(dataset.train_x)
    # One store shared by the feasibility study and the expensive
    # trainer: the test-split embedding is shared between them, and any
    # repeated expensive run (cooldown retries; features never change,
    # only labels) re-embeds nothing.  Train-pool blocks are not shared
    # across the two — the study embeds the *permuted* pool.
    store = (
        EmbeddingStore(args.embedding_cache_mb * 2**20, dtype=args.dtype)
        if args.embedding_cache_mb
        else None
    )
    trainer = FineTuneBaseline(
        catalog, learning_rates=(0.05,), num_epochs=12, seed=args.seed,
        store=store,
    )
    trace = run_with_feasibility_study(
        CleaningSession(dataset, rng=args.seed), trainer,
        args.target, CostModel.for_regime(args.regime),
        feasibility="snoopy", catalog=catalog, clean_step=args.step,
        snoopy_config=SnoopyConfig(seed=args.seed, compute_dtype=args.dtype),
        store=store,
    )
    rows = [
        [p.action, f"{100 * p.fraction_examined:.1f}%",
         round(p.dollars, 4),
         "" if p.value != p.value else round(p.value, 4)]
        for p in trace.points
    ]
    print(render_table(
        ["action", "cleaned", "total $", "value"], rows,
        title=f"Snoopy-guided cleaning loop on {dataset.name} "
              f"(target {args.target}, {args.regime} labels)",
    ))
    outcome = "reached" if trace.reached_target else "did NOT reach"
    print(f"\n{outcome} target; total ${trace.total_dollars:.3f}, "
          f"{trace.num_expensive_runs} expensive run(s)")
    return 0


def _cmd_feebee(args: argparse.Namespace) -> int:
    from repro.feebee.evaluation import evaluate_estimator_over_noise

    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    catalog = catalog_for(dataset, seed=args.seed, max_embeddings=4)
    catalog.fit(dataset.train_x)
    embedding = catalog[catalog.names[-1]]
    names = args.estimator or ["1nn"]
    rows = []
    for name in names:
        evaluation = evaluate_estimator_over_noise(
            get_estimator(name), dataset, transform=embedding, rng=args.seed
        )
        rows.append([
            evaluation.estimator_name,
            round(evaluation.mean_absolute_deviation(), 4),
            round(evaluation.root_mean_squared_deviation(), 4),
            round(evaluation.slope_fidelity(), 3),
        ])
    print(render_table(
        ["estimator", "MAD", "RMSD", "slope fidelity"], rows,
        title=f"FeeBee noise-series evaluation on {dataset.name} "
              f"({embedding.name})",
    ))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.transforms.store import (
        clear_spill_dir,
        default_store_dir,
        scan_spill_dir,
    )

    directory = args.store_dir or default_store_dir()
    if args.store_command == "path":
        print(directory)
        return 0
    if args.store_command == "clear":
        files, reclaimed = clear_spill_dir(directory)
        print(f"removed {files} block file(s), "
              f"reclaimed {reclaimed / 2**20:.1f} MiB from {directory}")
        return 0
    entries = scan_spill_dir(directory)
    if not entries:
        print(f"store {directory}: empty (no cached block files)")
        return 0
    total = sum(entry["bytes"] for entry in entries)
    rows = [
        [entry["file"], entry["dtype"], entry["shape"],
         f"{entry['bytes'] / 2**10:.1f}"]
        for entry in entries
    ]
    print(render_table(
        ["file", "dtype", "shape", "KiB"], rows,
        title=f"store {directory}: {len(entries)} block file(s), "
              f"{total / 2**20:.1f} MiB",
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "catalog":
        return _cmd_catalog(args)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "clean-loop":
        return _cmd_clean_loop(args)
    if args.command == "feebee":
        return _cmd_feebee(args)
    if args.command == "store":
        return _cmd_store(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
