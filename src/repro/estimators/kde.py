"""KDE plug-in estimator (Fukunaga & Hummels 1987, "Parzen procedure").

Per-class Gaussian kernel density estimates give class-conditional
densities; Bayes' rule with empirical priors yields posteriors, and the
BER is the expected complement of the maximum posterior over the test
points.  Bandwidth follows Scott's rule per class unless overridden.

As the paper (and its FeeBee companion) observe, KDE estimates degrade
quickly with dimension — this estimator exists for the cross-estimator
comparison, not as Snoopy's workhorse.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    register_estimator,
)
from repro.exceptions import DataValidationError, EstimatorError
from repro.knn.metrics import euclidean_distances


@register_estimator("kde")
class KDEEstimator(BayesErrorEstimator):
    """Plug-in BER estimate from per-class Gaussian KDE posteriors."""

    def __init__(self, bandwidth: float | None = None):
        if bandwidth is not None and bandwidth <= 0:
            raise DataValidationError(
                f"bandwidth must be positive, got {bandwidth}"
            )
        self.name = "kde"
        self.bandwidth = bandwidth

    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        train_x, train_y, test_x, test_y = self._validate(
            train_x, train_y, test_x, test_y, num_classes
        )
        dim = train_x.shape[1]
        log_joint = np.full((len(test_x), num_classes), -np.inf)
        present = 0
        for cls in range(num_classes):
            mask = train_y == cls
            count = int(mask.sum())
            if count == 0:
                continue
            present += 1
            bandwidth = self.bandwidth or self._scott_bandwidth(
                train_x[mask], count, dim
            )
            sq = euclidean_distances(test_x, train_x[mask]) ** 2
            log_kernel = -sq / (2.0 * bandwidth**2)
            # log p(x | y) up to the shared (2 pi h^2)^{-d/2} constant,
            # which cancels in the posterior when bandwidths are equal;
            # with per-class bandwidths, include the normalization.
            log_density = (
                logsumexp(log_kernel, axis=1)
                - np.log(count)
                - dim * np.log(bandwidth)
            )
            log_prior = np.log(count / len(train_y))
            log_joint[:, cls] = log_density + log_prior
        if present < 2:
            raise EstimatorError("kde: need at least two classes present in train")
        log_norm = logsumexp(log_joint, axis=1, keepdims=True)
        posteriors = np.exp(log_joint - log_norm)
        value = float(np.mean(1.0 - posteriors.max(axis=1)))
        return BEREstimate(value=value, details={"bandwidth": self.bandwidth})

    @staticmethod
    def _scott_bandwidth(points: np.ndarray, count: int, dim: int) -> float:
        spread = float(np.mean(points.std(axis=0)))
        scale = max(spread, 1e-6)
        return scale * count ** (-1.0 / (dim + 4))
