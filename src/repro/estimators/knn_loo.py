"""kNN leave-one-out estimator (the "1NN-kNN" family of Devijver 1985).

Estimates the BER from the leave-one-out error of a kNN classifier on
the pooled sample.  For k = 1 the Cover–Hart correction applies exactly;
for k > 1 the same normalization is used as a heuristic, following the
pragmatic treatment in the FeeBee study — asymptotically the kNN error
itself tightens toward the BER as k grows, so the correction is kept but
its looseness is recorded in the estimate details.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    register_estimator,
)
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError
from repro.knn.base import make_index


@register_estimator("knn_loo")
class KNNLooEstimator(BayesErrorEstimator):
    """Leave-one-out kNN error on the pooled sample, Cover–Hart corrected.

    ``backend`` selects the kNN index via
    :func:`repro.knn.base.make_index`; it must provide ``loo_error``
    (the exact backends "brute_force" and "incremental" do).  ``dtype``
    selects the compute precision ("float32"/"float64"; ``None`` keeps
    the strict float64 path).
    """

    def __init__(
        self,
        k: int = 5,
        metric: str = "euclidean",
        backend: str = "brute_force",
        dtype=None,
    ):
        if k < 1:
            raise DataValidationError(f"k must be >= 1, got {k}")
        self.name = f"knn_loo_k{k}"
        self.k = k
        self.metric = metric
        self.backend = backend
        self.dtype = dtype

    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        train_x, train_y, test_x, test_y = self._validate(
            train_x, train_y, test_x, test_y, num_classes
        )
        # LOO pools everything: the estimator does not need a held-out split.
        pooled_x = np.concatenate([train_x, test_x])
        pooled_y = np.concatenate([train_y, test_y])
        k = min(self.k, len(pooled_x) - 1)
        index = make_index(self.backend, metric=self.metric, dtype=self.dtype)
        if not hasattr(index, "loo_error"):
            raise DataValidationError(
                f"backend {self.backend!r} does not support leave-one-out "
                "search; use an exact backend"
            )
        index.fit(pooled_x, pooled_y)
        loo_error = index.loo_error(k=k)
        lower = cover_hart_lower_bound(loo_error, num_classes)
        return BEREstimate(
            value=lower,
            lower=lower,
            upper=loo_error,
            details={"loo_error": loo_error, "k": k, "metric": self.metric},
        )
