"""GHP: generalized Henze–Penrose divergence estimator (Sekeh et al. 2020).

For a pair of classes, the Friedman–Rafsky statistic — the number of
cross-class edges in the Euclidean minimal spanning tree over the pooled
points — consistently estimates the Henze–Penrose divergence, which in
turn brackets the pairwise Bayes error (Berisha et al. 2016):

    1/2 - 1/2 * sqrt(u)  <=  eps_ij  <=  1/2 - 1/2 * u,
    u = 4 p q D_pq + (p - q)^2,
    D_hat = max(0, 1 - R * (m + n) / (2 m n)),

with p, q the pair priors (p + q = 1 within the pair), m, n the class
sample counts and R the cross-edge count.  Multiclass bounds follow the
pairwise aggregation of Sekeh et al.: the total BER is bounded above by
the prior-weighted sum of pairwise errors and below by their maximum.

The MST is built with scipy's sparse ``minimum_spanning_tree`` on the
dense pairwise distance matrix — exact and adequate at this scale.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    register_estimator,
)
from repro.knn.metrics import euclidean_distances


def friedman_rafsky_cross_edges(
    points_a: np.ndarray, points_b: np.ndarray
) -> int:
    """Cross-class edge count of the Euclidean MST over the pooled points."""
    pooled = np.concatenate([points_a, points_b])
    membership = np.concatenate(
        [np.zeros(len(points_a), dtype=bool), np.ones(len(points_b), dtype=bool)]
    )
    dist = euclidean_distances(pooled, pooled)
    # Break exact ties deterministically so the MST is unique.
    tiny = 1e-12 * (np.arange(len(pooled))[:, None] + 1)
    mst = minimum_spanning_tree(dist + tiny)
    rows, cols = mst.nonzero()
    return int(np.sum(membership[rows] != membership[cols]))


def pairwise_ber_bounds(
    points_a: np.ndarray, points_b: np.ndarray
) -> tuple[float, float]:
    """Henze–Penrose bounds on the *pair-conditional* Bayes error."""
    m, n = len(points_a), len(points_b)
    p, q = m / (m + n), n / (m + n)
    cross = friedman_rafsky_cross_edges(points_a, points_b)
    divergence = max(0.0, 1.0 - cross * (m + n) / (2.0 * m * n))
    u = 4.0 * p * q * divergence + (p - q) ** 2
    u = min(1.0, max(0.0, u))
    lower = 0.5 - 0.5 * np.sqrt(u)
    upper = 0.5 - 0.5 * u
    return float(lower), float(upper)


@register_estimator("ghp")
class GHPEstimator(BayesErrorEstimator):
    """Multiclass BER bounds from pairwise MST statistics.

    ``value`` is the lower bound (the quantity comparable to Snoopy's R̂);
    ``upper`` is the pairwise-sum upper bound.  Class pairs are
    subsampled to ``max_points_per_class`` points each to keep the O(n^2)
    MST tractable.
    """

    def __init__(self, max_points_per_class: int = 400, seed: int = 0):
        self.name = "ghp"
        self.max_points_per_class = max_points_per_class
        self.seed = seed

    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        train_x, train_y, test_x, test_y = self._validate(
            train_x, train_y, test_x, test_y, num_classes
        )
        pooled_x = np.concatenate([train_x, test_x])
        pooled_y = np.concatenate([train_y, test_y])
        rng = np.random.default_rng(self.seed)
        per_class: list[np.ndarray] = []
        priors = np.zeros(num_classes)
        for cls in range(num_classes):
            points = pooled_x[pooled_y == cls]
            priors[cls] = len(points) / len(pooled_x)
            if len(points) > self.max_points_per_class:
                idx = rng.choice(
                    len(points), size=self.max_points_per_class, replace=False
                )
                points = points[idx]
            per_class.append(points)
        lower_total = 0.0
        upper_total = 0.0
        pair_count = 0
        for i in range(num_classes):
            if len(per_class[i]) == 0:
                continue
            for j in range(i + 1, num_classes):
                if len(per_class[j]) == 0:
                    continue
                pair_lower, pair_upper = pairwise_ber_bounds(
                    per_class[i], per_class[j]
                )
                weight = priors[i] + priors[j]
                lower_total = max(lower_total, weight * pair_lower)
                upper_total += weight * pair_upper
                pair_count += 1
        upper_total = min(1.0, upper_total)
        return BEREstimate(
            value=lower_total,
            lower=lower_total,
            upper=upper_total,
            details={"pairs_evaluated": pair_count},
        )
