"""kNN-extrapolation estimator (Snapp & Xu 1996).

Fits the asymptotic expansion of the finite-sample kNN error,
``R(n) ~ R_inf + c * n^(-2/d)``, to 1NN errors measured on a grid of
training-set sizes, and reports the fitted ``R_inf`` mapped through the
Cover–Hart bound.  As the paper notes, the sample complexity of this fit
is exponential in the intrinsic dimension, so it is included for the
estimator comparison rather than as a practical workhorse.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    register_estimator,
)
from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError, EstimatorError
from repro.knn.progressive import ProgressiveOneNN
from repro.rng import ensure_rng


@register_estimator("knn_extrapolation")
class KNNExtrapolationEstimator(BayesErrorEstimator):
    """Fit ``R(n) = R_inf + c n^(-2/d)`` to a measured 1NN curve.

    Parameters
    ----------
    num_grid_points:
        Number of training-set sizes at which the error is measured
        (geometrically spaced).
    effective_dim:
        ``d`` in the exponent; ``None`` fits it as a free parameter
        (bounded to [1, 100]).
    """

    def __init__(
        self,
        num_grid_points: int = 8,
        effective_dim: float | None = None,
        metric: str = "euclidean",
        seed: int = 0,
    ):
        if num_grid_points < 3:
            raise DataValidationError("need at least 3 grid points to fit")
        self.name = "knn_extrapolation"
        self.num_grid_points = num_grid_points
        self.effective_dim = effective_dim
        self.metric = metric
        self.seed = seed

    def measure_curve(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """1NN test errors at geometrically spaced training sizes."""
        rng = ensure_rng(self.seed)
        order = rng.permutation(len(train_x))
        sizes = np.unique(
            np.geomspace(
                max(8, len(train_x) // 2**self.num_grid_points),
                len(train_x),
                num=self.num_grid_points,
            ).astype(int)
        )
        evaluator = ProgressiveOneNN(test_x, test_y, metric=self.metric)
        errors = []
        consumed = 0
        for size in sizes:
            chunk = order[consumed:size]
            evaluator.partial_fit(train_x[chunk], train_y[chunk])
            consumed = size
            errors.append(evaluator.error())
        return sizes.astype(float), np.array(errors)

    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        train_x, train_y, test_x, test_y = self._validate(
            train_x, train_y, test_x, test_y, num_classes
        )
        sizes, errors = self.measure_curve(train_x, train_y, test_x, test_y)
        if len(sizes) < 3:
            raise EstimatorError(
                "knn_extrapolation: training set too small for a curve fit"
            )
        r_inf, coeff, dim = self._fit(sizes, errors)
        r_inf = float(np.clip(r_inf, 0.0, 1.0))
        lower = cover_hart_lower_bound(r_inf, num_classes)
        return BEREstimate(
            value=lower,
            lower=lower,
            upper=r_inf,
            details={
                "r_infinity": r_inf,
                "coefficient": coeff,
                "effective_dim": dim,
                "curve_sizes": sizes.tolist(),
                "curve_errors": errors.tolist(),
            },
        )

    def _fit(
        self, sizes: np.ndarray, errors: np.ndarray
    ) -> tuple[float, float, float]:
        if self.effective_dim is not None:
            exponent = -2.0 / self.effective_dim

            def model(n, r_inf, coeff):
                return r_inf + coeff * n**exponent

            p0 = [max(errors[-1], 1e-4), max(errors[0] - errors[-1], 1e-4)]
            bounds = ([0.0, 0.0], [1.0, np.inf])
            params, _ = curve_fit(
                model, sizes, errors, p0=p0, bounds=bounds, maxfev=20_000
            )
            return float(params[0]), float(params[1]), float(self.effective_dim)

        def model(n, r_inf, coeff, dim):
            return r_inf + coeff * n ** (-2.0 / dim)

        p0 = [max(errors[-1], 1e-4), max(errors[0] - errors[-1], 1e-4), 8.0]
        bounds = ([0.0, 0.0, 1.0], [1.0, np.inf, 100.0])
        try:
            params, _ = curve_fit(
                model, sizes, errors, p0=p0, bounds=bounds, maxfev=20_000
            )
        except RuntimeError as exc:  # curve_fit failed to converge
            raise EstimatorError(f"knn_extrapolation fit failed: {exc}") from exc
        return float(params[0]), float(params[1]), float(params[2])
