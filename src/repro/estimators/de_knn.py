"""DE-kNN: posterior plug-in density estimator (Fukunaga & Kessell 1973).

Estimates the class posterior at each evaluation point from the label
frequencies among its k nearest training neighbors, then plugs into the
BER definition ``R* = E[1 - max_y eta_y(x)]``.  Consistent as
``k -> inf, k/n -> 0``; at practical k it is biased but serves as an
independent cross-check of the 1NN estimator, as in the FeeBee study.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    register_estimator,
)
from repro.exceptions import DataValidationError
from repro.knn.base import make_index


@register_estimator("de_knn")
class DeKNNEstimator(BayesErrorEstimator):
    """Plug-in BER estimate from kNN posterior frequencies.

    ``backend`` selects the kNN index via
    :func:`repro.knn.base.make_index`; ``dtype`` the compute precision
    ("float32"/"float64"; ``None`` keeps the strict float64 path).
    """

    def __init__(
        self,
        k: int = 10,
        metric: str = "euclidean",
        backend: str = "brute_force",
        dtype=None,
    ):
        if k < 1:
            raise DataValidationError(f"k must be >= 1, got {k}")
        self.name = f"de_knn_k{k}"
        self.k = k
        self.metric = metric
        self.backend = backend
        self.dtype = dtype

    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        train_x, train_y, test_x, test_y = self._validate(
            train_x, train_y, test_x, test_y, num_classes
        )
        k = min(self.k, len(train_x))
        index = make_index(
            self.backend, metric=self.metric, dtype=self.dtype
        ).fit(train_x, train_y)
        _, neighbor_idx = index.kneighbors(test_x, k=k)
        neighbor_labels = train_y[neighbor_idx]
        counts = np.zeros((len(test_x), num_classes))
        rows = np.repeat(np.arange(len(test_x)), k)
        np.add.at(counts, (rows, neighbor_labels.ravel()), 1.0)
        posteriors = counts / k
        value = float(np.mean(1.0 - posteriors.max(axis=1)))
        return BEREstimate(
            value=value,
            details={"k": k, "metric": self.metric},
        )
