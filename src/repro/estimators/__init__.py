"""Bayes-error estimator zoo (Section II's three estimator families).

- kNN-classifier-accuracy estimators: :class:`OneNNEstimator` (the paper's
  default, Cover–Hart based), :class:`KNNLooEstimator` (Devijver-style),
  :class:`KNNExtrapolationEstimator` (Snapp–Xu curve fitting).
- Density estimators: :class:`KDEEstimator` (Parzen plug-in),
  :class:`DeKNNEstimator` (Fukunaga–Kessell posterior plug-in).
- Divergence estimator: :class:`GHPEstimator` (generalized Henze–Penrose
  via Friedman–Rafsky minimal-spanning-tree statistics).

All estimators implement :class:`BayesErrorEstimator` and are accessible
by name via :func:`get_estimator` / :data:`ESTIMATOR_REGISTRY`.
"""

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    ESTIMATOR_REGISTRY,
    get_estimator,
    register_estimator,
)
from repro.estimators.confidence import (
    ConfidenceInterval,
    ber_estimate_interval,
    wilson_interval,
)
from repro.estimators.cover_hart import (
    OneNNEstimator,
    cover_hart_lower_bound,
)
from repro.estimators.de_knn import DeKNNEstimator
from repro.estimators.extrapolation import KNNExtrapolationEstimator
from repro.estimators.ghp import GHPEstimator
from repro.estimators.kde import KDEEstimator
from repro.estimators.knn_loo import KNNLooEstimator

__all__ = [
    "BEREstimate",
    "ConfidenceInterval",
    "BayesErrorEstimator",
    "DeKNNEstimator",
    "ESTIMATOR_REGISTRY",
    "GHPEstimator",
    "KDEEstimator",
    "KNNExtrapolationEstimator",
    "KNNLooEstimator",
    "OneNNEstimator",
    "ber_estimate_interval",
    "cover_hart_lower_bound",
    "wilson_interval",
    "get_estimator",
    "register_estimator",
]
