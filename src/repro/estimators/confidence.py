"""Confidence intervals for finite-sample error estimates.

The 1NN test error is a binomial proportion over the test set, so a
Wilson score interval gives a principled finite-sample band around it;
mapping the band endpoints through the (monotone) Cover–Hart formula
yields a confidence band for the BER estimate itself.  Small test sets
(the paper's SST2 discussion) produce visibly wide bands — the numeric
companion to the quantile plots of Section VI-C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.estimators.cover_hart import cover_hart_lower_bound
from repro.exceptions import DataValidationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def wilson_interval(
    error_rate: float, num_samples: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial error rate."""
    if not 0.0 <= error_rate <= 1.0:
        raise DataValidationError("error_rate must be in [0, 1]")
    if num_samples < 1:
        raise DataValidationError("num_samples must be >= 1")
    if not 0.0 < confidence < 1.0:
        raise DataValidationError("confidence must be in (0, 1)")
    z = float(norm.ppf(0.5 + confidence / 2.0))
    denom = 1.0 + z**2 / num_samples
    center = (error_rate + z**2 / (2 * num_samples)) / denom
    margin = (
        z
        * np.sqrt(
            error_rate * (1 - error_rate) / num_samples
            + z**2 / (4 * num_samples**2)
        )
        / denom
    )
    return ConfidenceInterval(
        point=error_rate,
        low=max(0.0, center - margin),
        high=min(1.0, center + margin),
        confidence=confidence,
    )


def ber_estimate_interval(
    one_nn_error: float,
    num_test_samples: int,
    num_classes: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Confidence band for the Cover–Hart BER estimate.

    The Cover–Hart map is monotone increasing in the 1NN error, so
    transforming the Wilson endpoints yields a valid band for the
    estimate (not for the BER itself — the estimate is a lower bound).
    """
    raw = wilson_interval(one_nn_error, num_test_samples, confidence)
    return ConfidenceInterval(
        point=cover_hart_lower_bound(one_nn_error, num_classes),
        low=cover_hart_lower_bound(raw.low, num_classes),
        high=cover_hart_lower_bound(raw.high, num_classes),
        confidence=confidence,
    )
