"""The paper's default estimator: 1NN error + Cover–Hart lower bound.

Cover and Hart (1967) relate the infinite-sample 1NN error to the BER
(Eq. 1 of the paper):

    R_1NN >= R*  >=  R_1NN / (1 + sqrt(1 - C * R_1NN / (C - 1)))

Snoopy evaluates the *finite*-sample 1NN error on a held-out test split
and plugs it into the right-hand side (Eq. 2), yielding the per-
transformation estimate that min-aggregation consumes.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    BayesErrorEstimator,
    BEREstimate,
    register_estimator,
)
from repro.exceptions import DataValidationError
from repro.knn.base import make_index


def cover_hart_lower_bound(one_nn_error: float, num_classes: int) -> float:
    """Map a 1NN error to the Cover–Hart BER lower bound (Eq. 2).

    The radicand is clipped at zero: for errors beyond the (C-1)/C
    saturation point the bound degenerates to the error itself.
    """
    if not 0.0 <= one_nn_error <= 1.0:
        raise DataValidationError(
            f"one_nn_error must be in [0, 1], got {one_nn_error}"
        )
    if num_classes < 2:
        raise DataValidationError("num_classes must be >= 2")
    radicand = 1.0 - num_classes * one_nn_error / (num_classes - 1)
    return one_nn_error / (1.0 + np.sqrt(max(0.0, radicand)))


def cover_hart_interval(
    one_nn_error: float, num_classes: int
) -> tuple[float, float]:
    """Both sides of Eq. 1: ``(lower_bound, upper_bound)`` on the BER."""
    return cover_hart_lower_bound(one_nn_error, num_classes), one_nn_error


@register_estimator("1nn")
class OneNNEstimator(BayesErrorEstimator):
    """1NN test error mapped through the Cover–Hart bound (Eq. 2).

    ``value`` is the lower bound (Snoopy's R̂ for one transformation);
    ``upper`` is the raw 1NN error.  ``backend`` selects the kNN index
    via :func:`repro.knn.base.make_index` ("brute_force" is exact and
    the default; "ivf" trades exactness for speed at scale).  ``dtype``
    selects the compute precision ("float32"/"float64"; ``None`` keeps
    the strict float64 path).
    """

    def __init__(
        self,
        metric: str = "euclidean",
        backend: str = "brute_force",
        dtype=None,
    ):
        self.name = "1nn"
        self.metric = metric
        self.backend = backend
        self.dtype = dtype

    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        train_x, train_y, test_x, test_y = self._validate(
            train_x, train_y, test_x, test_y, num_classes
        )
        index = make_index(
            self.backend, metric=self.metric, dtype=self.dtype
        ).fit(train_x, train_y)
        error = index.error(test_x, test_y, k=1)
        lower = cover_hart_lower_bound(error, num_classes)
        return BEREstimate(
            value=lower,
            lower=lower,
            upper=error,
            details={
                "one_nn_error": error,
                "metric": self.metric,
                "backend": self.backend,
            },
        )
