"""Estimator protocol, estimate container and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.exceptions import DataValidationError, EstimatorError


@dataclass(frozen=True)
class BEREstimate:
    """A Bayes-error estimate with optional bracketing interval.

    ``value`` is the estimator's point estimate (for 1NN-based estimators
    this is the Cover–Hart *lower* bound used as Snoopy's R̂); ``lower``
    and ``upper`` bracket the BER when the estimator provides them.
    """

    value: float
    lower: float | None = None
    upper: float | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not np.isfinite(self.value):
            raise EstimatorError(f"estimate value must be finite, got {self.value}")
        if not -1e-9 <= self.value <= 1.0 + 1e-9:
            raise EstimatorError(f"estimate must be in [0, 1], got {self.value}")
        if (
            self.lower is not None
            and self.upper is not None
            and self.lower > self.upper + 1e-9
        ):
            raise EstimatorError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )


class BayesErrorEstimator(ABC):
    """Estimate the Bayes error of a task from a finite labeled sample."""

    name: str = "abstract"

    @abstractmethod
    def estimate(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> BEREstimate:
        """Return a :class:`BEREstimate` for the task behind the sample."""

    @staticmethod
    def _validate(
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        num_classes: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        train_x = np.asarray(train_x, dtype=np.float64)
        test_x = np.asarray(test_x, dtype=np.float64)
        train_y = np.asarray(train_y, dtype=np.int64)
        test_y = np.asarray(test_y, dtype=np.int64)
        if len(train_x) != len(train_y) or len(test_x) != len(test_y):
            raise DataValidationError("feature/label length mismatch")
        if len(train_x) == 0 or len(test_x) == 0:
            raise DataValidationError("train and test sets must be non-empty")
        if num_classes < 2:
            raise DataValidationError("num_classes must be >= 2")
        return train_x, train_y, test_x, test_y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


ESTIMATOR_REGISTRY: dict[str, Callable[..., BayesErrorEstimator]] = {}


def register_estimator(
    name: str,
) -> Callable[[type[BayesErrorEstimator]], type[BayesErrorEstimator]]:
    """Class decorator adding an estimator factory to the registry."""

    def decorator(cls: type[BayesErrorEstimator]) -> type[BayesErrorEstimator]:
        if name in ESTIMATOR_REGISTRY:
            raise EstimatorError(f"estimator {name!r} already registered")
        ESTIMATOR_REGISTRY[name] = cls
        return cls

    return decorator


def get_estimator(name: str, **kwargs) -> BayesErrorEstimator:
    """Instantiate a registered estimator by name."""
    try:
        factory = ESTIMATOR_REGISTRY[name]
    except KeyError:
        raise EstimatorError(
            f"unknown estimator {name!r}; "
            f"available: {sorted(ESTIMATOR_REGISTRY)}"
        ) from None
    return factory(**kwargs)
