"""Neighborhood Components Analysis, implemented with minibatch SGD.

NCA learns a linear map that maximizes the expected leave-one-out
accuracy of a soft nearest-neighbor classifier — a natural companion for
the 1NN-based estimator, and one of the trained (non-pretrained)
transformations the paper includes in its catalog.

This implementation follows Goldberger et al. (2005): within each
minibatch, point ``i`` selects neighbor ``j`` with probability
``p_ij ∝ exp(-||A x_i - A x_j||^2)``; the objective is the probability
mass on same-class neighbors.  Minibatching keeps the O(batch^2) softmax
tractable for the dataset sizes used here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform


class NCATransform(FeatureTransform):
    """Supervised linear dimensionality reduction via NCA.

    Parameters
    ----------
    num_components:
        Output dimensionality of the learned linear map.
    learning_rate, num_epochs, batch_size:
        SGD settings; defaults are tuned for the library's synthetic
        task scale (a few thousand points, <= a few hundred dims).
    seed:
        Controls both initialization and batch shuffling.
    """

    def __init__(
        self,
        num_components: int,
        learning_rate: float = 0.8,
        num_epochs: int = 20,
        batch_size: int = 128,
        seed: SeedLike = None,
        name: str | None = None,
    ):
        super().__init__()
        if num_components < 1:
            raise DataValidationError(
                f"num_components must be >= 1, got {num_components}"
            )
        self.name = name or f"nca_{num_components}"
        self.output_dim = num_components
        self.cost_per_sample = 2e-6
        self.learning_rate = learning_rate
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self._seed = seed
        self._matrix: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "NCATransform":
        """Learn the projection; requires labels (supervised transform)."""
        x = self._check_input(x)
        if y is None:
            raise DataValidationError("nca: fit() requires labels y")
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise DataValidationError("nca: x and y length mismatch")
        if len(x) < 2:
            raise DataValidationError("nca: need at least 2 samples")
        rng = ensure_rng(self._seed)
        self._mean = x.mean(axis=0)
        centered = x - self._mean
        scale = np.maximum(centered.std(), 1e-12)
        centered = centered / scale
        dim = x.shape[1]
        matrix = rng.normal(scale=1.0 / np.sqrt(dim), size=(dim, self.output_dim))
        batch = min(self.batch_size, len(x))
        for _ in range(self.num_epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x) - 1, batch):
                idx = order[start : start + batch]
                if len(idx) < 2:
                    continue
                grad = self._batch_gradient(centered[idx], y[idx], matrix)
                matrix += self.learning_rate * grad
        self._matrix = matrix
        self._scale = scale
        self._fitted = True
        return self

    @staticmethod
    def _batch_gradient(
        x: np.ndarray, y: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """Gradient of the NCA objective for one minibatch."""
        projected = x @ matrix
        sq_norms = np.sum(projected**2, axis=1)
        sq_dist = sq_norms[:, None] + sq_norms[None, :] - 2.0 * projected @ projected.T
        np.maximum(sq_dist, 0.0, out=sq_dist)
        neg = -sq_dist
        np.fill_diagonal(neg, -np.inf)
        neg -= neg.max(axis=1, keepdims=True)
        weights = np.exp(neg)
        weights /= np.maximum(weights.sum(axis=1, keepdims=True), 1e-300)
        same = (y[:, None] == y[None, :]).astype(np.float64)
        np.fill_diagonal(same, 0.0)
        p_correct = (weights * same).sum(axis=1)
        # d/dA of sum_i p_i, following the standard NCA gradient form.
        coeff = weights * p_correct[:, None] - weights * same
        row_sums = coeff.sum(axis=1)
        # grad = 2 * x^T (diag(row_sums) - coeff_sym) x @ matrix
        sym = coeff + coeff.T
        laplacian = np.diag(row_sums + coeff.sum(axis=0)) - sym
        return 2.0 * x.T @ (laplacian @ x) @ matrix / len(x)

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._matrix is None or self._mean is None:
            raise DataValidationError("nca: call fit() before transform()")
        x = self._check_input(x)
        return ((x - self._mean) / self._scale) @ self._matrix
