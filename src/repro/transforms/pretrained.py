"""Simulated pre-trained embeddings.

The paper's catalog consists of embeddings downloaded from TF-Hub /
PyTorch Hub / HuggingFace.  Those are unavailable offline, so this module
provides the substitution documented in DESIGN.md: a *deterministic*
transformation whose single ``fidelity`` parameter interpolates between

- ``fidelity -> 1``: a rotation of the task's discriminative latent
  factors (low transformation bias, fast 1NN convergence — the behaviour
  of a strong pre-trained embedding on a matching task), and
- ``fidelity -> 0``: a fixed random non-linear feature map of the raw
  input (high transformation bias, slow convergence — a poorly matched
  embedding).

Determinism is essential: the theory behind Snoopy's min-aggregation
(Section IV-B) relies on transformations being deterministic functions of
the input, so the "noise" component is a hash-like random-feature map,
not sampled noise.

Both components are scaled to unit RMS at :meth:`fit` time so that
``fidelity`` has the same meaning across datasets.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform


class SimulatedEmbedding(FeatureTransform):
    """A quality-parameterized stand-in for a pre-trained embedding.

    Parameters
    ----------
    name:
        Catalog name (e.g. ``"efficientnet_b4"``).
    output_dim:
        Dimensionality of the produced representation.
    fidelity:
        In [0, 1]; how much of the representation is signal (recovered
        latent factors) versus fixed non-linear distortion of the input.
    cost_per_sample:
        Simulated accelerator seconds per embedded sample; mirrors the
        relative inference cost of the real model.
    latent_projection:
        Matrix of shape (latent_dim, raw_dim) recovering the task's
        latent factors from raw features.  Provided by the dataset's
        generator; see :mod:`repro.datasets.synthetic`.
    seed:
        Seeds the random signal rotation and the distortion map, i.e.
        the identity of this particular "pre-trained model".
    """

    def __init__(
        self,
        name: str,
        output_dim: int,
        fidelity: float,
        cost_per_sample: float,
        latent_projection: np.ndarray,
        seed: SeedLike = None,
        paper_dim: int | None = None,
        source: str = "simulated",
    ):
        super().__init__()
        if not 0.0 <= fidelity <= 1.0:
            raise DataValidationError(
                f"fidelity must be in [0, 1], got {fidelity}"
            )
        if output_dim < 1:
            raise DataValidationError(f"output_dim must be >= 1, got {output_dim}")
        latent_projection = np.asarray(latent_projection, dtype=np.float64)
        if latent_projection.ndim != 2:
            raise DataValidationError("latent_projection must be 2-D (k, D)")
        self.name = name
        self.output_dim = output_dim
        self.fidelity = float(fidelity)
        self.cost_per_sample = float(cost_per_sample)
        self.paper_dim = paper_dim or output_dim
        self.source = source
        self._latent_projection = latent_projection
        rng = ensure_rng(seed)
        latent_dim, raw_dim = latent_projection.shape
        # Random rotation lifting latent factors into the output space.
        lift = rng.normal(size=(output_dim, latent_dim))
        q, _ = np.linalg.qr(lift) if output_dim >= latent_dim else (lift, None)
        self._signal_map = (
            q[:, :latent_dim] if output_dim >= latent_dim else lift
        )
        # Fixed random-feature distortion of the raw input — deterministic
        # and high-frequency, so low-fidelity embeddings scramble the
        # metric structure instead of re-encoding it.
        self._distortion_weights = rng.normal(
            scale=3.0 / np.sqrt(raw_dim), size=(output_dim, raw_dim)
        )
        self._distortion_bias = rng.uniform(-np.pi, np.pi, size=output_dim)
        self._signal_scale: float | None = None
        self._distortion_scale: float | None = None

    def _signal_part(self, x: np.ndarray) -> np.ndarray:
        latent = x @ self._latent_projection.T
        return latent @ self._signal_map.T

    def _distortion_part(self, x: np.ndarray) -> np.ndarray:
        return np.cos(x @ self._distortion_weights.T + self._distortion_bias)

    def fit(self, x: np.ndarray) -> "SimulatedEmbedding":
        """Calibrate the RMS of the two components on training data."""
        x = self._check_input(x)
        if x.shape[1] != self._latent_projection.shape[1]:
            raise DataValidationError(
                f"{self.name}: expected raw dim "
                f"{self._latent_projection.shape[1]}, got {x.shape[1]}"
            )
        signal = self._signal_part(x)
        distortion = self._distortion_part(x)
        self._signal_scale = max(float(np.sqrt(np.mean(signal**2))), 1e-12)
        self._distortion_scale = max(
            float(np.sqrt(np.mean(distortion**2))), 1e-12
        )
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._signal_scale is None or self._distortion_scale is None:
            raise DataValidationError(f"{self.name}: call fit() before transform()")
        x = self._check_input(x)
        signal = self._signal_part(x) / self._signal_scale
        distortion = self._distortion_part(x) / self._distortion_scale
        return self.fidelity * signal + (1.0 - self.fidelity) * distortion
