"""Feature-transformation substrate.

Snoopy's estimate is a minimum over 1NN Bayes-error estimates computed on
top of a catalog of feature transformations (Section IV).  The paper uses
publicly downloadable pre-trained embeddings (Tables III and IV); with no
network access, this package substitutes :class:`SimulatedEmbedding` —
deterministic transformations whose *fidelity* knob controls exactly the
properties the paper's theory cares about (transformation bias, 1NN
convergence speed) and whose *cost* knob drives the runtime comparisons.

Classical transformations (identity, PCA, random projection, NCA) are
implemented for real on top of numpy.
"""

from repro.transforms.base import (
    FeatureTransform,
    FittedCatalog,
    fit_on,
    is_supervised,
)
from repro.transforms.catalog import (
    EmbeddingSpec,
    TEXT_EMBEDDINGS,
    VISION_EMBEDDINGS,
    text_catalog,
    vision_catalog,
)
from repro.transforms.linear import (
    IdentityTransform,
    PCATransform,
    RandomProjectionTransform,
    StandardizeTransform,
)
from repro.transforms.nca import NCATransform
from repro.transforms.pretrained import SimulatedEmbedding
from repro.transforms.store import (
    EmbeddingStore,
    StoreStats,
    embed_or_transform,
)

__all__ = [
    "EmbeddingSpec",
    "EmbeddingStore",
    "FeatureTransform",
    "FittedCatalog",
    "IdentityTransform",
    "NCATransform",
    "PCATransform",
    "RandomProjectionTransform",
    "SimulatedEmbedding",
    "StandardizeTransform",
    "StoreStats",
    "TEXT_EMBEDDINGS",
    "VISION_EMBEDDINGS",
    "embed_or_transform",
    "fit_on",
    "is_supervised",
    "text_catalog",
    "vision_catalog",
]
