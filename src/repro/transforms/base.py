"""Base protocol for feature transformations.

A transformation is a deterministic map from raw features to a vector
representation.  Determinism matters: the paper's companion theory shows
any deterministic transformation can only increase the Bayes error, which
is what licenses min-aggregation over a catalog.

Every transformation also carries a *simulated inference cost* per sample
(seconds of accelerator time).  Feature extraction dominates Snoopy's
runtime in the paper, so cost accounting lives here rather than in the
kNN layer.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import DataValidationError


def is_supervised(transform: "FeatureTransform") -> bool:
    """True when the transform's ``fit`` consumes labels (e.g. NCA)."""
    return "y" in inspect.signature(transform.fit).parameters


def fit_on(
    transform: "FeatureTransform",
    x: np.ndarray,
    y: np.ndarray | None = None,
) -> "FeatureTransform":
    """Fit a transform, passing labels only to supervised ones.

    The single home of the ``inspect.signature`` supervised-fit probe;
    raises :class:`DataValidationError` when a supervised transform is
    fitted without labels.
    """
    if is_supervised(transform):
        if y is None:
            raise DataValidationError(
                f"{transform.name} is supervised; fitting requires labels"
            )
        transform.fit(x, y)
    else:
        transform.fit(x)
    return transform


class FeatureTransform(ABC):
    """A deterministic feature map with cost accounting.

    Subclasses must set :attr:`name`, :attr:`output_dim` and
    :attr:`cost_per_sample`, and implement :meth:`transform`.  Stateful
    transforms (PCA, NCA, simulated embeddings that calibrate scaling)
    override :meth:`fit`; it must be idempotent in effect.
    """

    name: str
    output_dim: int
    cost_per_sample: float = 0.0

    def __init__(self) -> None:
        self._fitted = False

    @property
    def fitted(self) -> bool:
        return self._fitted

    def fit(self, x: np.ndarray) -> "FeatureTransform":
        """Fit any data-dependent state.  Default: stateless no-op."""
        self._fitted = True
        return self

    @abstractmethod
    def transform(self, x: np.ndarray) -> np.ndarray:
        """Map raw features (n, D) to representations (n, output_dim)."""

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inference_cost(self, num_samples: int) -> float:
        """Simulated accelerator seconds to embed ``num_samples`` points."""
        return self.cost_per_sample * num_samples

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataValidationError(
                f"{self.name}: expected 2-D features, got shape {x.shape}"
            )
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, dim={self.output_dim})"


class FittedCatalog:
    """A list of transformations fitted once against a training matrix.

    Convenience wrapper used by baselines that need all representations
    up front (e.g. the logistic-regression proxy, which the paper assumes
    computes every embedding exactly once).
    """

    def __init__(self, transforms: list[FeatureTransform]):
        if not transforms:
            raise DataValidationError("catalog must contain at least one transform")
        names = [t.name for t in transforms]
        if len(set(names)) != len(names):
            raise DataValidationError(f"duplicate transform names: {names}")
        self.transforms = list(transforms)

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "FittedCatalog":
        """Fit every transform; labels are passed to supervised ones (NCA)."""
        for transform in self.transforms:
            fit_on(transform, x, y)
        return self

    def __iter__(self):
        return iter(self.transforms)

    def __len__(self) -> int:
        return len(self.transforms)

    def __getitem__(self, name: str) -> FeatureTransform:
        for transform in self.transforms:
            if transform.name == name:
                return transform
        raise KeyError(name)

    @property
    def names(self) -> list[str]:
        return [t.name for t in self.transforms]

    def total_inference_cost(self, num_samples: int) -> float:
        """Simulated cost of embedding ``num_samples`` with every transform."""
        return sum(t.inference_cost(num_samples) for t in self.transforms)
