"""Shared embedding memoization for the staged execution engine.

Feature extraction dominates a feasibility study's runtime (Section V of
the paper), yet the same chunk of training data is embedded by the same
transformation again and again: once per allocation strategy compared,
once more by the winner top-up, once more by every baseline that wants
the full representation, and once more by the post-cleaning re-run path.
The :class:`EmbeddingStore` removes all of that repeated work.

Design
------
- **Block-aligned, content-addressed.**  A request for rows
  ``[start, stop)`` of a source matrix is rounded out to fixed-size row
  blocks aligned to the *source* (not to the request), and each block is
  keyed by ``(transform, blake2b(block bytes))``.  Two strategies that
  pull the same shuffled pool with different chunk boundaries therefore
  share every cached block, and a second run that rebuilds an identical
  pool array (same seed, same data) hits purely on content.
- **Byte-budgeted LRU.**  Cached blocks are evicted least-recently-used
  once the configured byte budget is exceeded, so the store is safe to
  leave attached to a long-lived service.
- **Thread-safe.**  Bookkeeping is guarded by a lock while the actual
  ``transform.transform`` calls run outside it, so the ``thread``
  execution backend embeds different arms concurrently.
- **Process-friendly.**  Pickling a store (the ``process`` backend ships
  arms to workers) transfers only its configuration; workers start with
  an empty cache and the parent's cache is never clobbered.
- **Dtype-aware accounting for compressed blocks.**  Besides embedding
  blocks, arbitrary auxiliary arrays — such as the uint8 PQ code
  blocks of the ``"ivf_pq"`` search tier — can be parked under the
  same byte budget via :meth:`EmbeddingStore.put_block`; they are
  accounted at their true ``nbytes`` (1 B/element for uint8 codes), so
  a compressed corpus fits a cache budget its raw float blocks would
  blow through (``benchmarks/test_pq_scaling.py`` demonstrates the
  accounting; the index itself keeps its codes as primary storage).

The store assumes a transform's fitted state is frozen once it has been
used for embedding — re-fitting a transform on different data changes its
output without changing the input bytes, so callers that re-fit must call
:meth:`EmbeddingStore.invalidate` for that transform.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.kernels import resolve_dtype

#: Default byte budget for cached embeddings (256 MiB).
DEFAULT_CACHE_BYTES = 256 * 2**20

#: Default rows per cached block; requests are rounded out to blocks.
DEFAULT_BLOCK_ROWS = 256


@dataclass(frozen=True)
class StoreStats:
    """Cumulative cache counters of an :class:`EmbeddingStore`."""

    hits: int
    misses: int
    evictions: int
    current_bytes: int
    max_bytes: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of block lookups served from cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class EmbeddingStore:
    """Memoizes ``transform.transform`` outputs at block granularity.

    Parameters
    ----------
    max_bytes:
        Byte budget for cached embedding blocks; least-recently-used
        blocks are evicted once the budget is exceeded.
    block_rows:
        Rows per cached block.  Requests covering partial blocks embed
        the whole block once — rows a progressive consumer would need
        shortly anyway — and serve every later overlapping request from
        cache regardless of its exact boundaries.
    dtype:
        Storage dtype for cached blocks ("float32"/"float64"; ``None``
        keeps float64).  Blocks are held — and returned — in this
        dtype, so a float32 store halves the bytes per cached embedding
        and doubles the effective cache capacity under the same
        ``max_bytes`` budget.  Byte accounting always follows the
        actual block dtype (``nbytes``), so the LRU budget is honored
        either way.  Source matrices are still digested at float64, so
        the content-addressed keys are independent of the storage
        dtype.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        dtype=None,
    ):
        if max_bytes < 1:
            raise DataValidationError(
                f"max_bytes must be positive, got {max_bytes}"
            )
        if block_rows < 1:
            raise DataValidationError(
                f"block_rows must be positive, got {block_rows}"
            )
        self.max_bytes = int(max_bytes)
        self.block_rows = int(block_rows)
        self.dtype = dtype
        self._block_dtype = resolve_dtype(dtype)
        self._lock = threading.RLock()
        # (transform token, block digest) -> embedded block (read-only).
        self._blocks: "OrderedDict[tuple[str, bytes], np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Distinct transform objects get distinct tokens.  Weak
        # references (with purge callbacks) guarantee a recycled id()
        # can never alias two live transforms, without pinning anything:
        # when a transform is collected, its token mapping and cached
        # blocks are dropped.
        self._tokens: dict[int, str] = {}
        self._token_refs: dict[int, weakref.ref] = {}
        self._token_counter = 0
        # Per-source-array digest cache: id(source) -> {block -> digest},
        # held weakly for the same reason — a collected source array
        # releases its digest cache instead of leaking one entry (and,
        # with strong pins, one full training matrix) per run.
        self._digests: dict[int, dict[int, bytes]] = {}
        self._digest_refs: dict[int, weakref.ref] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def embed(self, transform, x: np.ndarray) -> np.ndarray:
        """Embed a full matrix through the cache (blocks aligned to row 0)."""
        x = self._check_source(transform, x)
        return self.embed_rows(transform, x, 0, len(x))

    def embed_rows(
        self, transform, source: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Embed rows ``[start, stop)`` of ``source``, block-aligned.

        The returned array must be treated as read-only: single-block
        requests are served as views of cached blocks (multi-block
        requests concatenate, which copies).
        """
        source = self._check_source(transform, source)
        if not 0 <= start <= stop <= len(source):
            raise DataValidationError(
                f"invalid row range [{start}, {stop}) for source of "
                f"{len(source)} rows"
            )
        if stop == start:
            return np.empty((0, transform.output_dim), dtype=self._block_dtype)
        token = self._transform_token(transform)
        block_size = self.block_rows
        first = start // block_size
        last = (stop - 1) // block_size
        pieces: dict[int, np.ndarray] = {}
        missing: list[int] = []
        with self._lock:
            for block in range(first, last + 1):
                key = (token, self._block_digest(source, block))
                cached = self._blocks.get(key)
                if cached is not None:
                    self._blocks.move_to_end(key)
                    self._hits += 1
                    pieces[block] = cached
                else:
                    missing.append(block)
                    self._misses += 1
        # Embed contiguous runs of missing blocks in one transform call
        # each, outside the lock so concurrent arms embed in parallel.
        for run_start, run_stop in _contiguous_runs(missing):
            lo = run_start * block_size
            hi = min(run_stop * block_size, len(source))
            embedded = np.asarray(
                transform.transform(source[lo:hi]), dtype=self._block_dtype
            )
            for block in range(run_start, run_stop):
                piece = np.ascontiguousarray(
                    embedded[block * block_size - lo : (block + 1) * block_size - lo]
                )
                if np.may_share_memory(piece, source):
                    # Pass-through transforms (identity) return views of
                    # the source; cache an independent copy so caller
                    # mutations can't corrupt it (or be frozen by the
                    # read-only flag below).
                    piece = piece.copy()
                piece.setflags(write=False)
                pieces[block] = piece
        if missing:
            with self._lock:
                for block in missing:
                    key = (token, self._block_digest(source, block))
                    if key not in self._blocks:
                        self._blocks[key] = pieces[block]
                        self._bytes += pieces[block].nbytes
                self._evict_over_budget()
        parts = []
        for block in range(first, last + 1):
            lo = block * block_size
            a = max(start - lo, 0)
            b = min(stop - lo, block_size)
            parts.append(pieces[block][a:b])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)

    def put_block(self, owner: str, key, array: np.ndarray) -> None:
        """Park an auxiliary array under the store's byte budget.

        Lets a caller account arbitrary-dtype blocks — e.g. the uint8
        PQ code matrix of an :class:`repro.knn.pq.IVFPQIndex` (see
        ``benchmarks/test_pq_scaling.py``) — in the same LRU budget as
        the float embedding blocks: accounting is dtype-aware
        (``nbytes`` of the array as given — one byte per element for
        uint8 codes, four for float32 embeddings), and the array is
        stored **as-is**, never cast to the store's embedding dtype.
        ``owner`` namespaces the keys (e.g. one owner per index) so
        they can never collide with transform tokens; blocks
        participate in LRU eviction like any other, so owners must
        treat the store as a cache, not as the primary copy.
        """
        array = np.asarray(array)
        frozen = array.copy()
        frozen.setflags(write=False)
        with self._lock:
            cache_key = (f"\x00aux:{owner}", key)
            previous = self._blocks.pop(cache_key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._blocks[cache_key] = frozen
            self._bytes += frozen.nbytes
            self._evict_over_budget()

    def get_block(self, owner: str, key) -> np.ndarray | None:
        """Fetch an auxiliary array stored via :meth:`put_block` (or None)."""
        with self._lock:
            cache_key = (f"\x00aux:{owner}", key)
            block = self._blocks.get(cache_key)
            if block is None:
                self._misses += 1
                return None
            self._blocks.move_to_end(cache_key)
            self._hits += 1
            return block

    def invalidate(self, transform) -> int:
        """Drop every cached block of ``transform`` (after a re-fit).

        Returns the number of blocks dropped.
        """
        with self._lock:
            token = self._tokens.get(id(transform))
            if token is None:
                return 0
            stale = [key for key in self._blocks if key[0] == token]
            for key in stale:
                self._bytes -= self._blocks.pop(key).nbytes
            return len(stale)

    def clear(self) -> None:
        """Drop all cached blocks and digest caches (counters are kept)."""
        with self._lock:
            self._blocks.clear()
            self._bytes = 0
            self._digests.clear()
            self._digest_refs.clear()

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                current_bytes=self._bytes,
                max_bytes=self.max_bytes,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats
        return (
            f"EmbeddingStore(blocks={len(self)}, "
            f"bytes={stats.current_bytes}/{stats.max_bytes}, "
            f"hit_rate={stats.hit_rate:.2f})"
        )

    # ------------------------------------------------------------------
    # Pickling: ship configuration only (process workers start cold).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "max_bytes": self.max_bytes,
            "block_rows": self.block_rows,
            "dtype": self.dtype,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["max_bytes"], state["block_rows"], state.get("dtype")
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_source(transform, source: np.ndarray) -> np.ndarray:
        source = np.asarray(source, dtype=np.float64)
        if source.ndim != 2:
            raise DataValidationError(
                f"{transform.name}: source must be 2-D, got shape {source.shape}"
            )
        return source

    def _transform_token(self, transform) -> str:
        with self._lock:
            key = id(transform)
            token = self._tokens.get(key)
            if token is None:
                token = f"{transform.name}#{self._token_counter}"
                self._token_counter += 1
                self._tokens[key] = token
                self._token_refs[key] = weakref.ref(
                    transform,
                    lambda _ref, key=key, token=token: self._drop_token(
                        key, token
                    ),
                )
            return token

    def _drop_token(self, key: int, token: str) -> None:
        """Weakref purge: a transform died; its blocks are unreachable."""
        with self._lock:
            self._tokens.pop(key, None)
            self._token_refs.pop(key, None)
            stale = [k for k in self._blocks if k[0] == token]
            for k in stale:
                self._bytes -= self._blocks.pop(k).nbytes

    def _drop_digests(self, key: int) -> None:
        """Weakref purge: a source array died; release its digest cache."""
        with self._lock:
            self._digests.pop(key, None)
            self._digest_refs.pop(key, None)

    def _block_digest(self, source: np.ndarray, block: int) -> bytes:
        key = id(source)
        per_source = self._digests.get(key)
        if per_source is None:
            per_source = {}
            self._digests[key] = per_source
            self._digest_refs[key] = weakref.ref(
                source, lambda _ref, key=key: self._drop_digests(key)
            )
        digest = per_source.get(block)
        if digest is None:
            lo = block * self.block_rows
            rows = np.ascontiguousarray(source[lo : lo + self.block_rows])
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(np.int64(rows.shape).tobytes())
            hasher.update(rows.tobytes())
            digest = hasher.digest()
            per_source[block] = digest
        return digest

    def _evict_over_budget(self) -> None:
        while self._bytes > self.max_bytes and self._blocks:
            _, evicted = self._blocks.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evictions += 1


def embed_or_transform(
    store: EmbeddingStore | None, transform, x: np.ndarray
) -> np.ndarray:
    """Embed through ``store`` when one is attached, else directly."""
    if store is None:
        return transform.transform(x)
    return store.embed(transform, x)


def _contiguous_runs(blocks: list[int]) -> list[tuple[int, int]]:
    """Group sorted block indices into half-open contiguous runs."""
    runs: list[tuple[int, int]] = []
    for block in blocks:
        if runs and runs[-1][1] == block:
            runs[-1] = (runs[-1][0], block + 1)
        else:
            runs.append((block, block + 1))
    return runs
