"""Shared embedding memoization: zero-copy hot tier + disk spill tier.

Feature extraction dominates a feasibility study's runtime (Section V of
the paper), yet the same chunk of training data is embedded by the same
transformation again and again: once per allocation strategy compared,
once more by the winner top-up, once more by every baseline that wants
the full representation, and once more by the post-cleaning re-run path.
The :class:`EmbeddingStore` removes all of that repeated work.

Design
------
- **Block-aligned, content-addressed.**  A request for rows
  ``[start, stop)`` of a source matrix is rounded out to fixed-size row
  blocks aligned to the *source* (not to the request), and each block is
  keyed by ``(transform, blake2b(block bytes))``.  Two strategies that
  pull the same shuffled pool with different chunk boundaries therefore
  share every cached block, and a second run that rebuilds an identical
  pool array (same seed, same data) hits purely on content.  Transform
  tokens are themselves content-derived (a digest of the transform's
  pickled, fitted state), so the *same* transform rebuilt in another
  process — or another run — addresses the *same* blocks.
- **Two tiers.**  The *hot* tier holds blocks in memory under a
  byte-budgeted LRU; with sharing enabled (:meth:`enable_sharing`, used
  by the ``process`` execution backend) hot blocks live in named
  POSIX shared-memory segments that worker processes attach **by name**
  and read zero-copy — nothing is pickled.  The *spill* tier
  (``store_dir``) holds content-addressed files: every cached block is
  written through to disk, evicting from the hot tier therefore *moves*
  a block to disk rather than discarding work, and a spill hit promotes
  the block back into the hot tier.  The spill tier persists across
  processes and across runs: a fresh store pointed at a warm
  ``store_dir`` serves every block with **zero** transform calls.
  Spill files carry a payload digest; a corrupted or truncated file is
  detected on read, deleted, and treated as a miss — never a crash.
- **Byte-budgeted LRU, per tier.**  ``max_bytes`` bounds the hot tier,
  ``spill_bytes`` the spill tier (least-recently-used files are
  unlinked), so the store is safe to leave attached to a long-lived
  service and corpora larger than RAM stream through the hot budget.
- **Thread-safe.**  Bookkeeping is guarded by a lock while the actual
  ``transform.transform`` calls (and spill-file reads) run outside it,
  so the ``thread`` execution backend embeds different arms
  concurrently.
- **Process-friendly.**  Pickling a store ships an attach *handle*
  (session name + spill dir + budgets, never block payloads).  One
  handle is materialized per worker process (repeated unpickles
  dedupe through a registry), it attaches hot segments by name, reads
  and writes the shared spill dir, and misses fall back to local
  computation.  Arbitrary arrays — e.g. an arm's training pool — can be
  pinned into the hot tier via :meth:`share_array` and shipped across
  the pool boundary as a tiny :class:`SharedArrayRef` instead of a
  pickled payload.
- **Dtype-aware accounting for compressed blocks.**  Besides embedding
  blocks, arbitrary auxiliary arrays — such as the uint8 PQ code
  blocks of the ``"ivf_pq"`` search tier — can be parked under the
  same budgets via :meth:`EmbeddingStore.put_block`; they are
  accounted at their true ``nbytes`` (1 B/element for uint8 codes), so
  a compressed corpus fits a cache budget its raw float blocks would
  blow through.  Auxiliary keys are session-scoped on disk (their
  content is caller-mutable, so they must not leak across runs).

Lifecycle: the store owns its shared-memory segments.  ``close()``
(also triggered by a ``with`` block and by a ``weakref`` finalizer at
garbage collection / interpreter exit) unlinks every owned segment and
removes an auto-created ephemeral spill dir, so no ``/dev/shm`` entries
survive a run — even one that raises.  Forked children inheriting a
store object never unlink the parent's segments (creator-pid guard).

The store assumes a transform's fitted state is frozen once it has been
used for embedding — re-fitting a transform on different data changes
its output without changing the input bytes, so callers that re-fit
must call :meth:`EmbeddingStore.invalidate` for that transform (which
also re-derives its content token).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.knn.kernels import resolve_dtype

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory

    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None
    _SHM_AVAILABLE = False

#: Default byte budget for the hot tier (256 MiB).
DEFAULT_CACHE_BYTES = 256 * 2**20

#: Default byte budget for the spill tier (1 GiB).
DEFAULT_SPILL_BYTES = 2**30

#: Default rows per cached block; requests are rounded out to blocks.
DEFAULT_BLOCK_ROWS = 256

_SEGMENT_MAGIC = b"RPROSHM1"
_SEGMENT_HEADER = 256
_SPILL_MAGIC = b"RPROSPL1"
_SPILL_SUFFIX = ".blk"
_SHARED_TOKEN = "\x00shared"
_AUX_PREFIX = "\x00aux:"


def default_store_dir() -> str:
    """The conventional persistent spill location (CLI ``repro store``)."""
    configured = os.environ.get("REPRO_STORE_DIR")
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "store"
    )


@dataclass(frozen=True)
class StoreStats:
    """Cumulative cache counters of an :class:`EmbeddingStore`."""

    hits: int
    misses: int
    evictions: int
    current_bytes: int
    max_bytes: int
    spill_hits: int = 0
    spill_writes: int = 0
    spill_current_bytes: int = 0
    spill_max_bytes: int = 0
    pinned_bytes: int = 0
    shared_segments: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of block lookups served from cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable reference to an array pinned via :meth:`share_array`."""

    key: tuple
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize


class _HotBlock:
    """One hot-tier entry: an array, optionally backed by a shm segment."""

    __slots__ = ("array", "segment", "name", "owned", "spilled")

    def __init__(self, array, segment=None, name=None, owned=False,
                 spilled=False):
        self.array = array
        self.segment = segment
        self.name = name
        self.owned = owned
        self.spilled = spilled

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


# ----------------------------------------------------------------------
# Shared-memory segment helpers (self-describing: header carries layout)
# ----------------------------------------------------------------------


_TRACKER_PATCH_LOCK = threading.Lock()


def _attach_segment(name: str):
    """Attach an existing segment without adopting unlink responsibility.

    Pre-3.13 ``SharedMemory`` registers *attached* segments with the
    resource tracker too, and forked pool workers share the parent's
    tracker process whose cache is a plain name set — a worker's
    register/unregister pair would erase the *owner's* entry (tracebacks
    in the tracker at unlink time, lost leak protection).  Suppress the
    registration during attach instead (3.13+ has ``track=False`` for
    exactly this).
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def _write_segment(name: str, array: np.ndarray):
    """Create + fill a named segment; returns ``(segment, read-only view)``."""
    header = json.dumps(
        {"dtype": array.dtype.str, "shape": list(array.shape)}
    ).encode()
    if len(header) > _SEGMENT_HEADER - 20:
        raise DataValidationError(
            f"array header does not fit a segment header: {len(header)} B"
        )
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=_SEGMENT_HEADER + max(1, array.nbytes)
    )
    buf = segment.buf
    buf[16:20] = len(header).to_bytes(4, "little")
    buf[20 : 20 + len(header)] = header
    view = np.ndarray(
        array.shape, dtype=array.dtype, buffer=buf, offset=_SEGMENT_HEADER
    )
    np.copyto(view, array)
    view.setflags(write=False)
    # Publish last: attachers treat a segment without magic+ready as
    # absent, so a half-written segment can never serve garbage.
    buf[0:8] = _SEGMENT_MAGIC
    buf[8:9] = b"\x01"
    _bind_lifetime(view, segment)
    return segment, view


def _read_segment(segment):
    """Read-only view of a published segment, or None if not ready."""
    buf = segment.buf
    if bytes(buf[0:8]) != _SEGMENT_MAGIC or buf[8] != 1:
        return None
    length = int.from_bytes(buf[16:20], "little")
    try:
        meta = json.loads(bytes(buf[20 : 20 + length]))
        view = np.ndarray(
            tuple(meta["shape"]),
            dtype=np.dtype(meta["dtype"]),
            buffer=buf,
            offset=_SEGMENT_HEADER,
        )
    except (ValueError, KeyError, TypeError):
        return None
    view.setflags(write=False)
    return view


def _close_segment(segment) -> None:
    try:
        segment.close()
    except Exception:  # pragma: no cover - platform oddities
        pass


def _bind_lifetime(array: np.ndarray, segment) -> None:
    """Unmap the segment when the last view of it is garbage collected.

    ``SharedMemory.close()`` unmaps even while numpy views of the buffer
    exist (numpy holds no export on the memoryview), so an eager close
    at eviction time would turn every caller-held view into a
    use-after-free.  Instead the finalize registry keeps the segment
    object alive exactly as long as its root view; when the view (and
    therefore every caller slice based on it) dies, the mapping is
    released.  Unlinking the *name* is independent and always safe.
    """
    weakref.finalize(array, _close_segment, segment)


def _unlink_segment(segment) -> None:
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover
        pass


def _release_segments(cleanup: dict) -> None:
    """Finalizer body: unlink owned segment names and drop the spill dir.

    Runs on ``close()``, at garbage collection and at interpreter exit.
    ``cleanup`` deliberately holds no reference to the store, and
    mappings are *not* closed here — each closes via its
    :func:`_bind_lifetime` finalizer once the last view dies.  A forked
    child inheriting the store object must never unlink the parent's
    segments — hence the creator-pid guard.
    """
    if os.getpid() != cleanup["pid"]:
        return
    for segment in list(cleanup["owned"].values()):
        _unlink_segment(segment)
    cleanup["owned"].clear()
    cleanup["attached"].clear()
    directory = cleanup.get("ephemeral_dir")
    cleanup["ephemeral_dir"] = None
    if directory:
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# Spill-tier file helpers (content-verified, atomically replaced)
# ----------------------------------------------------------------------


def _spill_path(directory: str, file_id: str) -> str:
    return os.path.join(directory, file_id + _SPILL_SUFFIX)


def _write_spill(directory: str, file_id: str, array: np.ndarray) -> int:
    """Atomically write one content-verified block file; returns bytes."""
    payload = np.ascontiguousarray(array).tobytes()
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    header = json.dumps(
        {"dtype": array.dtype.str, "shape": list(array.shape),
         "digest": digest}
    ).encode()
    path = _spill_path(directory, file_id)
    tmp = f"{path}.tmp{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(_SPILL_MAGIC)
        fh.write(len(header).to_bytes(4, "little"))
        fh.write(header)
        fh.write(payload)
    os.replace(tmp, path)
    return 12 + len(header) + len(payload)


def _read_spill(
    directory: str, file_id: str, memmap: bool = False
) -> np.ndarray | None:
    """Read + verify one spill file; corrupt/truncated files are removed.

    The digest check requires touching every payload byte once — the
    price of guaranteeing a torn, truncated or bit-flipped file is
    reported as a miss (recompute) instead of serving garbage.

    With ``memmap=True`` the payload is returned as a read-only
    :class:`numpy.memmap` at the payload offset and the digest check is
    skipped: the caller promises the same file was digest-verified on an
    earlier read this session (spill files are replaced atomically, so
    the bytes behind a given id are either the verified ones or a
    complete newer write).  Mapped pages are file-backed — the OS shares
    one physical copy across every process mapping the block and evicts
    clean pages under pressure, so 10M-point shards page in without
    doubling RSS.
    """
    path = _spill_path(directory, file_id)
    try:
        with open(path, "rb") as fh:
            if fh.read(8) != _SPILL_MAGIC:
                raise ValueError("bad magic")
            length = int.from_bytes(fh.read(4), "little")
            meta = json.loads(fh.read(length))
            dtype = np.dtype(meta["dtype"])
            shape = tuple(meta["shape"])
            if memmap and int(np.prod(shape)) > 0:
                offset = 12 + length
                expected = offset + int(np.prod(shape)) * dtype.itemsize
                if os.fstat(fh.fileno()).st_size != expected:
                    raise ValueError("truncated payload")
                return np.memmap(
                    path, dtype=dtype, mode="r", offset=offset, shape=shape
                )
            payload = fh.read()
        if len(payload) != int(np.prod(shape)) * dtype.itemsize:
            raise ValueError("truncated payload")
        actual = hashlib.blake2b(payload, digest_size=16).hexdigest()
        if actual != meta["digest"]:
            raise ValueError("payload digest mismatch")
        array = np.frombuffer(payload, dtype=dtype).reshape(shape)
        array.setflags(write=False)
        return array
    except FileNotFoundError:
        return None
    except (ValueError, KeyError, TypeError, OSError):
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def scan_spill_dir(directory: str) -> list[dict]:
    """Describe every block file in a spill dir (CLI ``repro store stats``).

    Returns one dict per file: ``{"file", "bytes", "dtype", "shape"}``;
    unreadable headers yield ``dtype="?"``.
    """
    entries = []
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return entries
    for name in names:
        if not name.endswith(_SPILL_SUFFIX):
            continue
        path = os.path.join(directory, name)
        entry = {
            "file": name,
            "bytes": os.path.getsize(path),
            "dtype": "?",
            "shape": "?",
        }
        try:
            with open(path, "rb") as fh:
                if fh.read(8) == _SPILL_MAGIC:
                    length = int.from_bytes(fh.read(4), "little")
                    meta = json.loads(fh.read(length))
                    entry["dtype"] = str(np.dtype(meta["dtype"]))
                    entry["shape"] = "x".join(
                        str(d) for d in meta["shape"]
                    )
        except (OSError, ValueError, KeyError):
            pass
        entries.append(entry)
    return entries


def clear_spill_dir(directory: str) -> tuple[int, int]:
    """Delete every block (and stray tmp) file; returns (files, bytes)."""
    files = 0
    reclaimed = 0
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return 0, 0
    for name in names:
        if _SPILL_SUFFIX not in name:
            continue
        path = os.path.join(directory, name)
        try:
            size = os.path.getsize(path)
            os.unlink(path)
        except OSError:
            continue
        files += 1
        reclaimed += size
    return files, reclaimed


# ----------------------------------------------------------------------
# Per-process handle registry: repeated unpickles of one store's handle
# dedupe to a single attached handle per process.
# ----------------------------------------------------------------------

_HANDLES: dict[str, tuple[int, "EmbeddingStore"]] = {}


def attach_handle(state: dict) -> "EmbeddingStore":
    """Materialize (or reuse) this process's handle for a shipped store.

    Used by ``EmbeddingStore.__reduce__`` and by the process backend's
    worker initializer, so every arm unpickled in a worker shares one
    handle — one attach cache, one digest cache, one local miss cache.
    The pid check makes fork-inherited registries self-correcting.
    """
    session = state["session"]
    entry = _HANDLES.get(session)
    if entry is not None and entry[0] == os.getpid():
        return entry[1]
    store = EmbeddingStore(
        max_bytes=state["max_bytes"],
        block_rows=state["block_rows"],
        dtype=state["dtype"],
        store_dir=state["store_dir"],
        spill_bytes=state["spill_bytes"],
    )
    store._session = session
    store._attached_mode = True
    _HANDLES[session] = (os.getpid(), store)
    return store


class EmbeddingStore:
    """Memoizes ``transform.transform`` outputs at block granularity.

    Parameters
    ----------
    max_bytes:
        Hot-tier byte budget; least-recently-used blocks are evicted
        (to the spill tier when one is configured) once exceeded.
    block_rows:
        Rows per cached block.  Requests covering partial blocks embed
        the whole block once — rows a progressive consumer would need
        shortly anyway — and serve every later overlapping request from
        cache regardless of its exact boundaries.
    dtype:
        Storage dtype for cached blocks ("float32"/"float64"; ``None``
        keeps float64).  Byte accounting always follows the actual
        block dtype (``nbytes``).  Source matrices are digested at
        float64, so content keys are independent of the storage dtype
        (the dtype is folded into the transform token instead, keeping
        float32 and float64 spill files apart).
    store_dir:
        Spill-tier directory.  When set, every cached block is written
        through to a content-addressed, digest-verified file, giving
        (a) persistence across runs and processes (a fresh store on a
        warm dir re-embeds nothing), (b) a shared medium for process
        workers, and (c) an overflow tier for corpora larger than
        ``max_bytes``.
    spill_bytes:
        Spill-tier byte budget (default 1 GiB); oldest files are
        unlinked beyond it.
    shared:
        Start with shared-memory hot blocks (see
        :meth:`enable_sharing`).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        dtype=None,
        store_dir: str | os.PathLike | None = None,
        spill_bytes: int | None = None,
        shared: bool = False,
    ):
        if max_bytes < 1:
            raise DataValidationError(
                f"max_bytes must be positive, got {max_bytes}"
            )
        if block_rows < 1:
            raise DataValidationError(
                f"block_rows must be positive, got {block_rows}"
            )
        if spill_bytes is not None and spill_bytes < 1:
            raise DataValidationError(
                f"spill_bytes must be positive, got {spill_bytes}"
            )
        self.max_bytes = int(max_bytes)
        self.block_rows = int(block_rows)
        self.dtype = dtype
        self.spill_bytes = int(
            DEFAULT_SPILL_BYTES if spill_bytes is None else spill_bytes
        )
        self._block_dtype = resolve_dtype(dtype)
        self._lock = threading.RLock()
        # (transform token, block digest) -> _HotBlock (LRU, budgeted).
        self._blocks: "OrderedDict[tuple, _HotBlock]" = OrderedDict()
        # Segments attached from another process's hot tier (unbounded:
        # views of memory owned — and budgeted — by the creator).
        self._attached_blocks: dict[tuple, _HotBlock] = {}
        # Arrays pinned via share_array: outside the LRU and the budget.
        self._pinned: dict[tuple, _HotBlock] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._spill_hits = 0
        self._spill_writes = 0
        self._session = os.urandom(6).hex()
        self._creator_pid = os.getpid()
        self._attached_mode = False
        self._shared = False
        # Finalizer state: must never reference self (see module docs).
        self._cleanup = {
            "pid": os.getpid(),
            "owned": {},
            "attached": {},
            "ephemeral_dir": None,
        }
        self._finalizer = weakref.finalize(
            self, _release_segments, self._cleanup
        )
        # Distinct transform objects get distinct tokens.  Tokens are
        # content-derived when the transform pickles (stable across
        # processes and runs — the basis of warm-from-disk cold starts)
        # and session-unique otherwise.  Weak references guarantee a
        # recycled id() can never alias two live transforms; a collected
        # transform drops its token mapping and hot blocks.
        self._tokens: dict[int, str] = {}
        self._token_refs: dict[int, weakref.ref] = {}
        self._token_counter = 0
        # Spill files written this session, by token (for invalidate).
        self._token_spills: dict[str, set[str]] = {}
        # Per-source-array digest cache: id(source) -> {block -> digest},
        # held weakly so a collected source releases its cache.
        self._digests: dict[int, dict[int, bytes]] = {}
        self._digest_refs: dict[int, weakref.ref] = {}
        # id(array) -> (SharedArrayRef, weakref): re-sharing a resolved
        # or already-shared array is O(1), never a re-digest.
        self._shared_refs: dict[int, tuple[SharedArrayRef, weakref.ref]] = {}
        # publish_block bookkeeping: (owner, key) -> (version, cache key).
        self._published: dict[tuple, tuple[int, tuple]] = {}
        # Spill files promoted at least once this session: their payload
        # digest has been verified, so later promotes may memmap.
        self._spill_promoted: set[str] = set()
        # Spill index: file id -> bytes on disk (LRU by access).
        self.store_dir: str | None = None
        self._spill_index: "OrderedDict[str, int]" = OrderedDict()
        self._spill_used = 0
        if store_dir is not None:
            self._set_store_dir(os.fspath(store_dir))
        if shared:
            self.enable_sharing()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def embed(self, transform, x: np.ndarray) -> np.ndarray:
        """Embed a full matrix through the cache (blocks aligned to row 0)."""
        x = self._check_source(transform, x)
        return self.embed_rows(transform, x, 0, len(x))

    def embed_rows(
        self, transform, source: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Embed rows ``[start, stop)`` of ``source``, block-aligned.

        The returned array must be treated as read-only: single-block
        requests are served as views of cached blocks (multi-block
        requests concatenate, which copies).
        """
        source = self._check_source(transform, source)
        if not 0 <= start <= stop <= len(source):
            raise DataValidationError(
                f"invalid row range [{start}, {stop}) for source of "
                f"{len(source)} rows"
            )
        if stop == start:
            return np.empty((0, transform.output_dim), dtype=self._block_dtype)
        token = self._transform_token(transform)
        block_size = self.block_rows
        first = start // block_size
        last = (stop - 1) // block_size
        pieces: dict[int, np.ndarray] = {}
        keys: dict[int, tuple] = {}
        missing: list[int] = []
        with self._lock:
            for block in range(first, last + 1):
                key = (token, self._block_digest(source, block))
                keys[block] = key
                cached = self._lookup_hot(key)
                if cached is not None:
                    pieces[block] = cached
                else:
                    missing.append(block)
        # Spill-tier reads happen outside the lock: block files are
        # content-addressed and replaced atomically, so a concurrent
        # writer can only make a miss become a hit.
        spilled: dict[int, np.ndarray] = {}
        if self.store_dir is not None and missing:
            still = []
            for block in missing:
                array = self._load_spilled(keys[block])
                if array is not None:
                    spilled[block] = array
                    pieces[block] = array
                else:
                    still.append(block)
            missing = still
        with self._lock:
            self._hits += (last - first + 1) - len(missing)
            self._misses += len(missing)
            for block, array in spilled.items():
                pieces[block] = self._insert_hot(
                    keys[block], array, spilled=True
                )
        # Embed contiguous runs of missing blocks in one transform call
        # each, outside the lock so concurrent arms embed in parallel.
        for run_start, run_stop in _contiguous_runs(missing):
            lo = run_start * block_size
            hi = min(run_stop * block_size, len(source))
            embedded = np.asarray(
                transform.transform(source[lo:hi]), dtype=self._block_dtype
            )
            for block in range(run_start, run_stop):
                piece = np.ascontiguousarray(
                    embedded[block * block_size - lo : (block + 1) * block_size - lo]
                )
                if np.may_share_memory(piece, source):
                    # Pass-through transforms (identity) return views of
                    # the source; cache an independent copy so caller
                    # mutations can't corrupt it (or be frozen by the
                    # read-only flag below).
                    piece = piece.copy()
                piece.setflags(write=False)
                pieces[block] = piece
        if missing:
            with self._lock:
                for block in missing:
                    pieces[block] = self._insert_hot(
                        keys[block], pieces[block]
                    )
        parts = []
        for block in range(first, last + 1):
            lo = block * block_size
            a = max(start - lo, 0)
            b = min(stop - lo, block_size)
            parts.append(pieces[block][a:b])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)

    def put_block(self, owner: str, key, array: np.ndarray) -> None:
        """Park an auxiliary array under the store's byte budget.

        Lets a caller account arbitrary-dtype blocks — e.g. the uint8
        PQ code matrix of an :class:`repro.knn.pq.IVFPQIndex` (see
        ``benchmarks/test_pq_scaling.py``) — in the same tiers as the
        float embedding blocks: accounting is dtype-aware (``nbytes``
        of the array as given — one byte per element for uint8 codes,
        four for float32 embeddings), and the array is stored
        **as-is**, never cast to the store's embedding dtype.
        ``owner`` namespaces the keys (e.g. one owner per index) so
        they can never collide with transform tokens; blocks
        participate in LRU eviction (and spill to ``store_dir``,
        session-scoped) like any other, so owners must treat the store
        as a cache, not as the primary copy.
        """
        array = np.asarray(array)
        frozen = array.copy()
        frozen.setflags(write=False)
        with self._lock:
            cache_key = (f"{_AUX_PREFIX}{owner}", key)
            previous = self._blocks.pop(cache_key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
                self._free_entry(previous)
            stale = self._attached_blocks.pop(cache_key, None)
            if stale is not None:
                self._free_entry(stale)
            self._insert_hot(cache_key, frozen, replace_spill=True)

    def get_block(self, owner: str, key) -> np.ndarray | None:
        """Fetch an auxiliary array stored via :meth:`put_block` (or None)."""
        cache_key = (f"{_AUX_PREFIX}{owner}", key)
        with self._lock:
            block = self._lookup_hot(cache_key)
            if block is not None:
                self._hits += 1
                return block
        if self.store_dir is not None:
            array = self._load_spilled(cache_key)
            if array is not None:
                with self._lock:
                    self._hits += 1
                    return self._insert_hot(cache_key, array, spilled=True)
        with self._lock:
            self._misses += 1
        return None

    def share_array(self, array: np.ndarray) -> SharedArrayRef | None:
        """Pin an array into the shared hot tier; return a picklable ref.

        The ref replaces the payload across a process-pool pickle
        boundary (see ``TransformationArm.__getstate__``): receivers
        call :meth:`resolve_array` and read the bytes zero-copy.
        Pinned arrays live outside the LRU budget and are released by
        :meth:`release_shared` (the run epilogue) or :meth:`close`.
        Returns ``None`` when the store cannot share (no shared-memory
        support, sharing not enabled, or a handle asked to share an
        array it has never resolved).
        """
        with self._lock:
            known = self._shared_refs.get(id(array))
            if known is not None:
                return known[0]
            if (
                not _SHM_AVAILABLE
                or not self._shared
                or self._attached_mode
            ):
                return None
            array = np.ascontiguousarray(array)
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(np.int64(array.shape).tobytes())
            hasher.update(array.tobytes())
            key = (_SHARED_TOKEN, hasher.digest())
            entry = self._pinned.get(key)
            if entry is None:
                name = self._segment_name(key)
                try:
                    segment, view = _write_segment(name, array)
                except (OSError, ValueError):
                    return None
                self._cleanup["owned"][name] = segment
                entry = _HotBlock(view, segment=segment, name=name, owned=True)
                self._pinned[key] = entry
            ref = SharedArrayRef(key, tuple(array.shape), array.dtype.str)
            self._remember_ref(array, ref)
            return ref

    def resolve_array(self, ref: SharedArrayRef) -> np.ndarray | None:
        """Zero-copy array for a :class:`SharedArrayRef` (or None if gone)."""
        with self._lock:
            entry = (
                self._pinned.get(ref.key)
                or self._attached_blocks.get(ref.key)
            )
            if entry is None and _SHM_AVAILABLE:
                array, segment, name = self._attach_block(ref.key)
                if array is not None:
                    entry = _HotBlock(array, segment=segment, name=name)
                    self._attached_blocks[ref.key] = entry
            if entry is None:
                return None
            self._remember_ref(entry.array, ref)
            return entry.array

    def release_shared(self) -> None:
        """Unpin (and unlink) every :meth:`share_array` segment."""
        with self._lock:
            for entry in self._pinned.values():
                self._free_entry(entry)
            self._pinned.clear()
            self._published.clear()

    def publish_block(
        self, owner: str, key, array: np.ndarray, version: int = 0
    ) -> SharedArrayRef | None:
        """Pin a caller-owned array as a named, versioned shared block.

        The sharded-scan tier publishes inverted-list payloads this way:
        each ``(owner, key)`` slot holds exactly one live version, and
        the version number is folded into the segment name — a republish
        with a newer version gets a *fresh* segment while the old slot's
        name is unlinked immediately, so a worker that cached an attach
        for the previous version can never be served stale bytes under
        the new ref (its old mapping stays valid until its views die,
        per the usual segment lifetime rules).  Republishing the same
        ``(owner, key, version)`` is an idempotent no-op returning the
        existing ref.  Pinned publications live outside the LRU budget
        and are released by :meth:`unpublish`, :meth:`release_shared`
        or :meth:`close`.  Returns ``None`` when the store cannot share
        (callers then ship the raw array instead).
        """
        with self._lock:
            if not _SHM_AVAILABLE or not self._shared or self._attached_mode:
                return None
            slot = (owner, key)
            previous = self._published.get(slot)
            if previous is not None:
                prev_version, prev_key = previous
                entry = self._pinned.get(prev_key)
                if prev_version == int(version) and entry is not None:
                    return SharedArrayRef(
                        prev_key,
                        tuple(entry.array.shape),
                        entry.array.dtype.str,
                    )
                if entry is not None:
                    self._free_entry(self._pinned.pop(prev_key))
                self._published.pop(slot, None)
            array = np.ascontiguousarray(array)
            cache_key = (f"{_AUX_PREFIX}{owner}", (key, int(version)))
            name = self._segment_name(cache_key)
            try:
                segment, view = _write_segment(name, array)
            except (OSError, ValueError, DataValidationError):
                return None
            self._cleanup["owned"][name] = segment
            self._pinned[cache_key] = _HotBlock(
                view, segment=segment, name=name, owned=True
            )
            self._published[slot] = (int(version), cache_key)
            return SharedArrayRef(
                cache_key, tuple(array.shape), array.dtype.str
            )

    def unpublish(self, owner: str) -> int:
        """Release every :meth:`publish_block` slot of ``owner``.

        Returns the number of slots released.  Safe to call on a store
        that never published (or already released): a no-op then.
        """
        with self._lock:
            slots = [s for s in self._published if s[0] == owner]
            for slot in slots:
                _, cache_key = self._published.pop(slot)
                entry = self._pinned.pop(cache_key, None)
                if entry is not None:
                    self._free_entry(entry)
            return len(slots)

    def forget_attached(self, owner: str, keep=()) -> None:
        """Drop cached attaches of ``owner``'s publications (workers).

        Versioned republication gives every new payload a fresh segment
        name; without pruning, a long-lived worker would pin one stale
        mapping per superseded version.  Called by shard-scan tasks
        after resolving their refs, keeping only the keys in ``keep``.
        """
        token = f"{_AUX_PREFIX}{owner}"
        keep = set(keep)
        with self._lock:
            stale = [
                k for k in self._attached_blocks
                if k[0] == token and k not in keep
            ]
            for k in stale:
                self._free_entry(self._attached_blocks.pop(k))

    def enable_sharing(self) -> None:
        """Back the hot tier with named shared-memory segments.

        Called by :class:`repro.core.snoopy.Snoopy` when the ``process``
        execution backend is selected: new hot blocks are created as
        named segments workers attach zero-copy, existing hot blocks
        are migrated, and — when no ``store_dir`` is configured — an
        ephemeral spill dir is created so workers have a shared write
        medium (removed again at :meth:`close`).  A no-op on platforms
        without POSIX shared memory (workers then run cold, exactly the
        pre-sharing behaviour) and on attached handles.
        """
        if not _SHM_AVAILABLE or self._attached_mode:
            return
        with self._lock:
            if self.store_dir is None:
                directory = tempfile.mkdtemp(prefix="repro-store-")
                self._set_store_dir(directory)
                self._cleanup["ephemeral_dir"] = directory
            if self._shared:
                return
            self._shared = True
            for key, entry in list(self._blocks.items()):
                if entry.segment is not None:
                    continue
                upgraded = self._make_hot_entry(key, entry.array)
                upgraded.spilled = entry.spilled
                self._blocks[key] = upgraded

    def invalidate(self, transform) -> int:
        """Drop every cached block of ``transform`` (after a re-fit).

        Also forgets the transform's content token, so the next embed
        re-derives it from the *new* fitted state, and unlinks the
        spill files written for the old state this session.  Returns
        the number of hot blocks dropped.
        """
        with self._lock:
            identity = id(transform)
            token = self._tokens.pop(identity, None)
            self._token_refs.pop(identity, None)
            if token is None:
                return 0
            stale = [key for key in self._blocks if key[0] == token]
            for key in stale:
                entry = self._blocks.pop(key)
                self._bytes -= entry.nbytes
                self._free_entry(entry)
            for key in [k for k in self._attached_blocks if k[0] == token]:
                self._free_entry(self._attached_blocks.pop(key))
            for file_id in self._token_spills.pop(token, ()):  # this session
                size = self._spill_index.pop(file_id, None)
                if size is not None:
                    self._spill_used -= size
                if self.store_dir is not None:
                    try:
                        os.unlink(_spill_path(self.store_dir, file_id))
                    except OSError:
                        pass
            return len(stale)

    def clear(self) -> None:
        """Drop all hot blocks and digest caches (counters are kept).

        The spill tier is left in place — it is the persistence medium;
        use :func:`clear_spill_dir` (CLI: ``repro store clear``) to
        prune it.
        """
        with self._lock:
            for entry in self._blocks.values():
                self._free_entry(entry)
            self._blocks.clear()
            for entry in self._attached_blocks.values():
                self._free_entry(entry)
            self._attached_blocks.clear()
            self._bytes = 0
            self._digests.clear()
            self._digest_refs.clear()

    def close(self) -> None:
        """Release every segment (and ephemeral dir) owned; idempotent."""
        with self._lock:
            self.release_shared()
            self.clear()
            _release_segments(self._cleanup)
            if not self._attached_mode:
                # Drop (and close) this process's attach handle too, so
                # parent-side unpickles don't pin unlinked mappings.
                entry = _HANDLES.pop(self._session, None)
                if entry is not None and entry[1] is not self:
                    entry[1].close()
            else:
                entry = _HANDLES.get(self._session)
                if entry is not None and entry[1] is self:
                    _HANDLES.pop(self._session, None)

    def __enter__(self) -> "EmbeddingStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                current_bytes=self._bytes,
                max_bytes=self.max_bytes,
                spill_hits=self._spill_hits,
                spill_writes=self._spill_writes,
                spill_current_bytes=self._spill_used,
                spill_max_bytes=self.spill_bytes,
                pinned_bytes=sum(
                    entry.nbytes for entry in self._pinned.values()
                ),
                shared_segments=len(self._cleanup["owned"]),
            )

    @property
    def is_shared(self) -> bool:
        """Hot blocks live in named segments other processes can attach."""
        return self._shared

    @property
    def is_handle(self) -> bool:
        """This store is an attach handle for a store in another process."""
        return self._attached_mode

    @property
    def can_share_arrays(self) -> bool:
        """:meth:`share_array` refs are meaningful across this store."""
        return _SHM_AVAILABLE and (self._shared or self._attached_mode)

    def handle_state(self) -> dict:
        """Attach-handle configuration (what pickling a store ships)."""
        return {
            "session": self._session,
            "max_bytes": self.max_bytes,
            "block_rows": self.block_rows,
            "dtype": self.dtype,
            "store_dir": self.store_dir,
            "spill_bytes": self.spill_bytes,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats
        tier = "handle" if self._attached_mode else (
            "shared" if self._shared else "local"
        )
        return (
            f"EmbeddingStore({tier}, blocks={len(self)}, "
            f"bytes={stats.current_bytes}/{stats.max_bytes}, "
            f"spill={stats.spill_current_bytes}, "
            f"hit_rate={stats.hit_rate:.2f})"
        )

    # ------------------------------------------------------------------
    # Pickling: ship an attach handle (config + session), never blocks.
    # ------------------------------------------------------------------

    def __reduce__(self):
        return (attach_handle, (self.handle_state(),))

    # ------------------------------------------------------------------
    # Internals: tiers
    # ------------------------------------------------------------------

    def _lookup_hot(self, key) -> np.ndarray | None:
        """Hot-tier lookup (lock held); counts nothing."""
        entry = self._blocks.get(key)
        if entry is not None:
            self._blocks.move_to_end(key)
            return entry.array
        entry = self._pinned.get(key)
        if entry is not None:
            return entry.array
        entry = self._attached_blocks.get(key)
        if entry is not None:
            return entry.array
        if self._attached_mode and _SHM_AVAILABLE:
            array, segment, name = self._attach_block(key)
            if array is not None:
                self._attached_blocks[key] = _HotBlock(
                    array, segment=segment, name=name
                )
                return array
        return None

    def _insert_hot(
        self, key, array: np.ndarray, spilled: bool = False,
        replace_spill: bool = False,
    ) -> np.ndarray:
        """Insert one block (lock held); returns the canonical array."""
        existing = self._blocks.get(key)
        if existing is not None:
            self._blocks.move_to_end(key)
            return existing.array
        entry = self._make_hot_entry(key, array)
        entry.spilled = spilled
        self._blocks[key] = entry
        self._bytes += entry.nbytes
        if self.store_dir is not None and (replace_spill or not entry.spilled):
            self._write_through(key, entry, force=replace_spill)
        self._evict_over_budget()
        return entry.array

    def _make_hot_entry(self, key, array: np.ndarray) -> _HotBlock:
        if isinstance(array, np.memmap):
            # A promoted-again spill block: copying it into a shared
            # segment would materialize the pages it exists to avoid.
            # Keep it process-local; siblings memmap the same file and
            # share the single page-cache copy.
            return _HotBlock(array)
        if self._shared and not self._attached_mode and _SHM_AVAILABLE:
            name = self._segment_name(key)
            try:
                segment, view = _write_segment(name, array)
            except FileExistsError:
                # A same-named segment exists (another thread between
                # our lock windows, or a stale session collision): use
                # it if readable, else keep a process-local block.
                attached, segment, name = self._attach_block(key)
                if attached is not None:
                    return _HotBlock(attached, segment=segment, name=name)
                return _HotBlock(array)
            except (OSError, ValueError, DataValidationError):
                # /dev/shm exhausted (or header overflow): degrade to a
                # process-local block — correctness is unaffected.
                return _HotBlock(array)
            self._cleanup["owned"][name] = segment
            return _HotBlock(view, segment=segment, name=name, owned=True)
        return _HotBlock(array)

    def _attach_block(self, key):
        name = self._segment_name(key)
        try:
            segment = _attach_segment(name)
        except (FileNotFoundError, OSError):
            return None, None, None
        array = _read_segment(segment)
        if array is None:
            _close_segment(segment)  # no view exists yet: safe to unmap
            return None, None, None
        _bind_lifetime(array, segment)
        self._cleanup["attached"][name] = segment
        return array, segment, name

    def _free_entry(self, entry: _HotBlock) -> None:
        """Release a hot block's segment *name* (lock held).

        The mapping itself is closed by the block view's
        :func:`_bind_lifetime` finalizer once the last caller-held view
        dies — closing here would unmap memory those views still read.
        """
        segment = entry.segment
        if segment is None:
            return
        if entry.owned and os.getpid() == self._creator_pid:
            _unlink_segment(segment)
            self._cleanup["owned"].pop(entry.name, None)
        else:
            self._cleanup["attached"].pop(entry.name, None)
        entry.segment = None

    def _evict_over_budget(self) -> None:
        while self._bytes > self.max_bytes and self._blocks:
            key, entry = self._blocks.popitem(last=False)
            self._bytes -= entry.nbytes
            self._evictions += 1
            if self.store_dir is not None and not entry.spilled:
                # Move to the spill tier, don't discard the work.
                self._write_through(key, entry)
            self._free_entry(entry)

    def _write_through(self, key, entry: _HotBlock, force: bool = False) -> None:
        """Persist one hot block to the spill tier (lock held)."""
        file_id = self._block_id(key)
        if not force and file_id in self._spill_index:
            self._spill_index.move_to_end(file_id)
            entry.spilled = True
            return
        try:
            size = _write_spill(self.store_dir, file_id, entry.array)
        except OSError:
            return
        entry.spilled = True
        self._spill_writes += 1
        token = key[0]
        if isinstance(token, str) and not token.startswith("\x00"):
            self._token_spills.setdefault(token, set()).add(file_id)
        self._spill_insert(file_id, size)

    def _spill_insert(self, file_id: str, size: int) -> None:
        previous = self._spill_index.pop(file_id, None)
        if previous is not None:
            self._spill_used -= previous
        self._spill_index[file_id] = size
        self._spill_used += size
        while self._spill_used > self.spill_bytes and len(self._spill_index) > 1:
            victim, vsize = self._spill_index.popitem(last=False)
            self._spill_used -= vsize
            try:
                os.unlink(_spill_path(self.store_dir, victim))
            except OSError:
                pass

    def _load_spilled(self, key) -> np.ndarray | None:
        """Read one block from the spill tier.

        A block's *first* promote this session copies and digest-verifies
        the payload; blocks hotter than one promote come back as
        read-only memmaps instead — no second verification pass, no
        second RSS copy, and (because :meth:`_make_hot_entry` keeps
        memmaps process-local) one OS page-cache copy shared by every
        worker that pages in the same shard file.
        """
        if self.store_dir is None:
            return None
        file_id = self._block_id(key)
        with self._lock:
            verified = file_id in self._spill_promoted
        array = _read_spill(self.store_dir, file_id, memmap=verified)
        if array is None and verified:
            # Memmap open failed (file evicted/replaced mid-read): fall
            # back to the verifying copy path before declaring a miss.
            array = _read_spill(self.store_dir, file_id)
        with self._lock:
            if array is None:
                self._spill_promoted.discard(file_id)
                # Possibly corrupt-and-removed: drop a stale index entry.
                size = self._spill_index.pop(file_id, None)
                if size is not None:
                    self._spill_used -= size
                return None
            self._spill_hits += 1
            self._spill_promoted.add(file_id)
            if file_id in self._spill_index:
                self._spill_index.move_to_end(file_id)
            else:
                self._spill_insert(
                    file_id, 12 + array.nbytes + 96  # approx header
                )
        return array

    def _set_store_dir(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.store_dir = directory
        entries = []
        for name in os.listdir(directory):
            if not name.endswith(_SPILL_SUFFIX):
                continue
            path = os.path.join(directory, name)
            try:
                entries.append(
                    (os.path.getmtime(path), name[: -len(_SPILL_SUFFIX)],
                     os.path.getsize(path))
                )
            except OSError:
                continue
        for _, file_id, size in sorted(entries):
            self._spill_index[file_id] = size
            self._spill_used += size

    # ------------------------------------------------------------------
    # Internals: keys, tokens, digests
    # ------------------------------------------------------------------

    def _segment_name(self, key) -> str:
        return f"repro-{self._session}-{self._block_id(key)}"

    def _block_id(self, key) -> str:
        """Stable hex id of a block key (segment + spill-file naming).

        Auxiliary keys mix in the session: their content is
        caller-mutable, so their spill files must not leak across
        sessions the way content-addressed embedding blocks safely do.
        """
        token, sub = key
        hasher = hashlib.blake2b(digest_size=16)
        if isinstance(token, str) and token.startswith(_AUX_PREFIX):
            hasher.update(self._session.encode())
            hasher.update(b"\x1f")
        hasher.update(str(token).encode("utf-8", "surrogatepass"))
        hasher.update(b"\x1f")
        hasher.update(sub if isinstance(sub, bytes) else repr(sub).encode())
        return hasher.hexdigest()

    @staticmethod
    def _check_source(transform, source: np.ndarray) -> np.ndarray:
        source = np.asarray(source, dtype=np.float64)
        if source.ndim != 2:
            raise DataValidationError(
                f"{transform.name}: source must be 2-D, got shape {source.shape}"
            )
        return source

    def _transform_token(self, transform) -> str:
        with self._lock:
            key = id(transform)
            token = self._tokens.get(key)
            if token is None:
                token = self._derive_token(transform)
                self._tokens[key] = token
                self._token_refs[key] = weakref.ref(
                    transform,
                    lambda _ref, key=key, token=token: self._drop_token(
                        key, token
                    ),
                )
            return token

    def _derive_token(self, transform) -> str:
        """Content token when the transform pickles, session token else.

        A content token makes the key stable across processes (workers
        address the parent's blocks) and across runs (a rebuilt
        identical transform warm-starts from the spill tier).  The
        block dtype is folded in so float32 and float64 stores never
        share payload files.  Unpicklable transforms (e.g. a test
        monkeypatching ``transform`` with a closure) fall back to a
        session-unique token — correct, just not shareable.
        """
        try:
            payload = pickle.dumps(transform, protocol=4)
        except Exception:
            token = f"{transform.name}#~{self._token_counter}"
            self._token_counter += 1
            return token
        digest = hashlib.blake2b(payload, digest_size=12).hexdigest()
        return f"{transform.name}@{digest}/{self._block_dtype.str}"

    def _drop_token(self, key: int, token: str) -> None:
        """Weakref purge: a transform died; its hot blocks are dropped.

        Spill files persist — they are the warm-start medium for an
        identical transform rebuilt later (and the spill LRU bounds
        them).
        """
        with self._lock:
            self._tokens.pop(key, None)
            self._token_refs.pop(key, None)
            # Another live transform with identical content (same token)
            # may still be using these blocks; only purge when this was
            # the token's last holder.
            if token in self._tokens.values():
                return
            for k in [k for k in self._blocks if k[0] == token]:
                entry = self._blocks.pop(k)
                self._bytes -= entry.nbytes
                self._free_entry(entry)
            for k in [k for k in self._attached_blocks if k[0] == token]:
                self._free_entry(self._attached_blocks.pop(k))

    def _drop_digests(self, key: int) -> None:
        """Weakref purge: a source array died; release its digest cache."""
        with self._lock:
            self._digests.pop(key, None)
            self._digest_refs.pop(key, None)

    def _block_digest(self, source: np.ndarray, block: int) -> bytes:
        key = id(source)
        per_source = self._digests.get(key)
        if per_source is None:
            per_source = {}
            self._digests[key] = per_source
            self._digest_refs[key] = weakref.ref(
                source, lambda _ref, key=key: self._drop_digests(key)
            )
        digest = per_source.get(block)
        if digest is None:
            lo = block * self.block_rows
            rows = np.ascontiguousarray(source[lo : lo + self.block_rows])
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(np.int64(rows.shape).tobytes())
            hasher.update(rows.tobytes())
            digest = hasher.digest()
            per_source[block] = digest
        return digest

    def _remember_ref(self, array: np.ndarray, ref: SharedArrayRef) -> None:
        key = id(array)
        if key in self._shared_refs:
            return
        try:
            watcher = weakref.ref(
                array, lambda _r, key=key: self._shared_refs.pop(key, None)
            )
        except TypeError:  # pragma: no cover - non-weakref-able view
            return
        self._shared_refs[key] = (ref, watcher)


def embed_or_transform(
    store: EmbeddingStore | None, transform, x: np.ndarray
) -> np.ndarray:
    """Embed through ``store`` when one is attached, else directly."""
    if store is None:
        return transform.transform(x)
    return store.embed(transform, x)


def _contiguous_runs(blocks: list[int]) -> list[tuple[int, int]]:
    """Group sorted block indices into half-open contiguous runs."""
    runs: list[tuple[int, int]] = []
    for block in blocks:
        if runs and runs[-1][1] == block:
            runs[-1] = (runs[-1][0], block + 1)
        else:
            runs.append((block, block + 1))
    return runs
