"""Classical linear feature transformations: identity, PCA, projections.

These are the "non-pretrained" entries of the paper's Table III catalog
(Identity/Raw, PCA32/64/128) plus helpers.  All are implemented from
scratch on numpy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform


class IdentityTransform(FeatureTransform):
    """The raw features, unchanged.  Zero transformation bias by definition."""

    def __init__(self, input_dim: int):
        super().__init__()
        self.name = "identity"
        self.output_dim = input_dim
        self.cost_per_sample = 0.0

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        if x.shape[1] != self.output_dim:
            raise DataValidationError(
                f"identity expected dim {self.output_dim}, got {x.shape[1]}"
            )
        return x


class StandardizeTransform(FeatureTransform):
    """Per-feature standardization (zero mean, unit variance)."""

    def __init__(self, input_dim: int, name: str = "standardize"):
        super().__init__()
        self.name = name
        self.output_dim = input_dim
        self.cost_per_sample = 1e-7
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardizeTransform":
        x = self._check_input(x)
        self._mean = x.mean(axis=0)
        self._std = np.maximum(x.std(axis=0), 1e-12)
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise DataValidationError("standardize: call fit() before transform()")
        x = self._check_input(x)
        return (x - self._mean) / self._std


class PCATransform(FeatureTransform):
    """Principal component analysis via SVD of the centered training data.

    Matches the paper's PCA32/PCA64/PCA128 catalog entries, which are fit
    on the training set and applied to both splits.
    """

    def __init__(self, num_components: int, name: str | None = None):
        super().__init__()
        if num_components < 1:
            raise DataValidationError(
                f"num_components must be >= 1, got {num_components}"
            )
        self.name = name or f"pca_{num_components}"
        self.output_dim = num_components
        self.cost_per_sample = 1e-6
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCATransform":
        x = self._check_input(x)
        if self.output_dim > min(x.shape):
            raise DataValidationError(
                f"pca: {self.output_dim} components exceed "
                f"min(n, d) = {min(x.shape)}"
            )
        self._mean = x.mean(axis=0)
        centered = x - self._mean
        # Right singular vectors give the principal directions.
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        self._components = vt[: self.output_dim]
        self._fitted = True
        return self

    @property
    def components(self) -> np.ndarray:
        if self._components is None:
            raise DataValidationError("pca: not fitted")
        return self._components.copy()

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._mean is None or self._components is None:
            raise DataValidationError("pca: call fit() before transform()")
        x = self._check_input(x)
        return (x - self._mean) @ self._components.T


class RandomProjectionTransform(FeatureTransform):
    """Gaussian random projection (Johnson–Lindenstrauss style)."""

    def __init__(self, num_components: int, seed: SeedLike = None, name: str | None = None):
        super().__init__()
        if num_components < 1:
            raise DataValidationError(
                f"num_components must be >= 1, got {num_components}"
            )
        self.name = name or f"random_projection_{num_components}"
        self.output_dim = num_components
        self.cost_per_sample = 5e-7
        self._seed = seed
        self._matrix: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "RandomProjectionTransform":
        x = self._check_input(x)
        rng = ensure_rng(self._seed)
        self._matrix = rng.normal(
            scale=1.0 / np.sqrt(self.output_dim), size=(x.shape[1], self.output_dim)
        )
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._matrix is None:
            raise DataValidationError(
                "random_projection: call fit() before transform()"
            )
        x = self._check_input(x)
        if x.shape[1] != self._matrix.shape[0]:
            raise DataValidationError(
                f"random_projection expected dim {self._matrix.shape[0]}, "
                f"got {x.shape[1]}"
            )
        return x @ self._matrix
