"""The transformation catalogs of Tables III (vision) and IV (text).

Each entry mirrors a real hub embedding by name, published output
dimension and *relative* inference cost; the simulated fidelity encodes
how well that family of models transfers in practice (deeper/larger
models are generally better but costlier).  A small per-dataset fidelity
jitter makes the best embedding task-dependent — reproducing the paper's
observation (Figure 6) that no single embedding wins everywhere, e.g.
USE-Large beating XLNet on SST2 but not on IMDB.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform, FittedCatalog
from repro.transforms.linear import IdentityTransform, PCATransform
from repro.transforms.nca import NCATransform
from repro.transforms.pretrained import SimulatedEmbedding

#: Upper bound on simulated embedding width, keeping exact kNN fast while
#: preserving the catalog's relative dimensionality ordering.
_MAX_SIM_DIM = 96


@dataclass(frozen=True)
class EmbeddingSpec:
    """Catalog row: one pre-trained embedding to simulate."""

    name: str
    paper_dim: int
    fidelity: float
    cost_per_sample: float
    source: str

    @property
    def sim_dim(self) -> int:
        """Simulated output width (capped, monotone in the paper width)."""
        return int(min(_MAX_SIM_DIM, max(16, round(self.paper_dim**0.55))))


VISION_EMBEDDINGS: tuple[EmbeddingSpec, ...] = (
    EmbeddingSpec("alexnet", 4096, 0.50, 2.0e-4, "pytorch_hub"),
    EmbeddingSpec("googlenet", 1024, 0.56, 1.5e-4, "pytorch_hub"),
    EmbeddingSpec("vgg16", 4096, 0.58, 6.0e-4, "pytorch_hub"),
    EmbeddingSpec("vgg19", 4096, 0.59, 7.0e-4, "pytorch_hub"),
    EmbeddingSpec("inception_v3", 2048, 0.66, 3.0e-4, "tensorflow_hub"),
    EmbeddingSpec("resnet50_v2", 2048, 0.70, 3.0e-4, "tensorflow_hub"),
    EmbeddingSpec("resnet101_v2", 2048, 0.72, 4.5e-4, "tensorflow_hub"),
    EmbeddingSpec("resnet152_v2", 2048, 0.73, 6.0e-4, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b0", 1280, 0.74, 4.0e-4, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b1", 1280, 0.76, 5.0e-4, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b2", 1408, 0.78, 6.0e-4, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b3", 1536, 0.80, 8.0e-4, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b4", 1792, 0.84, 1.2e-3, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b5", 2048, 0.86, 2.0e-3, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b6", 2304, 0.87, 3.0e-3, "tensorflow_hub"),
    EmbeddingSpec("efficientnet_b7", 2560, 0.88, 4.5e-3, "tensorflow_hub"),
)

TEXT_EMBEDDINGS: tuple[EmbeddingSpec, ...] = (
    EmbeddingSpec("nnlm_en_50", 50, 0.42, 2.0e-5, "tensorflow_hub"),
    EmbeddingSpec("nnlm_en_50_normalized", 50, 0.44, 2.0e-5, "tensorflow_hub"),
    EmbeddingSpec("nnlm_en_128", 128, 0.48, 3.0e-5, "tensorflow_hub"),
    EmbeddingSpec("nnlm_en_128_normalized", 128, 0.50, 3.0e-5, "tensorflow_hub"),
    EmbeddingSpec("elmo", 1024, 0.66, 8.0e-3, "tensorflow_hub"),
    EmbeddingSpec("use", 512, 0.70, 2.0e-4, "tensorflow_hub"),
    EmbeddingSpec("use_large", 512, 0.78, 2.0e-3, "tensorflow_hub"),
    EmbeddingSpec("bert_base_cased_pooled", 768, 0.62, 1.0e-3, "huggingface"),
    EmbeddingSpec("bert_base_uncased_pooled", 768, 0.63, 1.0e-3, "huggingface"),
    EmbeddingSpec("bert_base_cased", 768, 0.72, 1.0e-3, "huggingface"),
    EmbeddingSpec("bert_base_uncased", 768, 0.73, 1.0e-3, "huggingface"),
    EmbeddingSpec("bert_large_cased_pooled", 1024, 0.64, 3.0e-3, "huggingface"),
    EmbeddingSpec("bert_large_uncased_pooled", 1024, 0.65, 3.0e-3, "huggingface"),
    EmbeddingSpec("bert_large_cased", 1024, 0.76, 3.0e-3, "huggingface"),
    EmbeddingSpec("bert_large_uncased", 1024, 0.77, 3.0e-3, "huggingface"),
    EmbeddingSpec("xlnet", 768, 0.80, 4.0e-3, "huggingface"),
    EmbeddingSpec("xlnet_large", 1024, 0.82, 8.0e-3, "huggingface"),
)

#: Scale of the per-dataset fidelity perturbation; large enough to change
#: the argmin embedding across tasks, small enough to keep family order.
_FIDELITY_JITTER = 0.06


def _task_fidelity(spec: EmbeddingSpec, dataset_name: str) -> float:
    """Deterministic per-(embedding, task) fidelity with small jitter."""
    digest = zlib.crc32(f"{spec.name}::{dataset_name}".encode())
    rng = np.random.default_rng(digest)
    jitter = rng.uniform(-_FIDELITY_JITTER, _FIDELITY_JITTER)
    return float(np.clip(spec.fidelity + jitter, 0.05, 0.97))


def _build_embeddings(
    specs: tuple[EmbeddingSpec, ...],
    dataset,
    rng: np.random.Generator,
) -> list[FeatureTransform]:
    projection = dataset.oracle.latent_projection
    transforms: list[FeatureTransform] = []
    for spec in specs:
        transforms.append(
            SimulatedEmbedding(
                name=spec.name,
                output_dim=spec.sim_dim,
                fidelity=_task_fidelity(spec, dataset.name),
                cost_per_sample=spec.cost_per_sample,
                latent_projection=projection,
                seed=rng,
                paper_dim=spec.paper_dim,
                source=spec.source,
            )
        )
    return transforms


def vision_catalog(
    dataset,
    seed: SeedLike = None,
    include_classical: bool = True,
    include_nca: bool = False,
    max_embeddings: int | None = None,
) -> FittedCatalog:
    """Table III: identity + PCA{32,64,128} (+ NCA) + simulated embeddings.

    ``max_embeddings`` truncates the pre-trained list (keeping its
    fidelity spread) for fast tests and examples.  NCA — also part of
    the paper's catalog — is opt-in because it is the only *supervised*
    transform (``catalog.fit`` then requires labels) and the costliest
    classical one.
    """
    rng = ensure_rng(seed)
    transforms: list[FeatureTransform] = []
    if include_classical:
        raw_dim = dataset.train_x.shape[1]
        transforms.append(IdentityTransform(raw_dim))
        pca_dims = [d for d in (32, 64) if d < min(raw_dim, dataset.num_train)]
        if not pca_dims and raw_dim >= 4:
            # Small raw spaces still get one PCA entry at half width.
            pca_dims = [max(2, raw_dim // 2)]
        transforms.extend(PCATransform(dim) for dim in pca_dims)
    if include_nca:
        raw_dim = dataset.train_x.shape[1]
        transforms.append(
            NCATransform(
                max(2, min(32, raw_dim // 2)), num_epochs=8, seed=rng
            )
        )
    specs = _subsample_specs(VISION_EMBEDDINGS, max_embeddings)
    transforms.extend(_build_embeddings(specs, dataset, rng))
    return FittedCatalog(transforms)


def text_catalog(
    dataset,
    seed: SeedLike = None,
    max_embeddings: int | None = None,
) -> FittedCatalog:
    """Table IV: simulated text embeddings (no identity — raw text is not
    numeric in the paper, so the identity transformation is vision-only)."""
    rng = ensure_rng(seed)
    specs = _subsample_specs(TEXT_EMBEDDINGS, max_embeddings)
    return FittedCatalog(_build_embeddings(specs, dataset, rng))


def catalog_for(dataset, seed: SeedLike = None, **kwargs) -> FittedCatalog:
    """Dispatch on the dataset's modality ("vision" or "text")."""
    if dataset.modality == "text":
        kwargs.pop("include_classical", None)
        return text_catalog(dataset, seed=seed, **kwargs)
    return vision_catalog(dataset, seed=seed, **kwargs)


def _subsample_specs(
    specs: tuple[EmbeddingSpec, ...], max_embeddings: int | None
) -> tuple[EmbeddingSpec, ...]:
    if max_embeddings is None or max_embeddings >= len(specs):
        return specs
    if max_embeddings < 1:
        return ()
    # Evenly spaced picks keep the fidelity/cost spread of the full list.
    idx = np.linspace(0, len(specs) - 1, max_embeddings).round().astype(int)
    return tuple(specs[i] for i in sorted(set(idx.tolist())))
