"""Evaluate a BER estimator against the known noise evolution (FeeBee)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.estimators.base import BayesErrorEstimator
from repro.exceptions import DataValidationError
from repro.noise.models import inject_uniform_noise
from repro.noise.theory import ber_after_uniform_noise
from repro.rng import SeedLike, ensure_rng
from repro.transforms.base import FeatureTransform
from repro.transforms.store import embed_or_transform


@dataclass(frozen=True)
class NoisePoint:
    """One evaluation point of the noise series."""

    rho: float
    true_ber: float
    estimate: float

    @property
    def deviation(self) -> float:
        """Signed estimate - truth (negative: the estimate is below)."""
        return self.estimate - self.true_ber


@dataclass
class EstimatorEvaluation:
    """Full noise-series evaluation of one estimator on one task."""

    estimator_name: str
    dataset_name: str
    transform_name: str
    points: list[NoisePoint]

    @property
    def rhos(self) -> np.ndarray:
        return np.array([p.rho for p in self.points])

    @property
    def estimates(self) -> np.ndarray:
        return np.array([p.estimate for p in self.points])

    @property
    def true_bers(self) -> np.ndarray:
        return np.array([p.true_ber for p in self.points])

    def mean_absolute_deviation(self) -> float:
        return float(np.mean(np.abs(self.estimates - self.true_bers)))

    def root_mean_squared_deviation(self) -> float:
        return float(np.sqrt(np.mean((self.estimates - self.true_bers) ** 2)))

    def underestimation_rate(self, slack: float = 0.0) -> float:
        """Fraction of points where the estimate fell below the true BER.

        A lower-bound-style estimator running in the paper's Condition 8
        regime should keep this near zero.
        """
        return float(np.mean(self.estimates < self.true_bers - slack))

    def slope_fidelity(self) -> float:
        """Correlation between estimate evolution and the true evolution.

        FeeBee's key criterion: a good estimator tracks the *shape* of
        the known BER evolution even if its level is offset.
        """
        if len(self.points) < 3:
            raise DataValidationError("need >= 3 noise points for slope fidelity")
        matrix = np.corrcoef(self.estimates, self.true_bers)
        return float(matrix[0, 1])


def evaluate_estimator_over_noise(
    estimator: BayesErrorEstimator,
    dataset: Dataset,
    rhos: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8),
    transform: FeatureTransform | None = None,
    rng: SeedLike = None,
    store=None,
) -> EstimatorEvaluation:
    """Run the FeeBee protocol: estimate at each uniform-noise level.

    Requires a dataset with a ground-truth oracle; the true noisy BER at
    each level comes from Lemma 2.1 applied to the oracle's clean BER.
    An optional :class:`repro.transforms.store.EmbeddingStore` reuses
    embeddings across estimators evaluated on the same splits.
    """
    if dataset.oracle is None:
        raise DataValidationError("FeeBee evaluation needs an oracle dataset")
    rng = ensure_rng(rng)
    if transform is not None and not transform.fitted:
        transform.fit(dataset.train_x)
    train_x = (
        dataset.train_x
        if transform is None
        else embed_or_transform(store, transform, dataset.train_x)
    )
    test_x = (
        dataset.test_x
        if transform is None
        else embed_or_transform(store, transform, dataset.test_x)
    )
    clean_ber = dataset.oracle.true_ber
    points = []
    for rho in rhos:
        train = inject_uniform_noise(
            dataset.train_y, rho, dataset.num_classes, rng=rng
        )
        test = inject_uniform_noise(
            dataset.test_y, rho, dataset.num_classes, rng=rng
        )
        estimate = estimator.estimate(
            train_x,
            train.noisy_labels,
            test_x,
            test.noisy_labels,
            dataset.num_classes,
        )
        points.append(
            NoisePoint(
                rho=rho,
                true_ber=ber_after_uniform_noise(
                    clean_ber, rho, dataset.num_classes
                ),
                estimate=estimate.value,
            )
        )
    return EstimatorEvaluation(
        estimator_name=estimator.name,
        dataset_name=dataset.name,
        transform_name="raw" if transform is None else transform.name,
        points=points,
    )
