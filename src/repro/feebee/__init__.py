"""FeeBee-style estimator evaluation (the paper's companion protocol).

The true BER of a real dataset is unknown, so a single estimate cannot be
judged.  FeeBee's insight: inject a *series* of uniform label-noise
levels, evolve the known-or-assumed clean BER with Lemma 2.1, and judge
an estimator by how its estimates track that known evolution.  On this
library's synthetic tasks the clean BER is exact, making the protocol
fully grounded.
"""

from repro.feebee.evaluation import (
    EstimatorEvaluation,
    NoisePoint,
    evaluate_estimator_over_noise,
)
from repro.feebee.variance import QuantileBand, estimate_with_quantiles

__all__ = [
    "EstimatorEvaluation",
    "NoisePoint",
    "QuantileBand",
    "estimate_with_quantiles",
    "evaluate_estimator_over_noise",
]
