"""Estimator variance quantification (the paper's quantile bands).

The paper reports the median and 5%/95% quantiles over many independent
runs and observes that SST2 — with its sub-1K test set — is far less
stable than the other datasets.  This module provides the machinery:
repeat an estimate over independent train/test resamples and summarize
the run distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.estimators.base import BayesErrorEstimator
from repro.exceptions import DataValidationError
from repro.rng import SeedLike, ensure_rng, spawn
from repro.transforms.base import FeatureTransform


@dataclass(frozen=True)
class QuantileBand:
    """Run-distribution summary of a repeated estimate."""

    median: float
    low: float  # 5% quantile by default
    high: float  # 95% quantile by default
    values: np.ndarray

    @property
    def spread(self) -> float:
        """Width of the band — the instability measure of Section VI-C."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def estimate_with_quantiles(
    estimator: BayesErrorEstimator,
    dataset: Dataset,
    num_runs: int = 10,
    transform: FeatureTransform | None = None,
    subsample_train: int | None = None,
    subsample_test: int | None = None,
    quantiles: tuple[float, float] = (0.05, 0.95),
    rng: SeedLike = None,
) -> QuantileBand:
    """Repeat an estimate over independent resamples; summarize the runs.

    Each run subsamples the dataset (defaults: 80% of train, full test)
    with an independent generator, mirroring the paper's protocol of
    "multiple independent runs" per configuration.
    """
    if num_runs < 2:
        raise DataValidationError("num_runs must be >= 2")
    lo_q, hi_q = quantiles
    if not 0.0 <= lo_q < hi_q <= 1.0:
        raise DataValidationError("quantiles must satisfy 0 <= lo < hi <= 1")
    rng = ensure_rng(rng)
    children = spawn(rng, num_runs)
    if transform is not None and not transform.fitted:
        transform.fit(dataset.train_x)
    train_size = subsample_train or max(8, int(0.8 * dataset.num_train))
    test_size = subsample_test or dataset.num_test
    values = []
    for child in children:
        sample = dataset.subsample(train_size, test_size, rng=child)
        train_x = (
            sample.train_x if transform is None
            else transform.transform(sample.train_x)
        )
        test_x = (
            sample.test_x if transform is None
            else transform.transform(sample.test_x)
        )
        estimate = estimator.estimate(
            train_x, sample.train_y, test_x, sample.test_y,
            dataset.num_classes,
        )
        values.append(estimate.value)
    values = np.array(values)
    return QuantileBand(
        median=float(np.median(values)),
        low=float(np.quantile(values, lo_q)),
        high=float(np.quantile(values, hi_q)),
        values=values,
    )
