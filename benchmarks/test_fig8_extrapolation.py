"""Figure 8: accuracy of the Eq. 10 extrapolation from subsampled data.

For increasing fractions of the training data, the log-linear fit
predicts the estimate at the full dataset size; the figure reports the
difference between prediction and the actually measured full-data value.
Shape to reproduce: the extrapolation error shrinks as the fraction
grows (left panel), and the 5%-fraction fit already lands within a few
points of the truth for a strong embedding (right panel's message).
"""

import numpy as np
from conftest import write_result

from repro.cleaning.workflow import make_noisy_dataset
from repro.core.guidance import fit_log_linear
from repro.knn.progressive import ProgressiveOneNN
from repro.reporting.series import FigureData

FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.7)


def _run(cifar100, catalog):
    noisy = make_noisy_dataset(cifar100, 0.2, rng=0)
    embedding = catalog[catalog.names[-1]]
    train_f = embedding.transform(noisy.train_x)
    test_f = embedding.transform(noisy.test_x)
    rng = np.random.default_rng(0)
    order = rng.permutation(len(train_f))
    evaluator = ProgressiveOneNN(test_f, noisy.test_y)
    # A fine-grained measured curve over the full data.
    step = max(16, len(train_f) // 24)
    consumed = 0
    while consumed < len(train_f):
        chunk = order[consumed : consumed + step]
        evaluator.partial_fit(train_f[chunk], noisy.train_y[chunk])
        consumed += len(chunk)
    sizes, errors = evaluator.curve_arrays()
    full_error = errors[-1]
    figure = FigureData(
        "fig8", "extrapolation accuracy vs subsample fraction",
        "fraction", "|predicted - measured| at full size",
    )
    deviations = []
    for fraction in FRACTIONS:
        cutoff = fraction * len(train_f)
        mask = sizes <= max(cutoff, sizes[2])
        fit = fit_log_linear(sizes[mask], np.maximum(errors[mask], 1e-4))
        predicted = fit.predict_error(len(train_f))
        deviations.append(abs(predicted - full_error))
    figure.add("deviation", np.array(FRACTIONS), np.array(deviations))
    figure.notes.append(f"measured full-data error: {full_error:.4f}")
    return figure, deviations, full_error


def test_fig8(benchmark, cifar100, cifar100_catalog):
    figure, deviations, full_error = benchmark.pedantic(
        _run, args=(cifar100, cifar100_catalog), rounds=1, iterations=1
    )
    write_result("fig8_extrapolation", figure.to_text())
    # More data -> better extrapolation (compare smallest vs largest).
    assert deviations[-1] <= deviations[0] + 0.02
    # The late-fraction fit is close to the measured truth.
    assert deviations[-1] < 0.12
