"""Figure 12: runtime of selection strategies (SH, SH+tangent, uniform,
perfect), plus the batch-size ablation of Section V.

Strategies are compared on both real wall-clock time (the pytest
benchmark below measures the tangent variant, the paper's default) and
on the simulated inference cost to reach an estimate within 1% of the
full evaluation's value.  Shape to reproduce: perfect < SH+tangent <=
SH < uniform <= full in cost, with every adaptive strategy selecting the
same winning transformation as the exhaustive run.
"""

from conftest import write_result

from repro.core.snoopy import Snoopy, SnoopyConfig
from repro.reporting.tables import render_table

STRATEGIES = ("full", "uniform", "successive_halving",
              "successive_halving_tangent")


def _run_all(cifar100, catalog):
    results = {}
    full_report = Snoopy(
        catalog, SnoopyConfig(strategy="full", seed=0)
    ).run(cifar100, 0.99)
    results["full"] = full_report
    for strategy in STRATEGIES[1:]:
        results[strategy] = Snoopy(
            catalog, SnoopyConfig(strategy=strategy, seed=0)
        ).run(cifar100, 0.99)
    results["perfect"] = Snoopy(
        catalog,
        SnoopyConfig(
            strategy="perfect", perfect_arm_name=full_report.best_transform,
            seed=0,
        ),
    ).run(cifar100, 0.99)
    return results


def _batch_size_ablation(cifar100, catalog):
    rows = []
    for fraction in (0.01, 0.02, 0.05):
        pull = max(8, int(fraction * cifar100.num_train))
        report = Snoopy(
            catalog,
            SnoopyConfig(
                strategy="successive_halving_tangent", pull_size=pull, seed=0
            ),
        ).run(cifar100, 0.99)
        rows.append([
            f"{100 * fraction:g}%", pull,
            round(report.ber_estimate, 4),
            round(report.total_sim_cost_seconds, 3),
        ])
    return rows


def test_fig12_strategies(benchmark, cifar100, cifar100_catalog):
    results = benchmark.pedantic(
        _run_all, args=(cifar100, cifar100_catalog), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            round(report.ber_estimate, 4),
            report.best_transform,
            round(report.total_sim_cost_seconds, 3),
            round(report.wall_seconds, 3),
        ]
        for name, report in results.items()
    ]
    rows += [["---", "", "", "", ""]]
    ablation = _batch_size_ablation(cifar100, cifar100_catalog)
    rows += [["batch " + r[0], r[2], "", r[3], ""] for r in ablation]
    text = render_table(
        ["strategy", "estimate", "winner", "sim cost s", "wall s"],
        rows,
        title="Figure 12: selection strategies + batch-size ablation (CIFAR100)",
    )
    write_result("fig12_selection_strategies", text)
    full = results["full"]
    # Cost ordering: perfect < tangent <= SH < uniform-at-same-budget
    # <= full evaluation.
    assert results["perfect"].total_sim_cost_seconds < (
        results["successive_halving_tangent"].total_sim_cost_seconds
    )
    assert results["successive_halving_tangent"].total_sim_cost_seconds <= (
        results["successive_halving"].total_sim_cost_seconds + 1e-9
    )
    assert results["successive_halving"].total_sim_cost_seconds < (
        full.total_sim_cost_seconds
    )
    # Adaptive strategies find the same winner as the exhaustive run and
    # land within 1% of its estimate.
    for name in ("successive_halving", "successive_halving_tangent"):
        assert results[name].best_transform == full.best_transform, name
        assert abs(results[name].ber_estimate - full.ber_estimate) <= 0.01
